//! Degenerate geometries and extreme parameters: the template must hold up
//! at the edges of its parameter space, not just at the paper's 8×8.

use rsp::arch::{
    ArrayGeometry, BaseArchitecture, BusSpec, FuKind, PeDesign, RspArchitecture, SharedGroup,
    SharingPlan,
};
use rsp::core::{rearrange, utilization_of};
use rsp::kernel::{evaluate, suite, Bindings, MemoryImage};
use rsp::mapper::{map, MapOptions};
use rsp::sim::simulate;

fn arch_1x1() -> RspArchitecture {
    let base = BaseArchitecture::new(
        ArrayGeometry::new(1, 1),
        PeDesign::full(),
        BusSpec::paper_default(),
        8192,
    );
    let plan = SharingPlan::none()
        .with_group(SharedGroup::new(FuKind::Multiplier, 1, 0, 2).unwrap())
        .unwrap();
    RspArchitecture::new("1x1-RSP", base, plan).unwrap()
}

#[test]
fn single_pe_array_still_computes() {
    // Everything serializes onto one PE with one shared 2-stage multiplier.
    let arch = arch_1x1();
    for k in [suite::iccg(), suite::mvm()] {
        let ctx = map(arch.base(), &k, &MapOptions::default()).unwrap();
        // Fully serial: every op in its own cycle.
        assert_eq!(ctx.total_cycles() as usize, k.total_ops());
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let input = MemoryImage::random(&k, 123);
        let params = Bindings::defaults(&k);
        let sim = simulate(
            &ctx,
            &arch,
            &r.cycles,
            &r.bindings,
            &k,
            &input,
            &params,
            &Default::default(),
        )
        .unwrap();
        assert_eq!(
            sim.memory,
            evaluate(&k, &input, &params).unwrap(),
            "{}",
            k.name()
        );
    }
}

#[test]
fn single_row_array_handles_dataflow_kernels() {
    let base = BaseArchitecture::new(
        ArrayGeometry::new(1, 8),
        PeDesign::full(),
        BusSpec::paper_default(),
        4096,
    );
    let plan = SharingPlan::none()
        .with_group(SharedGroup::new(FuKind::Multiplier, 2, 0, 2).unwrap())
        .unwrap();
    let arch = RspArchitecture::new("1x8", base, plan).unwrap();
    for k in [suite::hydro(), suite::fft_mult_loop()] {
        let ctx = map(arch.base(), &k, &MapOptions::default()).unwrap();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let input = MemoryImage::random(&k, 5);
        let params = Bindings::defaults(&k);
        let sim = simulate(
            &ctx,
            &arch,
            &r.cycles,
            &r.bindings,
            &k,
            &input,
            &params,
            &Default::default(),
        )
        .unwrap();
        assert_eq!(
            sim.memory,
            evaluate(&k, &input, &params).unwrap(),
            "{}",
            k.name()
        );
    }
}

#[test]
fn single_column_array_serializes_lockstep_groups() {
    let base = BaseArchitecture::new(
        ArrayGeometry::new(8, 1),
        PeDesign::full(),
        BusSpec::paper_default(),
        4096,
    );
    let arch = RspArchitecture::new("8x1", base, SharingPlan::none()).unwrap();
    let k = suite::inner_product();
    let ctx = map(arch.base(), &k, &MapOptions::default()).unwrap();
    // 128 elements / 8 rows = 16 groups, all on the single column.
    let cols: std::collections::BTreeSet<usize> =
        ctx.instances().iter().map(|i| i.pe.col).collect();
    assert_eq!(cols.len(), 1);
    let input = MemoryImage::random(&k, 9);
    let params = Bindings::defaults(&k);
    let bindings = vec![None; ctx.instances().len()];
    let sim = simulate(
        &ctx,
        &arch,
        ctx.cycles(),
        &bindings,
        &k,
        &input,
        &params,
        &Default::default(),
    )
    .unwrap();
    assert_eq!(sim.memory, evaluate(&k, &input, &params).unwrap());
}

#[test]
fn max_depth_pipeline_still_legal() {
    // MAX_STAGES-deep shared multiplier: extreme latency, still correct.
    let arch = rsp::arch::presets::shared_multiplier("deep8", 4, 4, 2, 2, rsp::arch::MAX_STAGES);
    let k = suite::matmul(4);
    let ctx = map(arch.base(), &k, &MapOptions::default()).unwrap();
    let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
    assert!(r.rp_overhead > 0);
    let input = MemoryImage::random(&k, 77);
    let params = Bindings::defaults(&k);
    let sim = simulate(
        &ctx,
        &arch,
        &r.cycles,
        &r.bindings,
        &k,
        &input,
        &params,
        &Default::default(),
    )
    .unwrap();
    assert_eq!(sim.memory, evaluate(&k, &input, &params).unwrap());
    // Eight operations can be in flight on one multiplier.
    assert!(sim.max_in_flight <= rsp::arch::MAX_STAGES as usize);
}

#[test]
fn tiny_cache_rejects_then_fits() {
    // ConfigCacheExceeded at depth 4; fine at a realistic depth.
    let small = BaseArchitecture::new(
        ArrayGeometry::new(8, 8),
        PeDesign::full(),
        BusSpec::paper_default(),
        4,
    );
    assert!(map(&small, &suite::sad(), &MapOptions::default()).is_err());
    let ok = BaseArchitecture::new(
        ArrayGeometry::new(8, 8),
        PeDesign::full(),
        BusSpec::paper_default(),
        25,
    );
    assert!(map(&ok, &suite::sad(), &MapOptions::default()).is_ok());
}

#[test]
fn utilization_saturates_on_single_shared_multiplier() {
    // On the 1x1 array every multiplication serializes through the one
    // shared multiplier; its utilization dwarfs any 8x8 figure.
    let arch = arch_1x1();
    let k = suite::mvm();
    let ctx = map(arch.base(), &k, &MapOptions::default()).unwrap();
    let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
    let u = utilization_of(&ctx, &arch, &r)
        .of(FuKind::Multiplier)
        .unwrap();
    assert_eq!(u.units, 1);
    assert!(u.utilization > 0.2, "utilization {:.2}", u.utilization);
}

#[test]
fn wide_flat_and_tall_arrays_agree_on_results() {
    // The same kernel computes identical memory on very different
    // geometries — placement never leaks into values.
    let k = suite::sad();
    let input = MemoryImage::random(&k, 31);
    let params = Bindings::defaults(&k);
    let reference = evaluate(&k, &input, &params).unwrap();
    for (rows, cols) in [(2usize, 16usize), (16, 2), (3, 5)] {
        let base = BaseArchitecture::new(
            ArrayGeometry::new(rows, cols),
            PeDesign::full(),
            BusSpec::paper_default(),
            8192,
        );
        let arch = RspArchitecture::new("g", base, SharingPlan::none()).unwrap();
        let ctx = map(arch.base(), &k, &MapOptions::default()).unwrap();
        let bindings = vec![None; ctx.instances().len()];
        let sim = simulate(
            &ctx,
            &arch,
            ctx.cycles(),
            &bindings,
            &k,
            &input,
            &params,
            &Default::default(),
        )
        .unwrap();
        assert_eq!(sim.memory, reference, "{rows}x{cols}");
    }
}
