//! The central functional oracle: for every kernel, every architecture,
//! and several input seeds, the cycle-accurate simulation of the
//! rearranged contexts is bit-identical to the reference evaluator.

use rsp::arch::presets;
use rsp::core::{rearrange, RearrangeOptions};
use rsp::kernel::{evaluate, suite, Bindings, MemoryImage};
use rsp::mapper::{map, MapOptions};
use rsp::sim::{simulate, simulate_base, SimOptions};

#[test]
fn all_kernels_all_architectures_three_seeds() {
    for k in suite::all() {
        let ctx = map(presets::base_8x8().base(), &k, &MapOptions::default()).unwrap();
        for arch in presets::table_architectures() {
            let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
            for seed in [1u64, 7, 0xDEAD] {
                let input = MemoryImage::random(&k, seed);
                let params = Bindings::defaults(&k);
                let sim = simulate(
                    &ctx,
                    &arch,
                    &r.cycles,
                    &r.bindings,
                    &k,
                    &input,
                    &params,
                    &Default::default(),
                )
                .unwrap_or_else(|e| panic!("{} on {}: {e}", k.name(), arch.name()));
                let reference = evaluate(&k, &input, &params).unwrap();
                assert_eq!(
                    sim.memory,
                    reference,
                    "{} on {} seed {seed}",
                    k.name(),
                    arch.name()
                );
            }
        }
    }
}

#[test]
fn strict_bus_mapping_stays_equivalent_and_bus_legal() {
    // Lockstep kernels mapped in strict-bus mode must simulate correctly
    // even with the simulator's bus checking enabled.
    for k in [
        suite::inner_product(),
        suite::sad(),
        suite::mvm(),
        suite::matmul(8),
    ] {
        let ctx = map(
            presets::base_8x8().base(),
            &k,
            &MapOptions {
                strict_buses: true,
                ..MapOptions::default()
            },
        )
        .unwrap();
        let arch = presets::rsp2();
        let r = rearrange(
            &ctx,
            &arch,
            &RearrangeOptions {
                enforce_buses: true,
            },
        )
        .unwrap();
        let input = MemoryImage::random(&k, 5);
        let params = Bindings::defaults(&k);
        let sim = simulate(
            &ctx,
            &arch,
            &r.cycles,
            &r.bindings,
            &k,
            &input,
            &params,
            &SimOptions {
                check_buses: true,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        let reference = evaluate(&k, &input, &params).unwrap();
        assert_eq!(sim.memory, reference, "{}", k.name());
    }
}

#[test]
fn base_simulation_equals_reference_on_alternate_geometries() {
    for (rows, cols) in [(4usize, 4usize), (4, 8), (8, 4), (6, 6)] {
        let arch = presets::shared_multiplier("g", rows, cols, 1, 1, 2);
        let base = arch.base();
        for k in [suite::iccg(), suite::hydro(), suite::sad()] {
            let ctx = map(base, &k, &MapOptions::default()).unwrap();
            let input = MemoryImage::random(&k, 11);
            let params = Bindings::defaults(&k);
            // Base execution (geometry only changes placement).
            let base_arch = presets::shared_multiplier("b", rows, cols, 1, 0, 1);
            let sim = simulate_base(
                &ctx,
                // A base-architecture view of the same geometry.
                &rsp::arch::RspArchitecture::new(
                    "plain",
                    base_arch.base().clone(),
                    rsp::arch::SharingPlan::none(),
                )
                .unwrap(),
                &k,
                &input,
                &params,
            )
            .unwrap_or_else(|e| panic!("{}x{} {}: {e}", rows, cols, k.name()));
            let reference = evaluate(&k, &input, &params).unwrap();
            assert_eq!(sim.memory, reference, "{rows}x{cols} {}", k.name());

            // Rearranged execution on the shared/pipelined variant.
            let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
            let sim = simulate(
                &ctx,
                &arch,
                &r.cycles,
                &r.bindings,
                &k,
                &input,
                &params,
                &Default::default(),
            )
            .unwrap();
            assert_eq!(
                sim.memory,
                reference,
                "{rows}x{cols} {} rearranged",
                k.name()
            );
        }
    }
}

#[test]
fn deep_pipelines_remain_equivalent() {
    // 3- and 4-stage shared multipliers (the extended design space).
    for stages in [3u8, 4] {
        let arch = presets::shared_multiplier("deep", 8, 8, 2, 1, stages);
        for k in [suite::fdct(), suite::matmul(8), suite::state()] {
            let ctx = map(arch.base(), &k, &MapOptions::default()).unwrap();
            let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
            let input = MemoryImage::random(&k, 21);
            let params = Bindings::defaults(&k);
            let sim = simulate(
                &ctx,
                &arch,
                &r.cycles,
                &r.bindings,
                &k,
                &input,
                &params,
                &Default::default(),
            )
            .unwrap();
            let reference = evaluate(&k, &input, &params).unwrap();
            assert_eq!(sim.memory, reference, "{} {stages} stages", k.name());
        }
    }
}
