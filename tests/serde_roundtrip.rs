//! Serialization round trips: kernels, architectures, contexts,
//! rearrangements and results survive JSON without loss — the interchange
//! format a larger toolchain (or a CI artifact store) would rely on.

use rsp::arch::{presets, RspArchitecture};
use rsp::core::{rearrange, Rearranged};
use rsp::kernel::{suite, Kernel, MemoryImage};
use rsp::mapper::{map, ConfigContext, MapOptions};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn kernels_round_trip() {
    for k in suite::all() {
        let back: Kernel = round_trip(&k);
        assert_eq!(back, k, "{}", k.name());
        // Metadata derived from the body survives.
        assert_eq!(back.op_set(), k.op_set());
        assert_eq!(back.total_ops(), k.total_ops());
    }
}

#[test]
fn architectures_round_trip() {
    for arch in presets::table_architectures() {
        let back: RspArchitecture = round_trip(&arch);
        assert_eq!(back, arch, "{}", arch.name());
        assert_eq!(back.shared_resources(), arch.shared_resources());
    }
}

#[test]
fn contexts_round_trip() {
    let base = presets::base_8x8();
    for k in [suite::mvm(), suite::fdct()] {
        let ctx = map(base.base(), &k, &MapOptions::default()).unwrap();
        let back: ConfigContext = round_trip(&ctx);
        assert_eq!(back, ctx, "{}", k.name());
        assert_eq!(back.mult_profile(), ctx.mult_profile());
    }
}

#[test]
fn rearrangements_round_trip() {
    let base = presets::base_8x8();
    let ctx = map(base.base(), &suite::fdct(), &MapOptions::default()).unwrap();
    let r = rearrange(&ctx, &presets::rsp2(), &Default::default()).unwrap();
    let back: Rearranged = round_trip(&r);
    assert_eq!(back, r);
}

#[test]
fn memory_images_round_trip() {
    let k = suite::sad();
    let img = MemoryImage::random(&k, 9);
    let back: MemoryImage = round_trip(&img);
    assert_eq!(back, img);
}

#[test]
fn deserialized_artifacts_still_work_together() {
    // A full pipeline over deserialized values: the JSON form is not just
    // storage, it is executable state.
    let base = presets::base_8x8();
    let kernel: Kernel = round_trip(&suite::inner_product());
    let arch: RspArchitecture = round_trip(&presets::rsp1());
    let ctx: ConfigContext =
        round_trip(&map(base.base(), &kernel, &MapOptions::default()).unwrap());
    let r: Rearranged = round_trip(&rearrange(&ctx, &arch, &Default::default()).unwrap());

    let input = MemoryImage::random(&kernel, 3);
    let params = rsp::kernel::Bindings::defaults(&kernel);
    let sim = rsp::sim::simulate(
        &ctx,
        &arch,
        &r.cycles,
        &r.bindings,
        &kernel,
        &input,
        &params,
        &Default::default(),
    )
    .unwrap();
    let reference = rsp::kernel::evaluate(&kernel, &input, &params).unwrap();
    assert_eq!(sim.memory, reference);
}
