//! Regression tests pinning our reproduction to the paper's tables:
//! absolute model numbers for Tables 1/2 (within fit tolerance) and the
//! comparative *shape* of Tables 4/5 (who stalls, who wins, by how much).

use rsp::arch::presets;
use rsp::synth::{paper, AreaModel, DelayModel};
use rsp_bench::perf_rows;
use rsp_kernel::suite;

#[test]
fn table2_area_and_delay_within_tolerance() {
    let area = AreaModel::new();
    let delay = DelayModel::new();
    for (arch, p) in presets::table_architectures().iter().zip(&paper::TABLE2) {
        let a = area.report(arch).synthesized_slices;
        let d = delay.report(arch).clock_ns;
        assert!(
            (a - p.array_slices).abs() / p.array_slices < 0.03,
            "{} area {a:.0} vs paper {}",
            arch.name(),
            p.array_slices
        );
        assert!(
            (d - p.array_delay_ns).abs() / p.array_delay_ns < 0.02,
            "{} clock {d:.2} vs paper {}",
            arch.name(),
            p.array_delay_ns
        );
    }
}

#[test]
fn headline_numbers_reproduce() {
    let area = AreaModel::new();
    let delay = DelayModel::new();
    let best_area = (1..=4)
        .map(|k| area.report(&presets::rs(k)).reduction_pct())
        .fold(f64::MIN, f64::max);
    assert!((best_area - paper::HEADLINE_AREA_REDUCTION_PCT).abs() < 1.5);

    // Delay headline: paper quotes RSP#1 against the 25.6 ns PE clock.
    let rsp1 = delay.report(&presets::rsp1()).clock_ns;
    let vs_pe = 100.0 * (1.0 - rsp1 / 25.6);
    assert!((vs_pe - paper::HEADLINE_DELAY_REDUCTION_PCT).abs() < 2.0);

    // Performance headline: SAD on RSP#1.
    let sad = perf_rows(&suite::sad());
    let rsp1_dr = sad.iter().find(|p| p.arch == "RSP#1").unwrap().dr_pct;
    assert!((rsp1_dr - paper::HEADLINE_PERF_IMPROVEMENT_PCT).abs() < 3.0);
}

#[test]
fn table4_5_stall_classes_match_paper() {
    // Kernels that stall on RS#1 in the paper must stall here, and
    // vice versa.
    for (k, p) in suite::all()
        .iter()
        .zip(paper::TABLE4.iter().chain(paper::TABLE5.iter()))
    {
        assert_eq!(k.name(), p.kernel, "suite order matches paper tables");
        let ours = perf_rows(k);
        let our_rs1 = ours.iter().find(|r| r.arch == "RS#1").unwrap();
        let paper_rs1 = p.cells.iter().find(|c| c.arch == "RS#1").unwrap();
        assert_eq!(
            our_rs1.rs_stalls > 0,
            paper_rs1.stalls > 0,
            "{}: RS#1 stall class (ours {}, paper {})",
            k.name(),
            our_rs1.rs_stalls,
            paper_rs1.stalls
        );
    }
}

#[test]
fn rs_rows_always_slower_rsp_rows_faster_where_paper_says_so() {
    // Qualitative content of Tables 4/5: every RS row is slower than the
    // base (clock stretch with no cycle gain), and every RSP#2..4 row is
    // faster (clock gain dominates the RP overhead). RSP#1 is excluded:
    // there the outcome hinges on the *magnitude* of sharing stalls, and
    // our mapper's slacker schedules stall far less than the authors' on
    // State/2D-FDCT/FFT (see EXPERIMENTS.md, deviation D3).
    for (k, p) in suite::all()
        .iter()
        .zip(paper::TABLE4.iter().chain(paper::TABLE5.iter()))
    {
        let ours = perf_rows(k);
        let base_paper = p.cells[0].et_ns;
        for (our, cell) in ours.iter().zip(&p.cells) {
            if cell.arch == "Base" || cell.arch == "RSP#1" {
                continue;
            }
            let paper_dr = 100.0 * (1.0 - cell.et_ns / base_paper);
            assert_eq!(
                our.dr_pct > 0.0,
                paper_dr > 0.0,
                "{} on {}: ours {:.1}% vs paper {:.1}%",
                k.name(),
                cell.arch,
                our.dr_pct,
                paper_dr
            );
        }
    }
}

#[test]
fn best_architecture_per_kernel_is_rsp1_or_rsp2() {
    // §5.3: "the best performance for individual kernels can be obtained
    // with RSP#1 or RSP#2".
    for k in suite::all() {
        let ours = perf_rows(&k);
        let best = ours
            .iter()
            .min_by(|a, b| a.et_ns.partial_cmp(&b.et_ns).unwrap())
            .unwrap();
        assert!(
            best.arch == "RSP#1" || best.arch == "RSP#2",
            "{}: best is {}",
            k.name(),
            best.arch
        );
    }
}

#[test]
fn sad_gains_more_than_mult_heavy_kernels() {
    // §5.3: SAD (no multiplications) gains the most from RSP.
    let sad_dr = perf_rows(&suite::sad())
        .iter()
        .find(|p| p.arch == "RSP#1")
        .unwrap()
        .dr_pct;
    for k in [suite::fdct(), suite::state(), suite::hydro()] {
        let dr = perf_rows(&k)
            .iter()
            .find(|p| p.arch == "RSP#1")
            .unwrap()
            .dr_pct;
        assert!(dr < sad_dr, "{}: {dr:.1}% !< SAD {sad_dr:.1}%", k.name());
    }
}

#[test]
fn cycle_counts_within_band_of_paper() {
    // Absolute cycles depend on the authors' mapper, which is not
    // available; ours must stay in the same band (0.4x..1.6x) on the base
    // architecture.
    for (k, p) in suite::all()
        .iter()
        .zip(paper::TABLE4.iter().chain(paper::TABLE5.iter()))
    {
        let ours = perf_rows(k)[0].cycles as f64;
        let theirs = p.cells[0].cycles as f64;
        let ratio = ours / theirs;
        assert!(
            (0.4..=1.6).contains(&ratio),
            "{}: {ours} vs paper {theirs} (ratio {ratio:.2})",
            k.name()
        );
    }
}

#[test]
fn table3_operation_sets_cover_paper_sets() {
    use rsp::arch::OpKind;
    // The op set the paper lists must be a subset of ours for each kernel
    // (we additionally model the sub inside SAD's absolute difference).
    let expectations: &[(&str, &[OpKind])] = &[
        ("Hydro", &[OpKind::Mult, OpKind::Add]),
        ("ICCG", &[OpKind::Mult, OpKind::Sub]),
        ("Tri-diagonal", &[OpKind::Mult, OpKind::Sub]),
        ("Inner product", &[OpKind::Mult, OpKind::Add]),
        ("State", &[OpKind::Mult, OpKind::Add]),
        (
            "2D-FDCT",
            &[OpKind::Mult, OpKind::Asr, OpKind::Add, OpKind::Sub],
        ),
        ("SAD", &[OpKind::Abs, OpKind::Add]),
        ("MVM", &[OpKind::Mult, OpKind::Add]),
        ("FFT", &[OpKind::Add, OpKind::Sub, OpKind::Mult]),
    ];
    for (k, (name, ops)) in suite::all().iter().zip(expectations) {
        assert_eq!(&k.name(), name);
        let set = k.op_set();
        for op in *ops {
            assert!(set.contains(op), "{name} missing {op}");
        }
    }
}
