//! Property-based tests: randomly generated kernels and architectures
//! must survive the whole pipeline — map → rearrange → simulate — with
//! the simulation bit-identical to the reference evaluator, plus
//! invariants on the cost models and the Pareto frontier.

use proptest::prelude::*;
use rsp::arch::{presets, FuKind, OpKind, RspArchitecture};
use rsp::core::rearrange;
use rsp::kernel::{
    evaluate, AddrExpr, Bindings, DfgBuilder, Kernel, KernelBuilder, MappingStyle, MemoryImage,
    NodeId, Operand,
};
use rsp::mapper::{map, validate_schedule, MapOptions};
use rsp::sim::simulate;
use rsp::synth::{AreaModel, DelayModel};

/// Compact description of one random body node.
#[derive(Debug, Clone)]
enum GenOp {
    Load,
    DualLoad,
    Unary(OpKind, usize),
    Binary(OpKind, usize, usize),
    MulParam(usize),
    AccumAdd(usize),
    Store(usize),
}

fn arb_body(max_nodes: usize, allow_accum: bool) -> impl Strategy<Value = Vec<GenOp>> {
    let unaries = prop_oneof![Just(OpKind::Abs), Just(OpKind::Mov)];
    let binaries = prop_oneof![
        Just(OpKind::Add),
        Just(OpKind::Sub),
        Just(OpKind::Min),
        Just(OpKind::Max),
        Just(OpKind::And),
        Just(OpKind::Or),
        Just(OpKind::Xor),
        Just(OpKind::Mult),
        Just(OpKind::Shl),
        Just(OpKind::Asr),
    ];
    let node = (0usize..100, unaries, binaries, 0usize..100, 0usize..100).prop_map(
        move |(sel, u, b, a, bb)| match sel {
            0..=14 => GenOp::Load,
            15..=24 => GenOp::DualLoad,
            25..=34 => GenOp::Unary(u, a),
            35..=69 => GenOp::Binary(b, a, bb),
            70..=79 => GenOp::MulParam(a),
            80..=87 => {
                if allow_accum {
                    GenOp::AccumAdd(a)
                } else {
                    GenOp::Binary(OpKind::Add, a, bb)
                }
            }
            _ => GenOp::Store(a),
        },
    );
    prop::collection::vec(node, 2..max_nodes)
}

/// Materializes a generated body into a valid kernel. Every value-operand
/// index is reduced modulo the available earlier nodes; stores get their
/// own output arrays so results are order-independent.
fn build_kernel(
    ops: &[GenOp],
    elements: usize,
    steps: usize,
    style: MappingStyle,
) -> Option<Kernel> {
    let steps = if style == MappingStyle::Dataflow {
        1
    } else {
        steps
    };
    let mut kb = KernelBuilder::new("generated", elements);
    let input = kb.array("in", elements * steps + 64);
    let param = kb.param("p", 3);

    let mut b = DfgBuilder::new();
    let mut value_nodes: Vec<NodeId> = Vec::new();
    let mut pairs: Vec<NodeId> = Vec::new();
    let mut out_arrays = Vec::new();
    let mut planned_stores = Vec::new();

    // Pre-declare output arrays (KernelBuilder::array borrows kb).
    for (i, op) in ops.iter().enumerate() {
        if matches!(op, GenOp::Store(_)) {
            out_arrays.push(kb.array(format!("out{i}"), elements * steps));
            planned_stores.push(i);
        }
    }

    let mut store_idx = 0;
    let mut emitted_value = false;
    for op in ops {
        let pick = |i: usize, nodes: &Vec<NodeId>| -> Option<Operand> {
            if nodes.is_empty() {
                None
            } else {
                Some(Operand::Node(nodes[i % nodes.len()]))
            }
        };
        match op {
            GenOp::Load => {
                let n = b.load(AddrExpr::affine(
                    input,
                    (value_nodes.len() % 7) as i64,
                    steps as i64,
                    0,
                    1,
                ));
                value_nodes.push(n);
                emitted_value = true;
            }
            GenOp::DualLoad => {
                let n = b.load_pair(
                    AddrExpr::affine(input, 0, steps as i64, 0, 1),
                    AddrExpr::affine(input, 13, steps as i64, 0, 1),
                );
                pairs.push(n);
                value_nodes.push(n);
                emitted_value = true;
            }
            GenOp::Unary(kind, a) => {
                let Some(opa) = pick(*a, &value_nodes) else {
                    continue;
                };
                let n = b.op(*kind, vec![opa]);
                value_nodes.push(n);
            }
            GenOp::Binary(kind, a, bb) => {
                let Some(opa) = pick(*a, &value_nodes) else {
                    continue;
                };
                // Sometimes read the dual word of a load.
                let opb = if *bb % 3 == 0 && !pairs.is_empty() {
                    Operand::Pair(pairs[bb % pairs.len()])
                } else {
                    pick(*bb, &value_nodes).unwrap_or(Operand::Const((*bb as i32) - 50))
                };
                let n = b.op(*kind, vec![opa, opb]);
                value_nodes.push(n);
            }
            GenOp::MulParam(a) => {
                let Some(opa) = pick(*a, &value_nodes) else {
                    continue;
                };
                let n = b.mult(opa, Operand::Param(param));
                value_nodes.push(n);
            }
            GenOp::AccumAdd(a) => {
                let Some(opa) = pick(*a, &value_nodes) else {
                    continue;
                };
                let n = b.accum_add(opa, 1);
                value_nodes.push(n);
            }
            GenOp::Store(a) => {
                let Some(opa) = pick(*a, &value_nodes) else {
                    continue;
                };
                let dst = out_arrays[store_idx];
                store_idx += 1;
                b.store(AddrExpr::affine(dst, 0, steps as i64, 0, 1), opa);
            }
        }
    }
    if !emitted_value || store_idx == 0 {
        return None; // degenerate: nothing observable
    }
    kb.steps(steps).style(style).body(b.finish()).build().ok()
}

fn arb_arch() -> impl Strategy<Value = RspArchitecture> {
    (2usize..=6, 2usize..=8, 0usize..=2, 0usize..=2, 1u8..=3).prop_map(
        |(rows, cols, shr, shc, stages)| {
            if shr == 0 && shc == 0 {
                presets::shared_multiplier("p", rows, cols, 1, 0, stages)
            } else {
                presets::shared_multiplier("p", rows, cols, shr, shc, stages)
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The whole pipeline preserves semantics for arbitrary kernels and
    /// architectures.
    #[test]
    fn pipeline_preserves_semantics(
        ops in arb_body(10, true),
        elements in 1usize..20,
        steps in 1usize..3,
        dataflow in any::<bool>(),
        arch in arb_arch(),
        seed in any::<u64>(),
    ) {
        let style = if dataflow { MappingStyle::Dataflow } else { MappingStyle::Lockstep };
        let Some(kernel) = build_kernel(&ops, elements, steps, style) else {
            return Ok(());
        };
        let Ok(ctx) = map(arch.base(), &kernel, &MapOptions::default()) else {
            return Ok(()); // e.g. cache overflow on tiny arrays
        };
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();

        // Structural legality under the architecture's latencies.
        let lat = |i: usize| u32::from(arch.op_latency(ctx.instances()[i].op));
        prop_assert!(validate_schedule(&ctx, &r.cycles, lat).is_ok());

        // Functional equivalence.
        let input = MemoryImage::random(&kernel, seed);
        let params = Bindings::defaults(&kernel);
        let sim = simulate(
            &ctx, &arch, &r.cycles, &r.bindings, &kernel, &input, &params,
            &Default::default(),
        ).unwrap();
        let reference = evaluate(&kernel, &input, &params).unwrap();
        prop_assert_eq!(sim.memory, reference);
    }

    /// Rearrangement never speeds a schedule up and is the identity on
    /// the base architecture.
    #[test]
    fn rearrangement_only_delays(
        ops in arb_body(8, false),
        elements in 1usize..16,
        arch in arb_arch(),
    ) {
        let Some(kernel) = build_kernel(&ops, elements, 1, MappingStyle::Lockstep) else {
            return Ok(());
        };
        let Ok(ctx) = map(arch.base(), &kernel, &MapOptions::default()) else {
            return Ok(());
        };
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        prop_assert!(r.total_cycles >= ctx.total_cycles());
        for (i, &c) in r.cycles.iter().enumerate() {
            prop_assert!(c >= ctx.cycles()[i], "instance {i} moved earlier");
        }

        let base = RspArchitecture::new(
            "b",
            arch.base().clone(),
            rsp::arch::SharingPlan::none(),
        ).unwrap();
        let rb = rearrange(&ctx, &base, &Default::default()).unwrap();
        prop_assert_eq!(rb.cycles, ctx.cycles().to_vec());
    }

    /// Every multiplication is bound to a reachable resource with one
    /// issue per cycle; non-shared operations carry no binding.
    #[test]
    fn bindings_are_sound(
        ops in arb_body(8, false),
        elements in 1usize..16,
        arch in arb_arch(),
    ) {
        let Some(kernel) = build_kernel(&ops, elements, 1, MappingStyle::Lockstep) else {
            return Ok(());
        };
        let Ok(ctx) = map(arch.base(), &kernel, &MapOptions::default()) else {
            return Ok(());
        };
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let mut issues = std::collections::HashSet::new();
        for (i, inst) in ctx.instances().iter().enumerate() {
            if inst.op.fu() == Some(FuKind::Multiplier) {
                let res = r.bindings[i].expect("mult bound");
                prop_assert!(res.reaches(inst.pe));
                prop_assert!(issues.insert((res, r.cycles[i])), "double issue");
            } else {
                prop_assert!(r.bindings[i].is_none());
            }
        }
    }

    /// Area model invariants: eq. (2) grows monotonically with sharing
    /// resources and pipeline registers; reduction stays below 100 %.
    #[test]
    fn area_model_invariants(
        rows in 2usize..=8,
        cols in 2usize..=8,
        shr in 1usize..=3,
        shc in 0usize..=3,
        stages in 1u8..=4,
    ) {
        let model = AreaModel::new();
        let a = model.report(&presets::shared_multiplier("a", rows, cols, shr, shc, stages));
        prop_assert!(a.array_slices > 0.0);
        prop_assert!(a.reduction_pct() < 100.0);

        // More shared resources per row -> more area.
        let bigger = model.report(&presets::shared_multiplier("b", rows, cols, shr + 1, shc, stages));
        prop_assert!(bigger.array_slices > a.array_slices);

        // Pipelining adds registers, never removes area.
        if stages == 1 {
            let piped = model.report(&presets::shared_multiplier("c", rows, cols, shr, shc, 2));
            prop_assert!(piped.array_slices >= a.array_slices);
        }
    }

    /// Delay model invariants: pipelined sharing is never slower than
    /// combinational sharing at the same configuration, and wire load
    /// makes wider sharing monotonically slower for RS.
    #[test]
    fn delay_model_invariants(
        rows in 2usize..=8,
        shr in 1usize..=3,
        shc in 0usize..=3,
    ) {
        let model = DelayModel::new();
        let rs = model.report(&presets::shared_multiplier("rs", rows, rows, shr, shc, 1));
        let rsp = model.report(&presets::shared_multiplier("rsp", rows, rows, shr, shc, 2));
        prop_assert!(rsp.clock_ns < rs.clock_ns);

        let wider = model.report(&presets::shared_multiplier("w", rows, rows, shr + 1, shc, 1));
        prop_assert!(wider.clock_ns >= rs.clock_ns);
    }
}
