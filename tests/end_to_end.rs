//! End-to-end integration: the full Fig. 7 flow, from application
//! profiles to simulated, verified RSP configuration contexts.

use rsp::core::{run_flow, AppProfile, Constraints, DesignSpace, FlowConfig, Objective};
use rsp::kernel::{evaluate, suite, Bindings, MemoryImage};
use rsp::sim::simulate;

fn h263_domain() -> Vec<AppProfile> {
    vec![
        AppProfile::new(
            "H.263 encoder",
            vec![(suite::fdct(), 99), (suite::sad(), 396), (suite::mvm(), 25)],
        ),
        AppProfile::new(
            "filters",
            vec![(suite::fft_mult_loop(), 64), (suite::inner_product(), 32)],
        ),
    ]
}

#[test]
fn flow_then_simulate_every_critical_loop() {
    let report = run_flow(&h263_domain(), &FlowConfig::default()).unwrap();
    for ((cl, ctx), r) in report
        .critical_loops
        .iter()
        .zip(&report.contexts)
        .zip(&report.rsp_contexts)
    {
        let kernel = &cl.kernel;
        let input = MemoryImage::random(kernel, 0xFEED);
        let params = Bindings::defaults(kernel);
        let sim = simulate(
            ctx,
            &report.chosen,
            &r.cycles,
            &r.bindings,
            kernel,
            &input,
            &params,
            &Default::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
        let reference = evaluate(kernel, &input, &params).unwrap();
        assert_eq!(sim.memory, reference, "{}", kernel.name());
    }
}

#[test]
fn flow_chooses_a_design_that_shrinks_the_array() {
    let report = run_flow(&h263_domain(), &FlowConfig::default()).unwrap();
    assert!(report.area_slices < report.base_area_slices);
    // The paper's conclusion: the selected domain design pipelines the
    // multiplier (RSP), not just shares it.
    assert!(report.chosen.plan().has_pipelining());
}

#[test]
fn flow_objectives_produce_consistent_extremes() {
    let mut cfg = FlowConfig {
        objective: Objective::Area,
        ..FlowConfig::default()
    };
    let by_area = run_flow(&h263_domain(), &cfg).unwrap();
    cfg.objective = Objective::ExecutionTime;
    let by_time = run_flow(&h263_domain(), &cfg).unwrap();
    assert!(by_area.area_slices <= by_time.area_slices);
    assert!(by_time.weighted_et_ns() <= by_area.weighted_et_ns() + 1e-9);
}

#[test]
fn flow_with_single_multiplication_free_kernel_prefers_pipelining() {
    // A SAD-only domain: sharing costs nothing (no multiplications) and
    // pipelining buys the full clock gain, so the flow must pick the
    // smallest RSP design.
    let apps = vec![AppProfile::new("me", vec![(suite::sad(), 100)])];
    let report = run_flow(&apps, &FlowConfig::default()).unwrap();
    assert!(report.chosen.plan().has_pipelining());
    assert_eq!(report.perf[0].rs_stalls, 0);
    assert!(report.perf[0].dr_pct > 30.0);
}

#[test]
fn tight_cost_constraint_still_finds_fig8_like_designs() {
    let cfg = FlowConfig {
        constraints: Constraints {
            enforce_cost_bound: true,
            max_slowdown: 1.0, // must not be slower than base at all
        },
        space: DesignSpace::extended(),
        ..FlowConfig::default()
    };
    let report = run_flow(&h263_domain(), &cfg).unwrap();
    assert!(report.weighted_et_ns() <= report.weighted_base_et_ns() * 1.0 + 1e-9);
}

#[test]
fn flow_report_weights_are_normalized() {
    let report = run_flow(&h263_domain(), &FlowConfig::default()).unwrap();
    let total: f64 = report.critical_loops.iter().map(|c| c.weight).sum();
    assert!(total <= 1.0 + 1e-9);
    assert!(total > 0.5, "critical loops should cover most weight");
}
