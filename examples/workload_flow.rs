//! Workload subsystem end to end: write a kernel in the textual DFG
//! format, parse it, verify it against the simulator oracle, then run
//! the Fig. 7 flow on a generated workload suite whose multi-geometry
//! exploration genuinely selects the paper's 8×8 array.
//!
//! ```sh
//! cargo run --example workload_flow
//! ```

use rsp::core::{rearrange, AppProfile, Constraints, DesignSpace};
use rsp::kernel::{evaluate, Bindings, MemoryImage};
use rsp::mapper::{map, MapOptions};
use rsp::sim::simulate_rearranged;
use rsp::workload::{parse_kernel, print_kernel, registry, SUITE_MAX_SLOWDOWN};
use rsp::Session;

/// A hand-written workload: 16-point smoothing, `out[e] = (x[e] + x[e+1]) >> 1`.
const SMOOTH_DFG: &str = r#"
kernel "smooth16" {
  description "out[e] = (x[e] + x[e+1]) >> 1"
  elements 16
  array x[17]
  array out[16]
  body {
    n0 = load x[i], x[i + 1]   // dual load over both row read buses
    n1 = add n0, n0.hi
    n2 = asr n1, #1
    n3 = store out[i], n2
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the textual DFG (diagnostics carry line/column on error).
    let smooth = parse_kernel(SMOOTH_DFG)?;
    println!("parsed            : {smooth}");

    // 2. Every workload honors the same contract: map, rearrange, and
    //    simulate bit-identical to the reference evaluator.
    let base = rsp::arch::presets::base_8x8();
    let ctx = map(base.base(), &smooth, &MapOptions::default())?;
    let rsp2 = rsp::arch::presets::rsp2();
    let rearranged = rearrange(&ctx, &rsp2, &Default::default())?;
    let input = MemoryImage::random(&smooth, 42);
    let params = Bindings::defaults(&smooth);
    let report = simulate_rearranged(&ctx, &rsp2, &rearranged, &smooth, &input, &params)?;
    assert_eq!(report.memory, evaluate(&smooth, &input, &params)?);
    println!("oracle            : RSP#2 simulation bit-identical to the evaluator");

    // 3. The canonical form round-trips: print it back out.
    println!("canonical form    :\n{}", print_kernel(&smooth));

    // 4. Run the full flow on the generated registry suite plus the
    //    hand-written kernel. reduce8192x8x8 overflows the 4×4 and 6×6
    //    configuration caches, so the exploration earns the 8×8.
    let mut kernels: Vec<_> = registry().into_iter().map(|k| (k, 1)).collect();
    kernels.push((smooth, 64));
    let apps = vec![AppProfile::new("generated-suite", kernels)];
    let session = Session::builder()
        .coverage(1.0)
        .geometries(vec![(4, 4), (6, 6), (8, 8)])
        // The suite-wide cap (rationale on the constant): matmul16's
        // refill-charged stall estimates would fail the paper's 1.5×
        // everywhere. Same cap the tracked BENCH_workload.json uses.
        .constraints(Constraints {
            enforce_cost_bound: true,
            max_slowdown: SUITE_MAX_SLOWDOWN,
        })
        .build();
    let flow = session.flow(&apps, DesignSpace::paper(), Default::default())?;
    println!(
        "flow              : {} critical loops, selected {}x{} base, chose {}",
        flow.critical_loops.len(),
        flow.base.geometry().rows(),
        flow.base.geometry().cols(),
        flow.chosen.name()
    );
    println!(
        "result            : {:.0} slices vs {:.0} base, weighted ET {:.1} us",
        flow.area_slices,
        flow.base_area_slices,
        flow.weighted_et_ns() / 1e3
    );
    assert_eq!(flow.base.geometry().pe_count(), 64);
    // matmul16 forces the chosen design's exact rearrangement through
    // the configuration-cache splitter: refill stalls are visible in
    // the report.
    let refills: u32 = flow.perf.iter().map(|p| p.refill_stalls).sum();
    println!("refill            : {refills} stall cycles across the chosen design's contexts");
    assert!(flow.stats.refill_segments > 0);
    Ok(())
}
