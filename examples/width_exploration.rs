//! Beyond the paper: how the RSP trade-off shifts with datapath width.
//!
//! The paper synthesizes one width (16 bit). The first-principles
//! component estimators (`rsp::synth::estimate`) extrapolate the area and
//! delay of each unit to other widths — the array multiplier grows
//! quadratically while the ALU grows linearly, so the multiplier becomes
//! *more* area- and delay-critical as the datapath widens, and resource
//! sharing/pipelining pays off even more.
//!
//! ```sh
//! cargo run --example width_exploration
//! ```

use rsp::arch::{
    ArrayGeometry, BaseArchitecture, BusSpec, FuKind, PeDesign, RspArchitecture, SharedGroup,
    SharingPlan,
};
use rsp::synth::{AreaModel, ComponentLibrary, DelayModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>12} {:>11} {:>11}",
        "width",
        "mult slices",
        "mult %PE",
        "base slices",
        "RSP#2 slices",
        "area gain",
        "clock gain"
    );
    for width in [8u32, 16, 24, 32, 48] {
        let lib = ComponentLibrary::for_width(width);
        let area = AreaModel::with_library(lib.clone());
        let delay = DelayModel::with_library(lib.clone());

        let base = BaseArchitecture::new(
            ArrayGeometry::new(8, 8),
            PeDesign::with_units([FuKind::Alu, FuKind::Multiplier, FuKind::Shifter], width),
            BusSpec::paper_default(),
            256,
        );
        let plan =
            SharingPlan::none().with_group(SharedGroup::new(FuKind::Multiplier, 2, 0, 2)?)?;
        let rsp2 = RspArchitecture::new(format!("RSP#2@{width}b"), base, plan)?;

        let a = area.report(&rsp2);
        let d = delay.report(&rsp2);
        let mult = lib.spec(FuKind::Multiplier);
        let pe_area = lib.pe_area(FuKind::ALL);

        println!(
            "{:>6} {:>12.0} {:>9.1}% {:>12.0} {:>12.0} {:>10.1}% {:>10.1}%",
            format!("{width}b"),
            mult.area_slices,
            100.0 * mult.area_slices / pe_area,
            a.base_synthesized_slices,
            a.synthesized_slices,
            a.reduction_pct(),
            d.reduction_pct(),
        );
    }
    println!();
    println!("The multiplier's quadratic growth makes it an ever-larger share of the PE,");
    println!("so the paper's technique scales: at 32 bit the same RSP#2 plan saves");
    println!("substantially more area than at the paper's 16 bit, and the clock gain");
    println!("grows because the (pipelined-away) multiplier delay rises faster than the");
    println!("ALU path that replaces it as the critical path.");
    Ok(())
}
