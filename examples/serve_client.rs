//! A complete server round trip in one process: spawn `rsp-serve` on an
//! ephemeral port, connect a typed client, and issue ping / map /
//! explore / flow / stats requests — the same five request kinds the
//! wire protocol speaks (see `rsp::serve::proto` for the grammar).
//!
//! ```sh
//! cargo run --example serve_client
//! ```
//!
//! Against a standalone server (`cargo run --bin rsp-serve`), the same
//! client code applies — only the address changes.

use rsp::kernel::suite;
use rsp::serve::proto::{
    ExploreRequest, FlowRequest, Limits, MapRequest, Request, Response, SpaceSpec, WorkloadApp,
};
use rsp::serve::{Client, ServeConfig, Server};
use rsp::workload::print_kernel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ephemeral in-process server; a real deployment runs the
    // `rsp-serve` binary and clients connect to its --addr.
    let server = Server::spawn(ServeConfig::default())?;
    println!("server            : {}", server.addr());

    let mut client = Client::connect(server.addr())?;
    assert!(matches!(client.call(Request::Ping)?, Response::Pong));
    println!("ping              : pong");

    // Kernels travel as textual DFG source — the same format
    // `workloads/*.dfg` files use.
    let sad = print_kernel(&suite::sad());
    match client.call(Request::Map(MapRequest {
        kernel: sad.clone(),
        rows: 8,
        cols: 8,
    }))? {
        Response::Mapped(m) => println!(
            "map               : {} → {} cycles, II {}, {} instances",
            m.kernel, m.cycles, m.initiation_interval, m.instances
        ),
        other => panic!("expected Mapped, got {other:?}"),
    }

    // An explore request with a per-request deadline: the server's
    // session caches make repeats warm, and limits never leak across
    // requests.
    match client.call(Request::Explore(ExploreRequest {
        kernels: vec![sad.clone(), print_kernel(&suite::fdct())],
        weights: None,
        rows: 8,
        cols: 8,
        space: SpaceSpec::Paper,
        limits: Limits {
            deadline_ms: Some(60_000),
            candidate_budget: None,
        },
    }))? {
        Response::Explored(e) => println!(
            "explore           : {} candidates, {} feasible, best {} (complete: {})",
            e.candidates_seen,
            e.feasible,
            e.best.as_deref().unwrap_or("<none>"),
            e.complete
        ),
        other => panic!("expected Explored, got {other:?}"),
    }

    // The full Fig. 7 flow as a single request.
    match client.call(Request::Flow(FlowRequest {
        apps: vec![WorkloadApp {
            name: "video".into(),
            kernels: vec![(print_kernel(&suite::fdct()), 99), (sad, 396)],
        }],
        geometries: None,
        space: SpaceSpec::Paper,
        limits: Limits::none(),
    }))? {
        Response::Flowed(f) => println!(
            "flow              : chose {} ({:.0} slices vs {:.0} base), weighted ET {:.1} ns",
            f.chosen, f.area_slices, f.base_area_slices, f.weighted_et_ns
        ),
        other => panic!("expected Flowed, got {other:?}"),
    }

    // Observability round trip: the Stats snapshot covers the whole
    // request lifecycle — the map + explore + flow above shared one
    // session (cache hit rates show cross-request reuse) and one wire
    // path (reply latency quantiles, outcome counters, queue depth).
    match client.call(Request::Stats)? {
        Response::Stats(s) => {
            println!(
                "stats             : schema v{}, up {} ms, {} wire requests ({} completed, {} flow)",
                s.schema, s.uptime_ms, s.wire_requests, s.completed, s.flows
            );
            println!(
                "  session         : {} requests, {} plans synthesized, model hit rate {:.2}",
                s.requests, s.model_reports, s.model_hit_rate
            );
            println!(
                "  latency         : p50 {} µs, p90 {} µs, p99 {} µs over {} replies",
                s.latency_p50_us, s.latency_p90_us, s.latency_p99_us, s.latency_count
            );
            // Counters update before each reply is written, so the
            // snapshot already accounts for every reply this client has
            // received (its own Stats request is excluded).
            assert_eq!(s.latency_count, s.wire_requests);
            assert_eq!(s.rejected + s.faulted, 0);
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    server.shutdown();
    println!("shutdown          : clean");
    Ok(())
}
