//! Bring your own kernel and your own template: a complex FIR tap
//! (not part of the paper's suite) built with the DFG builder, mapped onto
//! a custom 4x8 array that shares *and* pipelines its multipliers.
//!
//! ```sh
//! cargo run --example custom_kernel
//! ```

use rsp::arch::{
    ArrayGeometry, BaseArchitecture, BusSpec, FuKind, PeDesign, RspArchitecture, SharedGroup,
    SharingPlan,
};
use rsp::core::{evaluate_perf, rearrange};
use rsp::kernel::{
    evaluate, AddrExpr, Bindings, DfgBuilder, KernelBuilder, MappingStyle, MemoryImage, Operand,
};
use rsp::mapper::{map, MapOptions};
use rsp::sim::simulate_rearranged;
use rsp::synth::{AreaModel, DelayModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The kernel: y[i] = (h0*x[i] + h1*x[i+1] + h2*x[i+2]) >> 4 ------
    let n = 64;
    let mut kb = KernelBuilder::new("FIR-3", n);
    let x = kb.array("x", n + 2);
    let y = kb.array("y", n);
    let h0 = kb.param("h0", 5);
    let h1 = kb.param("h1", 9);
    let h2 = kb.param("h2", 5);

    let mut b = DfgBuilder::new();
    let l01 = b.load_pair(AddrExpr::flat(x, 0, 1), AddrExpr::flat(x, 1, 1));
    let l2 = b.load(AddrExpr::flat(x, 2, 1));
    let m0 = b.mult(Operand::Node(l01), Operand::Param(h0));
    let m1 = b.mult(Operand::Pair(l01), Operand::Param(h1));
    let m2 = b.mult(Operand::Node(l2), Operand::Param(h2));
    let s0 = b.add(Operand::Node(m0), Operand::Node(m1));
    let s1 = b.add(Operand::Node(s0), Operand::Node(m2));
    let sc = b.asr(Operand::Node(s1), Operand::Const(4));
    b.store(AddrExpr::flat(y, 0, 1), Operand::Node(sc));

    let kernel = kb
        .description("y[i] = (h0*x[i] + h1*x[i+1] + h2*x[i+2]) >> 4")
        .style(MappingStyle::Dataflow)
        .body(b.finish())
        .build()?;
    println!("kernel: {kernel}");

    // --- The template: 4x8 array, two 2-stage multipliers per row -------
    let base = BaseArchitecture::new(
        ArrayGeometry::new(4, 8),
        PeDesign::full(),
        BusSpec::new(2, 1),
        128,
    );
    let plan = SharingPlan::none().with_group(SharedGroup::new(FuKind::Multiplier, 2, 0, 2)?)?;
    let arch = RspArchitecture::new("custom-4x8-RSP", base.clone(), plan)?;
    println!("architecture: {arch}");

    // --- Map, rearrange, measure ----------------------------------------
    let ctx = map(&base, &kernel, &MapOptions::default())?;
    let r = rearrange(&ctx, &arch, &Default::default())?;
    let perf = evaluate_perf(&ctx, &arch, &DelayModel::new(), &Default::default())?;
    let area = AreaModel::new().report(&arch);
    println!(
        "mapped: {} cycles base, {} cycles on RSP (RP {}, stalls {})",
        ctx.total_cycles(),
        r.total_cycles,
        r.rp_overhead,
        r.rs_stalls
    );
    println!(
        "clock {:.2} ns (base 26.00), ET {:.1} ns, DR {:+.1}%",
        perf.clock_ns, perf.et_ns, perf.dr_pct
    );
    println!(
        "area {:.0} slices vs {:.0} base ({:.1}% smaller)",
        area.synthesized_slices,
        area.base_synthesized_slices,
        area.reduction_pct()
    );

    // --- Verify against a plain software FIR ----------------------------
    let input = MemoryImage::random(&kernel, 99);
    let params = Bindings::defaults(&kernel);
    let sim = simulate_rearranged(&ctx, &arch, &r, &kernel, &input, &params)?;
    let reference = evaluate(&kernel, &input, &params)?;
    assert_eq!(sim.memory, reference);
    for i in 0..n {
        let direct =
            (5 * input.read(0, i) + 9 * input.read(0, i + 1) + 5 * input.read(0, i + 2)) >> 4;
        assert_eq!(sim.memory.read(1, i), direct);
    }
    println!("simulation matches the direct FIR computation for all {n} outputs");
    Ok(())
}
