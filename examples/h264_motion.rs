//! Toward the paper's future work: H.264 motion estimation kernels
//! (SAD and the 4x4 Hadamard SATD) on the RSP presets.
//!
//! §6 closes with "we are currently working on implementing H.264 encoder
//! on our architecture template" — this example sketches that workload:
//! SATD adds a transform to the residual before summing, trading extra
//! ALU work for better mode decisions. Neither kernel multiplies, so both
//! enjoy the full RSP clock speedup (the SAD row of Table 5).
//!
//! ```sh
//! cargo run --example h264_motion
//! ```

use rsp::arch::presets;
use rsp::core::evaluate_perf;
use rsp::kernel::{suite, AddrExpr, DfgBuilder, Kernel, KernelBuilder, MappingStyle, Operand};
use rsp::mapper::{map, MapOptions};
use rsp::synth::DelayModel;

/// 4x4 SATD: butterfly the residual rows (a 1-D Hadamard), accumulate
/// absolute values. One element per 4-pixel row of a residual block.
fn satd_4x4() -> Kernel {
    let mut kb = KernelBuilder::new("SATD-4x4", 64); // 16 blocks x 4 rows
    let cur = kb.array("cur", 256);
    let refa = kb.array("ref", 256);
    let partial = kb.array("partial", 64);

    let mut b = DfgBuilder::new();
    use Operand::{Node as N, Pair as P};
    // Residual r[j] = cur[4e + j] - ref[4e + j], j = 0..4.
    let l01 = b.load_pair(AddrExpr::flat(cur, 0, 4), AddrExpr::flat(refa, 0, 4));
    let r0 = b.sub(N(l01), P(l01));
    let l11 = b.load_pair(AddrExpr::flat(cur, 1, 4), AddrExpr::flat(refa, 1, 4));
    let r1 = b.sub(N(l11), P(l11));
    let l21 = b.load_pair(AddrExpr::flat(cur, 2, 4), AddrExpr::flat(refa, 2, 4));
    let r2 = b.sub(N(l21), P(l21));
    let l31 = b.load_pair(AddrExpr::flat(cur, 3, 4), AddrExpr::flat(refa, 3, 4));
    let r3 = b.sub(N(l31), P(l31));
    // 4-point Hadamard butterfly.
    let s0 = b.add(N(r0), N(r2));
    let s1 = b.add(N(r1), N(r3));
    let d0 = b.sub(N(r0), N(r2));
    let d1 = b.sub(N(r1), N(r3));
    let h0 = b.add(N(s0), N(s1));
    let h1 = b.sub(N(s0), N(s1));
    let h2 = b.add(N(d0), N(d1));
    let h3 = b.sub(N(d0), N(d1));
    // Sum of absolute transformed differences.
    let a0 = b.abs(N(h0));
    let a1 = b.abs(N(h1));
    let a2 = b.abs(N(h2));
    let a3 = b.abs(N(h3));
    let t0 = b.add(N(a0), N(a1));
    let t1 = b.add(N(a2), N(a3));
    let t = b.add(N(t0), N(t1));
    b.store(AddrExpr::flat(partial, 0, 1), N(t));

    kb.description("SATD over 4-pixel rows: Hadamard-transform the residual, sum |coefficients|")
        .style(MappingStyle::Dataflow)
        .body(b.finish())
        .build()
        .expect("satd kernel is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = presets::base_8x8();
    let delay = DelayModel::new();
    let kernels = [suite::sad(), satd_4x4()];

    println!("H.264-flavoured motion estimation on the RSP presets:");
    println!(
        "{:<10} {:<6} {:>7} {:>9} {:>8} {:>6}",
        "kernel", "arch", "cycles", "ET(ns)", "DR%", "stall"
    );
    for kernel in &kernels {
        let ctx = map(base.base(), kernel, &MapOptions::default())?;
        for arch in [
            presets::base_8x8(),
            presets::rs2(),
            presets::rsp1(),
            presets::rsp2(),
        ] {
            let p = evaluate_perf(&ctx, &arch, &delay, &Default::default())?;
            println!(
                "{:<10} {:<6} {:>7} {:>9.1} {:>7.1}% {:>6}",
                kernel.name(),
                arch.name(),
                p.cycles,
                p.et_ns,
                p.dr_pct,
                p.rs_stalls
            );
        }
    }
    println!("\nno multiplications -> both kernels take the full ~35% RSP clock gain,");
    println!("confirming the paper's motivation for extending the template to H.264.");
    Ok(())
}
