//! The paper's running example (Figs. 2, 3 and 6): loop-pipelined matrix
//! multiplication on a 4x4 array, first with eight shared multipliers,
//! then with four 2-stage pipelined ones.
//!
//! ```sh
//! cargo run --example matmul_pipelining
//! ```

use rsp::arch::presets;
use rsp::core::rearrange;
use rsp::kernel::{evaluate, suite, Bindings, MemoryImage};
use rsp::mapper::{map, MapOptions};
use rsp::sim::simulate_rearranged;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = suite::matmul(4);
    let base = presets::fig1_4x4();
    let ctx = map(base.base(), &kernel, &MapOptions::default())?;

    // Figure 2: the base loop-pipelined schedule.
    println!("=== Figure 2: base schedule (II = 3) ===");
    println!(
        "{}",
        ctx.render_schedule(ctx.cycles(), |i| i.op.mnemonic().to_string())
    );
    let profile = ctx.mult_profile();
    println!(
        "peak multiplication demand: {} total, {} per row -> RS needs {} multipliers ({} per row)",
        profile.max_per_cycle,
        profile.max_per_row_cycle,
        profile.max_per_row_cycle * 4,
        profile.max_per_row_cycle,
    );

    // Figure 3: sharing with two combinational multipliers per row.
    let rs = presets::shared_multiplier("RS-2/row", 4, 4, 2, 0, 1);
    let r = rearrange(&ctx, &rs, &Default::default())?;
    println!("\n=== Figure 3: 8 multipliers shared among 16 PEs ===");
    println!(
        "cycles {} (base {}), RS stalls {} -> two per row suffice, as the peak demand predicted",
        r.total_cycles, r.base_cycles, r.rs_stalls
    );

    // Figure 6: one 2-stage pipelined multiplier per row.
    let rsp = presets::shared_multiplier("RSP-1/row", 4, 4, 1, 0, 2);
    let r = rearrange(&ctx, &rsp, &Default::default())?;
    println!("\n=== Figure 6: 4 pipelined multipliers (2 stages) ===");
    println!(
        "{}",
        ctx.render_schedule(&r.cycles, |i| {
            if i.op == rsp::arch::OpKind::Mult {
                "1*".to_string() // issue cycle; stage 2 occupies the next
            } else {
                i.op.mnemonic().to_string()
            }
        })
    );
    println!(
        "cycles {} (base {}), RP overhead {}, RS stalls {} — half the multipliers of Fig. 3,",
        r.total_cycles, r.base_cycles, r.rp_overhead, r.rs_stalls
    );
    println!("because two multiplications occupy one multiplier in different pipeline stages.");

    // Both versions compute the same matrices.
    let input = MemoryImage::random(&kernel, 7);
    let params = Bindings::defaults(&kernel);
    let reference = evaluate(&kernel, &input, &params)?;
    let sim = simulate_rearranged(&ctx, &rsp, &r, &kernel, &input, &params)?;
    assert_eq!(sim.memory, reference);
    println!("\nsimulated Z == reference Z for random 16-bit inputs (seed 7)");
    println!(
        "peak in-flight multiplications on one shared multiplier: {}",
        sim.max_in_flight
    );

    // Bonus: the cycle-accurate trace of the first rows (shared ops
    // marked with ').
    let traced = rsp::sim::simulate(
        &ctx,
        &rsp,
        &r.cycles,
        &r.bindings,
        &kernel,
        &input,
        &params,
        &rsp::sim::SimOptions {
            record_trace: true,
            ..Default::default()
        },
    )?;
    let trace = traced.trace.expect("trace recorded");
    println!("\n=== execution trace (row 0 of the array) ===");
    for line in trace.render().lines().take(6) {
        println!("{line}");
    }
    println!(
        "peak parallelism: {} PEs active in one cycle",
        trace.peak_parallelism()
    );
    Ok(())
}
