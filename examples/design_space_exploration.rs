//! The full Fig. 7 design flow: profile a domain's applications, extract
//! critical loops, explore RSP parameters under the eq. (2) cost bound,
//! pick a Pareto-optimal design, and report exact performance.
//!
//! ```sh
//! cargo run --example design_space_exploration
//! ```

use rsp::core::{AppProfile, DesignSpace, Objective};
use rsp::kernel::suite;
use rsp::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The target domain: a video encoder plus scientific filters — the
    // kind of mixed embedded workload the paper's introduction motivates.
    let apps = vec![
        AppProfile::new(
            "H.263 encoder",
            vec![
                (suite::fdct(), 99), // one FDCT per macroblock
                (suite::sad(), 396), // motion search dominates
                (suite::mvm(), 25),
            ],
        ),
        AppProfile::new(
            "audio filterbank",
            vec![(suite::fft_mult_loop(), 128), (suite::inner_product(), 64)],
        ),
        AppProfile::new(
            "control loops",
            vec![(suite::state(), 16), (suite::hydro(), 32)],
        ),
    ];

    // A session assembles the flow configuration (and would share its
    // caches across further requests — see the `serve` module).
    let session = Session::builder()
        .objective(Objective::AreaDelayProduct)
        .build();

    // stages 1..4, shr/shc 0..3
    let report = session.flow(&apps, DesignSpace::extended(), Default::default())?;

    println!("critical loops (by execution weight):");
    for c in &report.critical_loops {
        println!("  {:<14} {:>5.1}%", c.kernel.name(), 100.0 * c.weight);
    }

    println!("\nPareto frontier (area vs estimated weighted execution time):");
    for p in report.exploration.pareto_points() {
        println!(
            "  {:<24} {:>9.0} slices  {:>10.1} ns  clock {:>5.2} ns",
            p.arch.name(),
            p.area_slices,
            p.est_et_ns,
            p.clock_ns
        );
    }

    println!("\nselected: {}", report.chosen);
    println!(
        "area {:.0} slices ({:.1}% below base), weighted ET {:.1} ns (base {:.1} ns)",
        report.area_slices,
        100.0 * (1.0 - report.area_slices / report.base_area_slices),
        report.weighted_et_ns(),
        report.weighted_base_et_ns()
    );

    println!("\nexact per-kernel performance on the chosen design:");
    println!(
        "  {:<14} {:>7} {:>10} {:>8} {:>6}",
        "kernel", "cycles", "ET(ns)", "DR%", "stall"
    );
    for p in &report.perf {
        println!(
            "  {:<14} {:>7} {:>10.1} {:>7.1}% {:>6}",
            p.kernel, p.cycles, p.et_ns, p.dr_pct, p.rs_stalls
        );
    }
    Ok(())
}
