//! Quickstart: map a kernel, refine the architecture with RSP, measure,
//! and verify the result bit-exactly against the reference evaluator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rsp::arch::presets;
use rsp::core::{evaluate_perf, rearrange};
use rsp::kernel::{evaluate, suite, Bindings, MemoryImage};
use rsp::mapper::{map, MapOptions};
use rsp::sim::simulate_rearranged;
use rsp::synth::{AreaModel, DelayModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's base architecture: an 8x8 mesh of full 16-bit PEs.
    let base = presets::base_8x8();
    println!("base architecture : {base}");

    // 2. A kernel from the paper's suite: matrix-vector multiplication.
    let kernel = suite::mvm();
    println!("kernel            : {kernel}");

    // 3. Map it into initial configuration contexts (loop pipelining).
    let ctx = map(base.base(), &kernel, &MapOptions::default())?;
    println!(
        "initial mapping   : {} cycles, {} instances",
        ctx.total_cycles(),
        ctx.instances().len()
    );

    // 4. Pick the paper's best design: RSP#2 (two 2-stage pipelined
    //    multipliers shared per row) and rearrange the contexts.
    let rsp2 = presets::rsp2();
    let rearranged = rearrange(&ctx, &rsp2, &Default::default())?;
    println!(
        "RSP#2 rearranged  : {} cycles ({} RP overhead, {} RS stalls)",
        rearranged.total_cycles, rearranged.rp_overhead, rearranged.rs_stalls
    );

    // 5. Cost and performance against the base architecture.
    let area = AreaModel::new().report(&rsp2);
    let perf = evaluate_perf(&ctx, &rsp2, &DelayModel::new(), &Default::default())?;
    println!(
        "area              : {:.0} slices vs {:.0} base ({:+.1}%)",
        area.synthesized_slices,
        area.base_synthesized_slices,
        -area.reduction_pct()
    );
    println!(
        "performance       : {:.1} ns vs {:.1} ns base (DR {:+.1}%)",
        perf.et_ns,
        rearranged.base_cycles as f64 * 26.0,
        perf.dr_pct
    );

    // 6. Prove the rearranged schedule still computes the right answer.
    let input = MemoryImage::random(&kernel, 2024);
    let params = Bindings::defaults(&kernel);
    let report = simulate_rearranged(&ctx, &rsp2, &rearranged, &kernel, &input, &params)?;
    let reference = evaluate(&kernel, &input, &params)?;
    assert_eq!(report.memory, reference);
    println!(
        "simulation        : {} ops executed, memory bit-identical to the reference evaluator",
        report.ops_executed
    );
    Ok(())
}
