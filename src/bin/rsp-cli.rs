//! `rsp-cli` — command-line front end for the RSP reproduction.
//!
//! ```text
//! rsp-cli suite                          list the benchmark kernels
//! rsp-cli archs                          list the preset architectures
//! rsp-cli perf <kernel> <arch>           cycles/ET/stalls of one pair
//! rsp-cli synth <arch>                   area and clock of one preset
//! rsp-cli schedule <kernel> [arch]       render the (rearranged) schedule
//! rsp-cli explore                        run the paper's design space
//! rsp-cli verify <kernel> <arch> [seed]  simulate vs reference evaluator
//! ```

use rsp::arch::{presets, RspArchitecture};
use rsp::core::{evaluate_perf, rearrange, DesignSpace, Session};
use rsp::kernel::{evaluate, suite, Bindings, Kernel, MemoryImage};
use rsp::mapper::{map, MapOptions};
use rsp::sim::simulate;
use rsp::synth::{AreaModel, DelayModel};
use std::process::ExitCode;

fn kernels() -> Vec<Kernel> {
    let mut v = suite::all();
    v.push(suite::matmul(8));
    v
}

fn find_kernel(name: &str) -> Option<Kernel> {
    kernels()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
}

fn find_arch(name: &str) -> Option<RspArchitecture> {
    presets::table_architectures()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rsp-cli <command>\n\
         \n\
         commands:\n\
         \x20 suite                          list benchmark kernels\n\
         \x20 archs                          list preset architectures\n\
         \x20 perf <kernel> <arch>           evaluate one kernel on one architecture\n\
         \x20 synth <arch>                   area/clock of one architecture\n\
         \x20 schedule <kernel> [arch]       render the schedule (default: base)\n\
         \x20 explore                        run the paper's design-space exploration\n\
         \x20 verify <kernel> <arch> [seed]  simulate and compare with the evaluator\n\
         \n\
         kernel names: {}\n\
         arch names:   Base RS#1..RS#4 RSP#1..RSP#4",
        kernels()
            .iter()
            .map(|k| k.name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args.first() {
        Some(c) => c.as_str(),
        None => return usage(),
    };
    match cmd {
        "suite" => {
            println!(
                "{:<14} {:>6} {:>6} {:>6} {:>10} description",
                "kernel", "iters", "ops", "mults", "style"
            );
            for k in kernels() {
                println!(
                    "{:<14} {:>6} {:>6} {:>6} {:>10} {}",
                    k.name(),
                    k.iterations(),
                    k.total_ops(),
                    k.total_mults(),
                    k.style().to_string(),
                    k.description()
                );
            }
            ExitCode::SUCCESS
        }
        "archs" => {
            let area = AreaModel::new();
            let delay = DelayModel::new();
            println!(
                "{:<6} {:>10} {:>9} {:>8} {:>9}",
                "arch", "slices", "clock", "areaR%", "delayR%"
            );
            for a in presets::table_architectures() {
                let ar = area.report(&a);
                let dr = delay.report(&a);
                println!(
                    "{:<6} {:>10.0} {:>8.2}n {:>7.1}% {:>8.1}%",
                    a.name(),
                    ar.synthesized_slices,
                    dr.clock_ns,
                    ar.reduction_pct(),
                    dr.reduction_pct()
                );
            }
            ExitCode::SUCCESS
        }
        "perf" => {
            let (Some(kn), Some(an)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let (Some(k), Some(a)) = (find_kernel(kn), find_arch(an)) else {
                eprintln!("unknown kernel or architecture");
                return ExitCode::FAILURE;
            };
            let ctx = match map(presets::base_8x8().base(), &k, &MapOptions::default()) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("mapping failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match evaluate_perf(&ctx, &a, &DelayModel::new(), &Default::default()) {
                Ok(p) => {
                    println!(
                        "{} on {}: {} cycles @ {:.2} ns = {:.1} ns (DR {:+.1}%), {} stalls, RP +{}",
                        p.kernel,
                        p.arch,
                        p.cycles,
                        p.clock_ns,
                        p.et_ns,
                        p.dr_pct,
                        p.rs_stalls,
                        p.rp_overhead
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("evaluation failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "synth" => {
            let Some(an) = args.get(1) else {
                return usage();
            };
            let Some(a) = find_arch(an) else {
                eprintln!("unknown architecture");
                return ExitCode::FAILURE;
            };
            let ar = AreaModel::new().report(&a);
            let dr = DelayModel::new().report(&a);
            println!("{a}");
            println!(
                "  area : {:.0} slices (PE {:.0} + regs {:.0} + switch {:.0}, shared {:.0}) — {:.1}% vs base",
                ar.synthesized_slices, ar.pe_slices, ar.reg_slices, ar.switch_slices,
                ar.shared_total_slices, -ar.reduction_pct()
            );
            println!(
                "  clock: {:.2} ns (PE path {:.1}, switch {:.1}, wire {:.2}) — {:.1}% vs base",
                dr.clock_ns,
                dr.pe_path_ns,
                dr.switch_ns,
                dr.wire_ns,
                -dr.reduction_pct()
            );
            ExitCode::SUCCESS
        }
        "schedule" => {
            let Some(kn) = args.get(1) else {
                return usage();
            };
            let Some(k) = find_kernel(kn) else {
                eprintln!("unknown kernel");
                return ExitCode::FAILURE;
            };
            let ctx = map(presets::base_8x8().base(), &k, &MapOptions::default())
                .expect("suite kernels map");
            let cycles = match args.get(2) {
                None => ctx.cycles().to_vec(),
                Some(an) => {
                    let Some(a) = find_arch(an) else {
                        eprintln!("unknown architecture");
                        return ExitCode::FAILURE;
                    };
                    match rearrange(&ctx, &a, &Default::default()) {
                        Ok(r) => r.cycles,
                        Err(e) => {
                            eprintln!("rearrangement failed: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            };
            print!(
                "{}",
                ctx.render_schedule(&cycles, |i| i.op.mnemonic().to_string())
            );
            ExitCode::SUCCESS
        }
        "explore" => {
            // One Session assembles what used to be hand-built
            // ExploreOptions + contexts (same defaults, same results).
            let session = Session::builder().build();
            let base = session.base(8, 8);
            let ks = suite::all();
            let weights = vec![1.0; ks.len()];
            match session.explore(
                &base,
                &ks,
                &weights,
                &DesignSpace::paper(),
                Default::default(),
            ) {
                Ok(r) => {
                    println!("Pareto frontier:");
                    for p in r.pareto_points() {
                        println!(
                            "  {:<24} {:>9.0} slices  est ET {:>9.1} ns",
                            p.arch.name(),
                            p.area_slices,
                            p.est_et_ns
                        );
                    }
                    println!("selected: {}", r.best_point().arch.name());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("exploration failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "verify" => {
            let (Some(kn), Some(an)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0xC0FFEE);
            let (Some(k), Some(a)) = (find_kernel(kn), find_arch(an)) else {
                eprintln!("unknown kernel or architecture");
                return ExitCode::FAILURE;
            };
            let ctx = map(presets::base_8x8().base(), &k, &MapOptions::default())
                .expect("suite kernels map");
            let r = rearrange(&ctx, &a, &Default::default()).expect("rearranges");
            let input = MemoryImage::random(&k, seed);
            let params = Bindings::defaults(&k);
            let sim = match simulate(
                &ctx,
                &a,
                &r.cycles,
                &r.bindings,
                &k,
                &input,
                &params,
                &Default::default(),
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("simulation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let reference = evaluate(&k, &input, &params).expect("evaluates");
            if sim.memory == reference {
                println!(
                    "OK: {} on {} (seed {seed}): {} ops, {} cycles, memory bit-identical",
                    k.name(),
                    a.name(),
                    sim.ops_executed,
                    sim.cycles
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("MISMATCH: simulated memory differs from the reference");
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
