//! `rsp-serve` — the exploration server as a process.
//!
//! ```text
//! rsp-serve [--addr HOST:PORT] [--workers N] [--log-json PATH|-]   serve until SIGKILL
//! rsp-serve --self-test [--log-json PATH|-]                        in-process round trip
//! ```
//!
//! `--log-json` streams every observability event (request lifecycle,
//! engine phases, cache counters) as JSON Lines to the given path, or
//! to stdout with `-`. Status output always goes to stderr, so
//! `--log-json -` produces pure JSONL on stdout.
//!
//! `--self-test` starts a server on an ephemeral port, runs one client
//! ping + map + explore + flow round trip against it, then issues a
//! `Stats` request and verifies the snapshot is self-consistent
//! (versioned schema, requests ≥ flows served, latency histogram
//! counts summing to the request count, ordered quantiles), shuts down
//! cleanly, and exits 0 — the CI smoke path.

use rsp::kernel::suite;
use rsp::obs::JsonlRecorder;
use rsp::serve::proto::{
    ExploreRequest, FlowRequest, Limits, MapRequest, Request, Response, SpaceSpec, WorkloadApp,
    STATS_SCHEMA_VERSION,
};
use rsp::serve::{Client, ServeConfig, Server};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rsp-serve [--addr HOST:PORT] [--workers N] [--log-json PATH|-] [--self-test]\n\
         \n\
         \x20 --addr HOST:PORT  bind address (default 127.0.0.1:7474; port 0 = ephemeral)\n\
         \x20 --workers N       worker threads / concurrent connections (default 4)\n\
         \x20 --log-json PATH   stream observability events as JSON Lines to PATH (- = stdout)\n\
         \x20 --self-test       start, run one client round trip, verify Stats, shut down, exit"
    );
    ExitCode::FAILURE
}

fn self_test() -> ExitCode {
    let server = match Server::spawn(ServeConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("self-test: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    eprintln!("self-test: serving on {addr}");
    let result = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        match client
            .call(Request::Ping)
            .map_err(|e| format!("ping: {e}"))?
        {
            Response::Pong => {}
            other => return Err(format!("expected Pong, got {other:?}")),
        }
        let sad = rsp::workload::print_kernel(&suite::sad());
        match client
            .call(Request::Map(MapRequest {
                kernel: sad.clone(),
                rows: 8,
                cols: 8,
            }))
            .map_err(|e| format!("map: {e}"))?
        {
            Response::Mapped(m) => eprintln!(
                "self-test: mapped {} ({} cycles, II {})",
                m.kernel, m.cycles, m.initiation_interval
            ),
            other => return Err(format!("expected Mapped, got {other:?}")),
        }
        match client
            .call(Request::Explore(ExploreRequest {
                kernels: vec![sad.clone()],
                weights: None,
                rows: 8,
                cols: 8,
                space: SpaceSpec::Paper,
                limits: Limits::none(),
            }))
            .map_err(|e| format!("explore: {e}"))?
        {
            Response::Explored(e) if e.complete && e.feasible > 0 => eprintln!(
                "self-test: explored {} candidates, {} feasible, best {}",
                e.candidates_seen,
                e.feasible,
                e.best.as_deref().unwrap_or("<none>")
            ),
            other => return Err(format!("expected complete Explored, got {other:?}")),
        }
        let fdct = rsp::workload::print_kernel(&suite::fdct());
        match client
            .call(Request::Flow(FlowRequest {
                apps: vec![WorkloadApp {
                    name: "self-test".into(),
                    kernels: vec![(fdct, 99), (sad, 396)],
                }],
                geometries: None,
                space: SpaceSpec::Paper,
                limits: Limits::none(),
            }))
            .map_err(|e| format!("flow: {e}"))?
        {
            Response::Flowed(f) if f.complete => eprintln!(
                "self-test: flow chose {} ({:.0} slices, {} critical loops)",
                f.chosen, f.area_slices, f.critical_loops
            ),
            other => return Err(format!("expected complete Flowed, got {other:?}")),
        }
        // The Stats snapshot must be versioned and self-consistent with
        // the traffic this very connection just generated.
        let s = match client
            .call(Request::Stats)
            .map_err(|e| format!("stats: {e}"))?
        {
            Response::Stats(s) => s,
            other => return Err(format!("expected Stats, got {other:?}")),
        };
        if s.schema != STATS_SCHEMA_VERSION {
            return Err(format!(
                "stats schema {} != expected {STATS_SCHEMA_VERSION}",
                s.schema
            ));
        }
        if !(s.requests > 0 && s.model_reports > 0) {
            return Err(format!("expected busy session stats, got {s:?}"));
        }
        // Four requests answered before this Stats: ping, map, explore,
        // flow (the snapshot is taken before its own request is
        // counted).
        if s.wire_requests < 4 {
            return Err(format!(
                "expected ≥ 4 wire requests before the snapshot, got {}",
                s.wire_requests
            ));
        }
        if s.flows != 1 || s.wire_requests < s.flows {
            return Err(format!(
                "expected wire_requests ≥ flows == 1, got {} / {}",
                s.wire_requests, s.flows
            ));
        }
        if s.latency_count != s.wire_requests {
            return Err(format!(
                "latency histogram holds {} observations for {} requests",
                s.latency_count, s.wire_requests
            ));
        }
        if !(s.latency_p50_us <= s.latency_p90_us && s.latency_p90_us <= s.latency_p99_us) {
            return Err(format!(
                "latency quantiles out of order: p50 {} p90 {} p99 {}",
                s.latency_p50_us, s.latency_p90_us, s.latency_p99_us
            ));
        }
        if s.rejected != 0 || s.faulted != 0 {
            return Err(format!(
                "clean traffic should reject/fault nothing, got {} / {}",
                s.rejected, s.faulted
            ));
        }
        eprintln!(
            "self-test: stats ok (schema {}, {} wire requests, {} flow, p50 {} µs, p99 {} µs, \
             model hit rate {:.2})",
            s.schema,
            s.wire_requests,
            s.flows,
            s.latency_p50_us,
            s.latency_p99_us,
            s.model_hit_rate
        );
        Ok(())
    })();
    server.shutdown();
    match result {
        Ok(()) => {
            eprintln!("self-test: ok (clean shutdown)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("self-test: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig {
        addr: "127.0.0.1:7474".into(),
        ..ServeConfig::default()
    };
    let mut self_test_mode = false;
    let mut log_json: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--self-test" => self_test_mode = true,
            "--addr" => match iter.next() {
                Some(a) => config.addr = a.clone(),
                None => return usage(),
            },
            "--workers" => match iter.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => return usage(),
            },
            "--log-json" => match iter.next() {
                Some(p) => log_json = Some(p.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    // Install the JSONL recorder process-wide *before* any session or
    // server is built: option structs resolve their default recorder
    // from the global at construction time.
    if let Some(path) = &log_json {
        let recorder = if path == "-" {
            JsonlRecorder::stdout()
        } else {
            match JsonlRecorder::create(std::path::Path::new(path)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("rsp-serve: cannot create --log-json {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        rsp::obs::set_global(Arc::new(recorder));
        config.recorder = rsp::obs::global();
    }

    if self_test_mode {
        return self_test();
    }

    let server = match Server::spawn(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rsp-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "rsp-serve: listening on {} (protocol v{})",
        server.addr(),
        rsp::serve::proto::PROTOCOL_VERSION
    );
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
