//! `rsp-serve` — the exploration server as a process.
//!
//! ```text
//! rsp-serve [--addr HOST:PORT] [--workers N]   serve until SIGKILL
//! rsp-serve --self-test                        in-process round trip
//! ```
//!
//! `--self-test` starts a server on an ephemeral port, runs one client
//! ping + map + explore round trip against it, verifies the session's
//! caches saw the traffic, shuts down cleanly, and exits 0 — the CI
//! smoke path.

use rsp::kernel::suite;
use rsp::serve::proto::{ExploreRequest, Limits, MapRequest, Request, Response, SpaceSpec};
use rsp::serve::{Client, ServeConfig, Server};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rsp-serve [--addr HOST:PORT] [--workers N] [--self-test]\n\
         \n\
         \x20 --addr HOST:PORT  bind address (default 127.0.0.1:7474; port 0 = ephemeral)\n\
         \x20 --workers N       worker threads / concurrent connections (default 4)\n\
         \x20 --self-test       start, run one client round trip, shut down, exit"
    );
    ExitCode::FAILURE
}

fn self_test() -> ExitCode {
    let server = match Server::spawn(ServeConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("self-test: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    println!("self-test: serving on {addr}");
    let result = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        match client
            .call(Request::Ping)
            .map_err(|e| format!("ping: {e}"))?
        {
            Response::Pong => {}
            other => return Err(format!("expected Pong, got {other:?}")),
        }
        let sad = rsp::workload::print_kernel(&suite::sad());
        match client
            .call(Request::Map(MapRequest {
                kernel: sad.clone(),
                rows: 8,
                cols: 8,
            }))
            .map_err(|e| format!("map: {e}"))?
        {
            Response::Mapped(m) => println!(
                "self-test: mapped {} ({} cycles, II {})",
                m.kernel, m.cycles, m.initiation_interval
            ),
            other => return Err(format!("expected Mapped, got {other:?}")),
        }
        match client
            .call(Request::Explore(ExploreRequest {
                kernels: vec![sad],
                weights: None,
                rows: 8,
                cols: 8,
                space: SpaceSpec::Paper,
                limits: Limits::none(),
            }))
            .map_err(|e| format!("explore: {e}"))?
        {
            Response::Explored(e) if e.complete && e.feasible > 0 => println!(
                "self-test: explored {} candidates, {} feasible, best {}",
                e.candidates_seen,
                e.feasible,
                e.best.as_deref().unwrap_or("<none>")
            ),
            other => return Err(format!("expected complete Explored, got {other:?}")),
        }
        match client
            .call(Request::Stats)
            .map_err(|e| format!("stats: {e}"))?
        {
            Response::Stats(s) if s.requests > 0 && s.model_reports > 0 => {
                println!(
                    "self-test: session saw {} requests, {} plans synthesized, {} cache hits",
                    s.requests, s.model_reports, s.model_hits
                );
            }
            other => return Err(format!("expected busy Stats, got {other:?}")),
        }
        Ok(())
    })();
    server.shutdown();
    match result {
        Ok(()) => {
            println!("self-test: ok (clean shutdown)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("self-test: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig {
        addr: "127.0.0.1:7474".into(),
        ..ServeConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--self-test" => return self_test(),
            "--addr" => match iter.next() {
                Some(a) => config.addr = a.clone(),
                None => return usage(),
            },
            "--workers" => match iter.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let server = match Server::spawn(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rsp-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "rsp-serve: listening on {} (protocol v{})",
        server.addr(),
        rsp::serve::proto::PROTOCOL_VERSION
    );
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
