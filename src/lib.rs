//! # rsp — Resource Sharing and Pipelining for CGRAs
//!
//! A full reproduction of *"Resource Sharing and Pipelining in
//! Coarse-Grained Reconfigurable Architecture for Domain-Specific
//! Optimization"* (Kim, Kiemb, Park, Jung, Choi — DATE 2005) as a Rust
//! library suite:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`arch`] | `rsp-arch` | the architecture template: PEs, mesh, row buses, bus switches, shared/pipelined resource banks |
//! | [`kernel`] | `rsp-kernel` | loop-kernel dataflow IR, the Livermore/DSP suite, reference evaluator |
//! | [`mapper`] | `rsp-mapper` | loop-pipelining mapper producing initial configuration contexts |
//! | [`synth`] | `rsp-synth` | eq. (2) area model and calibrated clock model (Synplify/Virtex-II substitute) |
//! | [`core`] | `rsp-core` | RS/RP/RSP context rearrangement, stall estimation, design-space exploration, the Fig. 7 flow |
//! | [`sim`] | `rsp-sim` | cycle-accurate structural simulator and functional oracle |
//! | [`workload`] | `rsp-workload` | textual DFG format, parametric kernel generators, seeded random DFGs, the committed `workloads/` suite |
//! | [`serve`] | `rsp-serve` | line-protocol exploration server: concurrent map/explore/flow requests over one shared [`Session`] |
//! | [`obs`] | `rsp-obs` | zero-dependency observability: spans, counters, latency histograms behind a pluggable [`obs::Recorder`] |
//!
//! # Quickstart
//!
//! Evaluate the paper's headline experiment — SAD on RSP#1 gains ~35 %
//! over the base architecture because pipelining the (shared) multiplier
//! shortens the clock while SAD pays no multiplication latency:
//!
//! ```
//! use rsp::arch::presets;
//! use rsp::core::evaluate_perf;
//! use rsp::kernel::suite;
//! use rsp::mapper::{map, MapOptions};
//! use rsp::synth::DelayModel;
//!
//! let base = presets::base_8x8();
//! let ctx = map(base.base(), &suite::sad(), &MapOptions::default())?;
//! let perf = evaluate_perf(&ctx, &presets::rsp1(), &DelayModel::new(), &Default::default())?;
//! assert!(perf.dr_pct > 30.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! For repeated or concurrent queries, build a [`Session`] once and let
//! its shared caches carry every request (the CLI, the [`serve`] server,
//! and the tests all go through it):
//!
//! ```
//! use rsp::core::DesignSpace;
//! use rsp::kernel::suite;
//! use rsp::Session;
//!
//! let session = Session::builder().build();
//! let base = session.base(8, 8);
//! let result = session.explore(
//!     &base,
//!     &[suite::sad()],
//!     &[1.0],
//!     &DesignSpace::paper(),
//!     Default::default(),
//! )?;
//! assert!(result.feasible.len() >= 4);
//! # Ok::<(), rsp::core::RspError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use rsp_arch as arch;
pub use rsp_core as core;
pub use rsp_kernel as kernel;
pub use rsp_mapper as mapper;
pub use rsp_obs as obs;
pub use rsp_serve as serve;
pub use rsp_sim as sim;
pub use rsp_synth as synth;
pub use rsp_workload as workload;

pub use rsp_core::{Session, SessionBuilder};
