//! Vendored, offline subset of the `criterion` API.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness shape plus
//! `Criterion`, `BenchmarkGroup`, and `Bencher::iter` with a simple
//! warmup + median-of-samples timer printing one line per benchmark.
//! No statistics, plots, or baselines — the workspace's tracked numbers
//! come from `rsp-bench`'s own JSON harness instead.

use std::time::Instant;

/// Re-export for convenience parity with criterion.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Parses CLI args (accepted and ignored in this stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.sample_size == 0 {
                10
            } else {
                self.sample_size
            },
            _parent: self,
        }
    }

    /// Runs one benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_bench(&name.into(), 10, f);
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        run_bench(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            f,
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples after one warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{label}: median {:.3} ms ({} samples)",
        median * 1e3,
        b.samples.len()
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
