//! Deterministic test runner: config, RNG, error type, and the
//! `proptest!` / assertion macros.

use std::fmt;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the stub runs fewer because the
        // heavyweight pipeline properties dominate test wall-clock.
        ProptestConfig { cases: 32 }
    }
}

/// Failure of one generated case (`prop_assert!` family).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* stream seeded from the test name and case
/// index — reproducible across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
        TestRng(if h == 0 { 0xdeadbeef } else { h })
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Defines property tests; see the crate docs for the supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl ($cfg) $($rest)*}
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(__e) = __result {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            __e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*}
    };
}

/// Uniform choice among strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

/// Condition assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, "{:?} != {:?}", __l, __r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{:?} != {:?}: {}",
                    __l,
                    __r,
                    format!($($fmt)*)
                )
            }
        }
    };
}

/// Inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "{:?} == {:?}", __l, __r)
            }
        }
    };
}
