//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from a deterministic RNG.
///
/// Unlike real proptest there is no value tree / shrinking; `gen_value`
/// produces the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, retrying otherwise.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.gen_value(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map {:?} rejected 1000 candidates", self.whence);
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// Builds a union; panics on empty input.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.options.len());
        self.options[i].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+ => $($idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B => 0, 1);
impl_tuple_strategy!(A, B, C => 0, 1, 2);
impl_tuple_strategy!(A, B, C, D => 0, 1, 2, 3);
impl_tuple_strategy!(A, B, C, D, E => 0, 1, 2, 3, 4);
impl_tuple_strategy!(A, B, C, D, E, F => 0, 1, 2, 3, 4, 5);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
