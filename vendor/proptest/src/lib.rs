//! Vendored, offline subset of the `proptest` API.
//!
//! Deterministic (fixed per-test seeds derived from the test name — no
//! ambient randomness, no persistence files) and without shrinking:
//! a failing case panics with its inputs' debug representation instead.
//! The supported surface is exactly what this workspace's property tests
//! use: integer-range and tuple strategies, `Just`, `any::<T>()`,
//! `prop_oneof!`, `prop::collection::vec`, `prop_map`/`prop_filter_map`,
//! and the `proptest!` macro with `ProptestConfig::with_cases`.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.len.end - self.len.start) + self.len.start;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// The `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
