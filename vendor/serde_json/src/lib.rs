//! Vendored, offline subset of `serde_json` over the stub [`serde`] crate.
//!
//! Serializes through [`serde::Value`] (re-exported here as
//! [`Value`]) and renders/parses JSON text. Integers round-trip exactly;
//! floats use Rust's shortest-round-trip formatting. Non-finite floats
//! serialize as `null`, matching real `serde_json`'s lossy `json!` mode.

pub use serde::Value;
use serde::{DeserializeOwned, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Converts `value` into the [`Value`] data model.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes `T` from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Deserializes `T` from a [`Value`].
pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T, Error> {
    Ok(T::from_value(&v)?)
}

// ---- writer -----------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip formatting and keeps a
        // trailing `.0` so the value parses back as a float.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = std::str::from_utf8(
                                self.bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("bad number {text:?}")))
        }
    }
}
