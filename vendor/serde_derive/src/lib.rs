//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! The derive input is parsed directly from the `proc_macro` token stream
//! (no `syn`/`quote` — the build environment is offline). Supported item
//! shapes cover everything in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, the
//!   same JSON layout real serde produces).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported;
//! hitting one is a compile error rather than silent misbehaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the stub `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- parsing ----------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stub does not support generic type `{name}`");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.remove(i) {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, found {other}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

/// Splits a field/variant list on top-level commas, tracking `<...>` depth
/// so commas inside generic arguments don't split.
fn split_top_level(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in ts {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    split_top_level(ts)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match &field[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    split_top_level(ts).len()
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    split_top_level(ts)
        .into_iter()
        .map(|var| {
            let mut i = 0;
            skip_attrs_and_vis(&var, &mut i);
            let name = match &var[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, found {other}"),
            };
            i += 1;
            let fields = match var.get(i) {
                None => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(other) => panic!("unexpected variant body: {other}"),
            };
            Variant { name, fields }
        })
        .collect()
}

// ---- code generation --------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(names) => named_to_value(names, "&self.", ""),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inner = named_to_value(fs, "", "");
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(String::from(\"{vn}\"), {inner})]),",
                                fs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn named_to_value(names: &[String], prefix: &str, _suffix: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| format!("(String::from(\"{f}\"), ::serde::Serialize::to_value({prefix}{f}))"))
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(names) => named_from_value(name, names, &format!("{name} {{"), "}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                        .collect();
                    format!(
                        "let __s = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                         if __s.len() != {n} {{ return Err(::serde::DeError::expected(\"{n}-element array\", \"{name}\")); }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
            };
            wrap_deserialize(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),")),
                    Fields::Tuple(1) => tagged_arms.push(format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => {{\n\
                                 let __s = __inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vn}\"))?;\n\
                                 if __s.len() != {n} {{ return Err(::serde::DeError::expected(\"{n}-element array\", \"{name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({}))\n\
                             }}",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inner = named_from_value(
                            &format!("{name}::{vn}"),
                            fs,
                            &format!("{name}::{vn} {{"),
                            "}",
                        );
                        tagged_arms.push(format!("\"{vn}\" => {{ let __v = __inner; {inner} }}"));
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => Err(::serde::DeError(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => Err(::serde::DeError(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::DeError::expected(\"variant\", \"{name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            );
            wrap_deserialize(name, &body)
        }
    }
}

fn named_from_value(ty_label: &str, names: &[String], open: &str, close: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\", \"{ty_label}\")?)?,"
            )
        })
        .collect();
    format!(
        "let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{ty_label}\"))?;\n\
         Ok({open} {} {close})",
        fields.join("\n")
    )
}

fn wrap_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
