//! Vendored, offline subset of the `rand` API.
//!
//! Implements `StdRng::seed_from_u64` + `gen_range` over a SplitMix64 /
//! xoshiro256** pipeline — deterministic across platforms, which is all
//! the workspace needs (reproducible test images and property inputs).

use std::ops::{Range, RangeInclusive};

/// Core random source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling extension, mirroring `rand::Rng::gen_range`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled.
pub trait SampleRange<T> {
    /// Samples one value.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng;
    /// the stream differs from upstream, which no caller relies on).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i32 = a.gen_range(-63..=63);
            assert_eq!(x, b.gen_range(-63..=63));
            assert!((-63..=63).contains(&x));
        }
    }
}
