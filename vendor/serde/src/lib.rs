//! Vendored, offline subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a small self-contained replacement implementing the pieces the
//! repo actually uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, and a JSON-shaped [`Value`] data model consumed by
//! the sibling `serde_json` stub.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! serialization goes through [`Value`] directly. This keeps the stub
//! tiny while preserving lossless round trips for every type in the
//! workspace (integers are carried as `i128`, floats as `f64`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The self-describing data model: a superset of JSON values.
///
/// Integers are kept separate from floats so `u64`/`i64` round-trip
/// exactly (JSON text produced from a [`Value`] never loses precision).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any integer (covers the full `u64` and `i64` ranges).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is a sequence.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable elements if this is a sequence.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The entries if this is an object.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no key {key:?} in value"))
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Map(m) => {
                let pos = m
                    .iter()
                    .position(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("no key {key:?} in value"));
                &mut m[pos].1
            }
            _ => panic!("cannot index non-object value with {key:?}"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Seq(s) => &s[i],
            _ => panic!("cannot index non-array value with {i}"),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        match self {
            Value::Seq(s) => &mut s[i],
            _ => panic!("cannot index non-array value with {i}"),
        }
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i128) }
        }
    )*};
}
value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An "expected X while deserializing Y" error.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type constructible from the [`Value`] data model.
///
/// The lifetime parameter exists only for signature compatibility with
/// real serde bounds such as `for<'de> Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {
    /// Builds `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Owned-deserialization alias mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Looks a field up in a serialized struct map.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str, ty: &str) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}` in {ty}")))
}

// ---- primitive impls --------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i128) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| DeError(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) if s.len() == 2 => Ok((A::from_value(&s[0])?, B::from_value(&s[1])?)),
            _ => Err(DeError::expected("2-element array", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) if s.len() == 3 => Ok((
                A::from_value(&s[0])?,
                B::from_value(&s[1])?,
                C::from_value(&s[2])?,
            )),
            _ => Err(DeError::expected("3-element array", "tuple")),
        }
    }
}

/// Map keys must serialize to strings or integers to be JSON-compatible.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        other => panic!("unsupported map key {other:?}"),
    }
}

fn key_from_str(s: &str) -> Value {
    // Integer-looking keys were integers before serialization.
    if let Ok(i) = s.parse::<i128>() {
        Value::Int(i)
    } else {
        Value::Str(s.to_string())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_str(k))?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "BTreeSet")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_str(k))?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "HashMap")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
