//! Vendored, offline subset of the `rayon` API.
//!
//! Backed by `std::thread::scope` instead of a work-stealing runtime: a
//! parallel map distributes items round-robin over `N` OS threads and
//! reassembles results **by original index**, so `collect()` ordering is
//! always identical to the sequential iterator — the determinism the
//! exploration engine's bit-identical guarantee relies on.
//!
//! Supported surface: `into_par_iter()` / `par_iter()` on ranges, `Vec`,
//! and slices; `map(..).collect::<Vec<_>>()`; `ThreadPoolBuilder` +
//! `ThreadPool::install` to bound the thread count (thread-local, like
//! rayon's pool scoping).

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;
use std::ops::Range;

/// Re-exports matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Threads a parallel call will use: the installed pool's size, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Error from [`ThreadPoolBuilder::build`] (infallible in this stub).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a bounded [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounds the pool to `n` threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
            }),
        })
    }
}

/// A scoped thread-count context: parallel iterators inside
/// [`ThreadPool::install`] use this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's thread count installed.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|c| {
            let prev = c.replace(Some(self.num_threads));
            let out = f();
            c.set(prev);
            out
        })
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `par_iter()` on collections of cloneable/cheap items by reference is
/// not supported by this stub; instead `par_iter()` clones references'
/// targets into the item vector only for `Copy`-like usage through
/// [`IntoParallelIterator`] on `&[T]` yielding `&T` items.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Send;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// An eager parallel iterator (items are buffered up front).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// Minimal `ParallelIterator`: `map` then `collect`.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Maps each element through `f` in parallel.
    fn map<O, F>(self, f: F) -> ParMap<Self::Item, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync;

    /// Collects into a `Vec`, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParIter<Self::Item>;
}

impl<I: Send> ParallelIterator for ParIter<I> {
    type Item = I;

    fn map<O, F>(self, f: F) -> ParMap<I, F>
    where
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    fn collect<C>(self) -> C
    where
        C: FromParIter<I>,
    {
        C::from_vec(self.items)
    }
}

/// A mapped parallel iterator.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, O, F> ParMap<I, F>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    /// Runs the map over the installed thread count and collects results
    /// in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParIter<O>,
    {
        C::from_vec(par_map_vec(self.items, current_num_threads(), self.f))
    }
}

/// Collection target for the stub's `collect`.
pub trait FromParIter<T> {
    /// Builds the collection from an ordered `Vec`.
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Order-preserving parallel map: item `i` of the result is `f(items[i])`
/// regardless of thread count or scheduling.
pub fn par_map_vec<I, O, F>(items: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = threads.min(n);
    // Round-robin assignment balances heterogeneous item costs without a
    // work-stealing queue; results carry their original index home.
    let mut lanes: Vec<Vec<(usize, I)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        lanes[i % threads].push((i, item));
    }
    let f = &f;
    let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .into_iter()
            .map(|lane| {
                scope.spawn(move || {
                    lane.into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, out) in h.join().expect("parallel worker panicked") {
                slots[i] = Some(out);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_collect_matches_serial() {
        let serial: Vec<usize> = (0..100).map(|i| i * i).collect();
        let parallel: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 2));
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }
}
