//! Fixed-bucket latency histogram with lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: one bucket per power-of-two of nanoseconds, so bucket
/// `i` holds observations in `[2^i, 2^(i+1))` ns (bucket 0 additionally
/// holds 0 ns). 64 buckets cover every representable `u64` duration.
const BUCKETS: usize = 64;

/// A fixed-bucket histogram of durations in nanoseconds.
///
/// Buckets are powers of two, so recording is a `leading_zeros` and one
/// relaxed atomic increment — cheap enough for per-request paths.
/// Quantiles interpolate linearly inside the selected bucket, giving
/// ≤ 2× relative error, which is plenty for p50/p90/p99 dashboards.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(ns: u64) -> usize {
    // 0 and 1 land in bucket 0; otherwise floor(log2(ns)).
    63 - ns.max(1).leading_zeros() as usize
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn observe(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed durations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation, in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, estimated by
    /// linear interpolation within the bucket holding that rank.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the observation we want.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let width = if i == 0 { 2 } else { 1u64 << i };
                // Position of the rank inside this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + frac * width as f64;
                return (est as u64).min(self.max_ns().max(lo));
            }
            seen += n;
        }
        self.max_ns()
    }

    /// Per-bucket `(lower_bound_ns, count)` pairs for non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (if i == 0 { 0 } else { 1u64 << i }, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bound_the_data() {
        let h = Histogram::new();
        for ns in [100, 200, 300, 400, 500, 600, 700, 800, 900, 10_000] {
            h.observe(ns);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max_ns(), 10_000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Power-of-two buckets: estimates are within 2× of the truth.
        assert!((250..=1024).contains(&p50), "p50 = {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(p99 <= 10_000, "p99 {p99} exceeds max");
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum_ns(), 4 * (999 * 1000 / 2));
        assert_eq!(h.max_ns(), 999);
    }
}
