//! The borrowed, allocation-free event record.
//!
//! Emission sites build an [`Event`] on the stack (all strings are
//! `&'static str` or borrowed) and hand it to
//! [`Recorder::record`](crate::Recorder::record); recorders that keep
//! events own-copy them ([`crate::ring::OwnedEvent`]). Nothing here
//! allocates, so a disabled recorder costs one virtual call and a
//! branch.

/// A typed field value attached to an event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value<'a> {
    /// An unsigned quantity (counts, cycles, bytes).
    U64(u64),
    /// A signed quantity (deltas, gauge levels).
    I64(i64),
    /// A measurement (ratios, seconds).
    F64(f64),
    /// A borrowed label (a plan name, a prune reason).
    Str(&'a str),
    /// A flag.
    Bool(bool),
}

/// What kind of observation an [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// A named phase completed, taking `elapsed_ns` wall nanoseconds.
    Span {
        /// Wall-clock duration of the phase.
        elapsed_ns: u64,
    },
    /// A named counter advanced by `delta`.
    Count {
        /// How much the counter moved (usually 1).
        delta: u64,
    },
    /// A moment in time; the payload is entirely in `fields`.
    Point,
}

/// One observation, borrowed from the emission site's stack.
#[derive(Clone, Copy, Debug)]
pub struct Event<'a> {
    /// Subsystem that emitted the event (`"explore"`, `"serve"`, …).
    pub target: &'static str,
    /// What happened (`"estimate"`, `"prune"`, `"request"`, …).
    pub name: &'static str,
    /// Correlation id: wire envelope id, candidate index, 0 if unused.
    pub id: u64,
    /// Span / count / point.
    pub kind: EventKind,
    /// Typed key–value details; empty for most events.
    pub fields: &'a [(&'static str, Value<'a>)],
}
