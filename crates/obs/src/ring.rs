//! In-memory recorder for tests, snapshots, and phase profiling.

use crate::event::{Event, EventKind, Value};
use crate::recorder::Recorder;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// An owned copy of [`Value`].
#[derive(Clone, Debug, PartialEq)]
pub enum OwnedValue {
    /// See [`Value::U64`].
    U64(u64),
    /// See [`Value::I64`].
    I64(i64),
    /// See [`Value::F64`].
    F64(f64),
    /// See [`Value::Str`].
    Str(String),
    /// See [`Value::Bool`].
    Bool(bool),
}

impl From<Value<'_>> for OwnedValue {
    fn from(v: Value<'_>) -> Self {
        match v {
            Value::U64(x) => OwnedValue::U64(x),
            Value::I64(x) => OwnedValue::I64(x),
            Value::F64(x) => OwnedValue::F64(x),
            Value::Str(s) => OwnedValue::Str(s.to_string()),
            Value::Bool(b) => OwnedValue::Bool(b),
        }
    }
}

/// An owned copy of [`Event`], as kept in the ring.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedEvent {
    /// See [`Event::target`].
    pub target: &'static str,
    /// See [`Event::name`].
    pub name: &'static str,
    /// See [`Event::id`].
    pub id: u64,
    /// See [`Event::kind`].
    pub kind: EventKind,
    /// See [`Event::fields`].
    pub fields: Vec<(&'static str, OwnedValue)>,
}

impl OwnedEvent {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Aggregate totals for one `(target, name)` pair, kept outside the
/// ring so profiling totals survive ring wrap-around.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Events seen for this pair.
    pub count: u64,
    /// Summed `elapsed_ns` over span events.
    pub total_ns: u64,
    /// Summed `delta` over count events.
    pub total_delta: u64,
}

#[derive(Debug, Default)]
struct Inner {
    events: VecDeque<OwnedEvent>,
    dropped: u64,
    summary: BTreeMap<(&'static str, &'static str), PhaseSummary>,
}

/// Bounded in-memory recorder: the newest `capacity` events verbatim,
/// plus an **unbounded** per-`(target, name)` [`PhaseSummary`] so
/// aggregate timings never lose data to ring wrap.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl RingRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Retained events matching `target` and `name`, oldest first.
    pub fn named(&self, target: &str, name: &str) -> Vec<OwnedEvent> {
        self.lock()
            .events
            .iter()
            .filter(|e| e.target == target && e.name == name)
            .cloned()
            .collect()
    }

    /// Events recorded in total (including any the ring dropped).
    pub fn total(&self) -> u64 {
        let inner = self.lock();
        inner.events.len() as u64 + inner.dropped
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Aggregate per-`(target, name)` totals, sorted by key. Immune to
    /// ring wrap: every recorded event is summed here.
    pub fn summary(&self) -> Vec<((&'static str, &'static str), PhaseSummary)> {
        self.lock().summary.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Clears events, drop count, and summary.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.dropped = 0;
        inner.summary.clear();
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: &Event<'_>) {
        let mut inner = self.lock();
        let entry = inner.summary.entry((event.target, event.name)).or_default();
        entry.count += 1;
        match event.kind {
            EventKind::Span { elapsed_ns } => entry.total_ns += elapsed_ns,
            EventKind::Count { delta } => entry.total_delta += delta,
            EventKind::Point => {}
        }
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(OwnedEvent {
            target: event.target,
            name: event.name,
            id: event.id,
            kind: event.kind,
            fields: event
                .fields
                .iter()
                .map(|(k, v)| (*k, (*v).into()))
                .collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{count, point};

    #[test]
    fn ring_wraps_but_summary_keeps_totals() {
        let ring = RingRecorder::new(2);
        for i in 0..5 {
            ring.record(&Event {
                target: "t",
                name: "tick",
                id: i,
                kind: EventKind::Count { delta: 10 },
                fields: &[],
            });
        }
        assert_eq!(ring.events().len(), 2);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.total(), 5);
        // Oldest-first snapshot holds the two newest events.
        assert_eq!(ring.events()[0].id, 3);
        assert_eq!(ring.events()[1].id, 4);
        let summary = ring.summary();
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].0, ("t", "tick"));
        assert_eq!(summary[0].1.count, 5);
        assert_eq!(summary[0].1.total_delta, 50);
    }

    #[test]
    fn fields_are_copied_and_queryable() {
        let ring = RingRecorder::new(4);
        point(
            &ring,
            "serve",
            "reject",
            9,
            &[
                ("reason", Value::Str("bad json")),
                ("bytes", Value::U64(17)),
            ],
        );
        count(&ring, "serve", "requests", 1);
        let rejects = ring.named("serve", "reject");
        assert_eq!(rejects.len(), 1);
        assert_eq!(
            rejects[0].field("reason"),
            Some(&OwnedValue::Str("bad json".into()))
        );
        assert_eq!(rejects[0].field("bytes"), Some(&OwnedValue::U64(17)));
        assert_eq!(rejects[0].field("missing"), None);
    }
}
