//! The [`Recorder`] trait, the default [`NullRecorder`], the RAII
//! [`Span`] guard, and the process-global recorder.

use crate::event::{Event, EventKind, Value};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Consumes [`Event`]s. Implementations must be cheap to call from hot
/// paths and must never panic — observability cannot change results.
///
/// `enabled()` is the emission gate: sites check it **before** doing
/// any work (building field slices, reading clocks), so a recorder
/// answering `false` costs one virtual call per site.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether emission sites should bother building events.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event. Borrowed; copy if you keep it.
    fn record(&self, event: &Event<'_>);
}

/// The default recorder: records nothing, reports `enabled() == false`
/// so emission sites skip clock reads and field construction entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event<'_>) {}
}

/// The process-global recorder slot. `None` means "null".
static GLOBAL: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// The shared null recorder handed out while no global is installed.
static NULL: OnceLock<Arc<dyn Recorder>> = OnceLock::new();

fn null() -> Arc<dyn Recorder> {
    NULL.get_or_init(|| Arc::new(NullRecorder)).clone()
}

/// Installs `recorder` as the process-global recorder.
///
/// Option structs (`ExploreOptions`, `FlowConfig`, `ServeConfig`, …)
/// resolve their default recorder from here **at construction time**,
/// so install before building configs. Returns the previous global so
/// tests can restore it.
pub fn set_global(recorder: Arc<dyn Recorder>) -> Arc<dyn Recorder> {
    let mut slot = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    slot.replace(recorder).unwrap_or_else(null)
}

/// The current process-global recorder ([`NullRecorder`] until
/// [`set_global`] is called).
pub fn global() -> Arc<dyn Recorder> {
    let slot = GLOBAL.read().unwrap_or_else(|e| e.into_inner());
    slot.as_ref().cloned().unwrap_or_else(null)
}

/// Emits a [`EventKind::Count`] event if `rec` is enabled.
pub fn count(rec: &dyn Recorder, target: &'static str, name: &'static str, delta: u64) {
    if rec.enabled() {
        rec.record(&Event {
            target,
            name,
            id: 0,
            kind: EventKind::Count { delta },
            fields: &[],
        });
    }
}

/// Emits a [`EventKind::Point`] event with `fields` if `rec` is enabled.
///
/// Prefer checking [`Recorder::enabled`] at the call site when building
/// `fields` itself costs anything (string formatting, lookups).
pub fn point(
    rec: &dyn Recorder,
    target: &'static str,
    name: &'static str,
    id: u64,
    fields: &[(&'static str, Value<'_>)],
) {
    if rec.enabled() {
        rec.record(&Event {
            target,
            name,
            id,
            kind: EventKind::Point,
            fields,
        });
    }
}

/// RAII guard timing a named phase: reads the clock on
/// [`Span::enter`], emits one [`EventKind::Span`] event on drop.
/// Against a disabled recorder it never touches the clock.
#[derive(Debug)]
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    target: &'static str,
    name: &'static str,
    id: u64,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Starts timing `name` under `target`; `id` correlates related
    /// events (0 if unused).
    pub fn enter(rec: &'a dyn Recorder, target: &'static str, name: &'static str, id: u64) -> Self {
        let start = rec.enabled().then(Instant::now);
        Span {
            rec,
            target,
            name,
            id,
            start,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.rec.record(&Event {
                target: self.target,
                name: self.name,
                id: self.id,
                kind: EventKind::Span {
                    elapsed_ns: start.elapsed().as_nanos() as u64,
                },
                fields: &[],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingRecorder;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
        count(&rec, "t", "n", 1);
        point(&rec, "t", "n", 0, &[("k", Value::U64(1))]);
        drop(Span::enter(&rec, "t", "n", 0));
    }

    #[test]
    fn span_times_and_reports_once() {
        let ring = RingRecorder::new(8);
        {
            let _span = Span::enter(&ring, "test", "work", 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "work");
        assert_eq!(events[0].id, 7);
        match events[0].kind {
            EventKind::Span { elapsed_ns } => assert!(elapsed_ns >= 1_000_000),
            ref other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn global_defaults_to_null_and_is_swappable() {
        // Untouched global: null (other tests in this binary don't set it).
        assert!(!global().enabled());
        let ring: Arc<dyn Recorder> = Arc::new(RingRecorder::new(4));
        let prev = set_global(ring.clone());
        assert!(global().enabled());
        count(global().as_ref(), "t", "n", 2);
        set_global(prev);
        assert!(!global().enabled());
    }
}
