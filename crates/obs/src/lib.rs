//! `rsp_obs` — a zero-dependency tracing facade for the RSP workspace.
//!
//! The engine computes rich internal state (prune decisions, refill
//! splits, cache hits) but until this crate it was only visible post-hoc
//! in return values, and the server ran dark. `rsp_obs` makes that state
//! observable **without changing it**: every emission site is gated on
//! [`Recorder::enabled`], the default [`NullRecorder`] answers `false`
//! and does nothing, and the whole workspace's property tests assert
//! results are bit-identical whichever recorder is attached.
//!
//! # Model
//!
//! An [`Event`] is a borrowed, allocation-free record with a `target`
//! (subsystem: `"explore"`, `"flow"`, `"serve"`, …), a `name` (what
//! happened), a correlation `id`, a kind, and optional typed fields:
//!
//! * [`EventKind::Span`] — a named phase that took `elapsed_ns`.
//!   Emitted by the RAII [`Span`] guard on drop.
//! * [`EventKind::Count`] — a named counter moved by `delta`.
//! * [`EventKind::Point`] — a moment in time (a prune decision, a
//!   rejected request) carrying only its fields.
//!
//! A [`Recorder`] consumes events. Three implementations ship:
//!
//! * [`NullRecorder`] — the default; `enabled()` is `false`, so
//!   emission sites skip even the `Instant::now()` calls.
//! * [`RingRecorder`] — bounded in-memory ring plus an unbounded
//!   per-`(target, name)` aggregation, for tests and profiling.
//! * [`JsonlRecorder`] — streams one JSON object per line to any
//!   writer (a file, stdout), for operators.
//!
//! # Wiring
//!
//! Recorders thread through option structs (`ExploreOptions`,
//! `FlowConfig`, `SessionBuilder`, `ServeConfig` all carry an
//! `Arc<dyn Recorder>`), and those default to the process-wide
//! [`global`] recorder — [`set_global`] before building a config and
//! every subsystem reports to it. That is how `headline --profile` and
//! `rsp-serve --log-json` observe code that never heard of them.
//!
//! # Example
//!
//! ```
//! use rsp_obs::{Recorder, RingRecorder, Span, count};
//! use std::sync::Arc;
//!
//! let ring = Arc::new(RingRecorder::new(128));
//! {
//!     let _span = Span::enter(ring.as_ref(), "demo", "phase", 0);
//!     count(ring.as_ref(), "demo", "items", 3);
//! }
//! let summary = ring.summary();
//! assert_eq!(summary.len(), 2); // "items" count + "phase" span
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod hist;
pub mod jsonl;
pub mod metrics;
pub mod recorder;
pub mod ring;

pub use event::{Event, EventKind, Value};
pub use hist::Histogram;
pub use jsonl::JsonlRecorder;
pub use metrics::{Counter, Gauge};
pub use recorder::{count, global, point, set_global, NullRecorder, Recorder, Span};
pub use ring::{OwnedEvent, OwnedValue, PhaseSummary, RingRecorder};
