//! Minimal atomic metric primitives: monotone counters and gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter (requests served, cache hits).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that goes up and down (queue depth, open connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_tracks_level() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec();
        assert_eq!(g.get(), -1);
    }
}
