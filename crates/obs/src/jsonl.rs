//! Streaming recorder: one JSON object per line to any writer.
//!
//! The JSON is hand-rolled (this crate is zero-dependency by design)
//! but shape-compatible with what `serde_json` would parse: objects
//! with string keys, numbers rendered shortest-round-trip via Rust's
//! `{}` float formatting, strings escaped per RFC 8259.

use crate::event::{Event, EventKind, Value};
use crate::recorder::Recorder;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Streams events as JSON Lines:
/// `{"ts_us":…,"target":…,"name":…,"id":…,"kind":…,…fields}`.
///
/// `ts_us` is microseconds since the recorder was created (monotonic).
/// Each event is written and flushed as one line, so a tail of the
/// output is always whole events. I/O errors are counted, never
/// propagated — observability must not change program behavior.
pub struct JsonlRecorder {
    out: Mutex<Box<dyn Write + Send>>,
    epoch: Instant,
    lines: AtomicU64,
    errors: AtomicU64,
}

impl std::fmt::Debug for JsonlRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlRecorder")
            .field("lines", &self.lines.load(Ordering::Relaxed))
            .field("errors", &self.errors.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl JsonlRecorder {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            out: Mutex::new(out),
            epoch: Instant::now(),
            lines: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Streams to the process stdout (locked per line).
    pub fn stdout() -> Self {
        Self::new(Box::new(io::stdout()))
    }

    /// Creates (truncates) `path` and streams to it.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }

    /// Write or flush failures so far (events silently lost).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

/// Escapes `s` into `buf` as a JSON string literal including quotes.
fn push_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

fn push_value(buf: &mut String, v: &Value<'_>) {
    match v {
        Value::U64(x) => buf.push_str(&x.to_string()),
        Value::I64(x) => buf.push_str(&x.to_string()),
        Value::F64(x) if x.is_finite() => buf.push_str(&x.to_string()),
        Value::F64(_) => buf.push_str("null"),
        Value::Str(s) => push_json_str(buf, s),
        Value::Bool(b) => buf.push_str(if *b { "true" } else { "false" }),
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &Event<'_>) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"target\":");
        push_json_str(&mut line, event.target);
        line.push_str(",\"name\":");
        push_json_str(&mut line, event.name);
        line.push_str(",\"id\":");
        line.push_str(&event.id.to_string());
        match event.kind {
            EventKind::Span { elapsed_ns } => {
                line.push_str(",\"kind\":\"span\",\"elapsed_ns\":");
                line.push_str(&elapsed_ns.to_string());
            }
            EventKind::Count { delta } => {
                line.push_str(",\"kind\":\"count\",\"delta\":");
                line.push_str(&delta.to_string());
            }
            EventKind::Point => line.push_str(",\"kind\":\"point\""),
        }
        for (key, value) in event.fields {
            line.push(',');
            push_json_str(&mut line, key);
            line.push(':');
            push_value(&mut line, value);
        }
        line.push_str("}\n");
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        match out.write_all(line.as_bytes()).and_then(|()| out.flush()) {
            Ok(()) => {
                self.lines.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer tests can read back.
    #[derive(Clone, Default)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_render_one_json_object_per_line() {
        let sink = Shared::default();
        let rec = JsonlRecorder::new(Box::new(sink.clone()));
        rec.record(&Event {
            target: "serve",
            name: "request",
            id: 42,
            kind: EventKind::Span {
                elapsed_ns: 1_500_000,
            },
            fields: &[("outcome", Value::Str("ok")), ("queue", Value::I64(-1))],
        });
        rec.record(&Event {
            target: "flow",
            name: "refill_split",
            id: 0,
            kind: EventKind::Count { delta: 3 },
            fields: &[("ratio", Value::F64(0.5)), ("bad", Value::F64(f64::NAN))],
        });
        assert_eq!(rec.lines(), 2);
        assert_eq!(rec.errors(), 0);
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ts_us\":"));
        assert!(lines[0].contains("\"target\":\"serve\""));
        assert!(lines[0].contains("\"name\":\"request\""));
        assert!(lines[0].contains("\"id\":42"));
        assert!(lines[0].contains("\"kind\":\"span\",\"elapsed_ns\":1500000"));
        assert!(lines[0].contains("\"outcome\":\"ok\""));
        assert!(lines[0].contains("\"queue\":-1"));
        assert!(lines[1].contains("\"kind\":\"count\",\"delta\":3"));
        assert!(lines[1].contains("\"ratio\":0.5"));
        assert!(lines[1].contains("\"bad\":null"));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }

    #[test]
    fn strings_are_escaped() {
        let sink = Shared::default();
        let rec = JsonlRecorder::new(Box::new(sink.clone()));
        rec.record(&Event {
            target: "serve",
            name: "reject",
            id: 0,
            kind: EventKind::Point,
            fields: &[("reason", Value::Str("a \"quote\"\nand\tcontrol\u{1}"))],
        });
        let bytes = sink.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains(r#""reason":"a \"quote\"\nand\tcontrol\u0001""#));
        // Still exactly one line: the newline in the payload is escaped.
        assert_eq!(text.lines().count(), 1);
    }
}
