//! Criterion bench: design-space exploration and the full Fig. 7 flow.

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_arch::presets;
use rsp_core::{
    explore, explore_reference, explore_with, run_flow, AppProfile, Constraints, DesignSpace,
    ExploreOptions, FlowConfig, Objective, PruneStrategy,
};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use std::hint::black_box;

fn bench_explore(c: &mut Criterion) {
    let base = presets::base_8x8().base().clone();
    let kernels = suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).unwrap())
        .collect();
    let weights = vec![1.0; kernels.len()];

    let mut g = c.benchmark_group("explore");
    g.sample_size(10);
    for (name, space) in [
        ("paper space (12 designs)", DesignSpace::paper()),
        ("extended space (36+ designs)", DesignSpace::extended()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                explore(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    &space,
                    &Constraints::default(),
                    Objective::AreaDelayProduct,
                )
                .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("explore-engines");
    g.sample_size(10);
    let space = DesignSpace::extended();
    g.bench_function("serial reference", |b| {
        b.iter(|| {
            explore_reference(
                black_box(&base),
                &kernels,
                &contexts,
                &weights,
                &space,
                &Constraints::default(),
                Objective::AreaDelayProduct,
            )
            .unwrap()
        })
    });
    for (name, parallelism, prune) in [
        ("engine 1-thread", Some(1), PruneStrategy::None),
        ("engine parallel", None, PruneStrategy::None),
        ("engine parallel+pruned", None, PruneStrategy::Dominated),
    ] {
        let opts = ExploreOptions {
            parallelism,
            prune,
            ..ExploreOptions::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                explore_with(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    &space,
                    &opts,
                )
                .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("flow");
    g.sample_size(10);
    g.bench_function("full Fig. 7 flow (H.263 domain)", |b| {
        let apps = vec![AppProfile::new(
            "H.263 encoder",
            vec![(suite::fdct(), 99), (suite::sad(), 396), (suite::mvm(), 50)],
        )];
        b.iter(|| run_flow(black_box(&apps), &FlowConfig::default()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
