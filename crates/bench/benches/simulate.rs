//! Criterion bench: cycle-accurate simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_arch::presets;
use rsp_core::rearrange;
use rsp_kernel::{suite, Bindings, MemoryImage};
use rsp_mapper::{map, MapOptions};
use rsp_sim::{simulate_base, simulate_rearranged};
use std::hint::black_box;

fn bench_simulate(c: &mut Criterion) {
    let base = presets::base_8x8();
    let mut g = c.benchmark_group("simulate");
    g.sample_size(20);
    for kernel in [suite::fdct(), suite::sad(), suite::inner_product()] {
        let ctx = map(base.base(), &kernel, &MapOptions::default()).unwrap();
        let img = MemoryImage::random(&kernel, 42);
        let params = Bindings::defaults(&kernel);
        g.bench_function(format!("{} base", kernel.name()), |b| {
            b.iter(|| {
                simulate_base(black_box(&ctx), black_box(&base), &kernel, &img, &params).unwrap()
            })
        });
        let arch = presets::rsp2();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        g.bench_function(format!("{} RSP#2", kernel.name()), |b| {
            b.iter(|| {
                simulate_rearranged(
                    black_box(&ctx),
                    black_box(&arch),
                    &r,
                    &kernel,
                    &img,
                    &params,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
