//! Criterion bench: RSP context rearrangement (the paper's core
//! algorithm) across sharing configurations — the per-candidate cost the
//! estimation stage of §4 avoids.

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_arch::presets;
use rsp_core::{estimate_stalls, rearrange};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use std::hint::black_box;

fn bench_rearrange(c: &mut Criterion) {
    let base = presets::base_8x8();
    let mut g = c.benchmark_group("rearrange");
    g.sample_size(20);
    for kernel in [suite::fdct(), suite::sad(), suite::matmul(8)] {
        let ctx = map(base.base(), &kernel, &MapOptions::default()).unwrap();
        for arch in [presets::rs1(), presets::rsp2(), presets::rsp4()] {
            g.bench_function(format!("{} on {}", kernel.name(), arch.name()), |b| {
                b.iter(|| rearrange(black_box(&ctx), black_box(&arch), &Default::default()))
            });
        }
    }
    g.finish();

    // The estimate the DSE uses instead: orders of magnitude cheaper.
    let mut g = c.benchmark_group("estimate");
    g.sample_size(30);
    for kernel in [suite::fdct(), suite::matmul(8)] {
        let ctx = map(base.base(), &kernel, &MapOptions::default()).unwrap();
        let arch = presets::rsp2();
        g.bench_function(kernel.name(), |b| {
            b.iter(|| estimate_stalls(black_box(&ctx), black_box(&kernel), black_box(&arch)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rearrange);
criterion_main!(benches);
