//! Criterion bench: the analytic synthesis models (eq. (2) area + clock),
//! which the DSE calls once per candidate.

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_arch::presets;
use rsp_synth::{AreaModel, DelayModel};
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let area = AreaModel::new();
    let delay = DelayModel::new();
    let archs = presets::table_architectures();

    let mut g = c.benchmark_group("synthesis");
    g.bench_function("area report x9 architectures", |b| {
        b.iter(|| {
            archs
                .iter()
                .map(|a| area.report(black_box(a)).synthesized_slices)
                .sum::<f64>()
        })
    });
    g.bench_function("delay report x9 architectures", |b| {
        b.iter(|| {
            archs
                .iter()
                .map(|a| delay.report(black_box(a)).clock_ns)
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
