//! Criterion bench: mapping every suite kernel onto the 8×8 base
//! architecture (the "Pipeline Mapping" stage of Fig. 7).

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_arch::presets;
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let base = presets::base_8x8();
    let mut g = c.benchmark_group("map");
    g.sample_size(20);
    for kernel in suite::all() {
        g.bench_function(kernel.name(), |b| {
            b.iter(|| {
                map(
                    black_box(base.base()),
                    black_box(&kernel),
                    &MapOptions::default(),
                )
                .unwrap()
            })
        });
    }
    g.bench_function("MatMul-8 strict buses", |b| {
        let k = suite::matmul(8);
        let opts = MapOptions {
            strict_buses: true,
            ..MapOptions::default()
        };
        b.iter(|| map(black_box(base.base()), black_box(&k), &opts).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
