//! CLI robustness contract for the `headline` binary: malformed,
//! truncated, or schema-drifted JSON inputs fail with a one-line
//! diagnostic naming the file (and, for schema drift, the field) and a
//! non-zero exit — never a panic backtrace. Also drives the anytime
//! demo end to end: a zero deadline writes a checkpoint, and a resumed
//! invocation ratchets the sweep to completion.

use std::path::PathBuf;
use std::process::Command;

fn headline() -> Command {
    Command::new(env!("CARGO_BIN_EXE_headline"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("headline-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Asserts a failing invocation: non-zero exit, the expected fragment on
/// stderr, and no panic backtrace.
fn assert_fails_cleanly(out: std::process::Output, fragment: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "expected failure, got: {out:?}");
    assert!(
        stderr.contains(fragment),
        "missing {fragment:?} in {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "diagnostic must not be a panic: {stderr}"
    );
}

#[test]
fn check_rejects_bad_artifacts_with_one_line_diagnostics() {
    // Unreadable file.
    let out = headline()
        .args(["--check", "/nonexistent/nope.json"])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "cannot read committed artifact /nonexistent/nope.json");

    // Schema drift: the diagnostic names the file and the missing field.
    let drifted = tmp("drifted.json");
    std::fs::write(&drifted, "{\"benchmark\": \"rsp/soak\"}").unwrap();
    let out = headline()
        .args(["--check", drifted.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_fails_cleanly(out, "invalid benchmark artifact");
    assert!(stderr.contains("drifted.json"), "{stderr}");
    assert!(stderr.contains("missing field `reports`"), "{stderr}");

    // Truncated and outright malformed JSON.
    for (name, content) in [
        (
            "truncated.json",
            "{\"benchmark\": \"rsp/soak\", \"reports\": ",
        ),
        ("malformed.json", "not json at all"),
    ] {
        let path = tmp(name);
        std::fs::write(&path, content).unwrap();
        let out = headline()
            .args(["--check", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert_fails_cleanly(out, "invalid benchmark artifact");
    }

    // An artifact whose benchmark id has no handler fails listing the
    // known ids.
    let unknown = tmp("unknown.json");
    std::fs::write(
        &unknown,
        "{\"benchmark\": \"rsp/unknown\", \"reports\": []}",
    )
    .unwrap();
    let out = headline()
        .args(["--check", unknown.to_str().unwrap()])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "no check handler for benchmark id");

    // Unknown flags are a usage error, not a panic.
    let out = headline().args(["--frobnicate"]).output().unwrap();
    assert_fails_cleanly(out, "unknown argument");
}

#[test]
fn resume_rejects_bad_checkpoints_with_one_line_diagnostics() {
    let bad = tmp("bad-ckpt.json");
    std::fs::write(&bad, "{\"version\": 1}").unwrap();
    let out = headline()
        .args(["--resume", bad.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_fails_cleanly(out, "invalid checkpoint");
    assert!(stderr.contains("bad-ckpt.json"), "{stderr}");
}

#[test]
fn anytime_demo_checkpoints_and_resumes_to_completion() {
    let ckpt = tmp("demo-ckpt.json");
    let _ = std::fs::remove_file(&ckpt);

    // Zero deadline: truncated immediately, checkpoint written.
    let out = headline()
        .args(["--deadline-ms", "0", "--resume", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("truncated (Deadline)"), "{stdout}");
    assert!(stdout.contains("checkpoint written"), "{stdout}");
    assert!(ckpt.exists());

    // Resume without a deadline: picks the checkpoint up and completes.
    let out = headline()
        .args(["--resume", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resuming from"), "{stdout}");
    assert!(stdout.contains("complete:"), "{stdout}");
}
