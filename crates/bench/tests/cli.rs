//! CLI contract for the `headline` binary: the registry subcommands
//! (`--list`, `--run`, `--check`, `--check-all`, `--cmp`) behave as
//! documented, malformed / truncated / schema-drifted JSON inputs fail
//! with a one-line diagnostic naming the file (and, for schema drift,
//! the field) and a non-zero exit — never a panic backtrace — and the
//! anytime demo checkpoints and resumes end to end.
//!
//! Measurement-bearing assertions use fabricated artifacts over the
//! cheap 12-candidate `paper` space (or schema-valid empty-`reports`
//! artifacts, which gate vacuously) so the suite stays fast; the
//! committed artifacts themselves are gated by CI's release-mode
//! `--check-all`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn headline() -> Command {
    Command::new(env!("CARGO_BIN_EXE_headline"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("headline-cli-test-{}", std::process::id()))
        .join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tmp(name: &str) -> PathBuf {
    tmpdir("scratch").join(name)
}

fn write_artifact(dir: &Path, filename: &str, id: &str, reports_json: &str) {
    std::fs::write(
        dir.join(filename),
        format!("{{\"benchmark\": {id:?}, \"reports\": {reports_json}}}"),
    )
    .unwrap();
}

/// Asserts a failing invocation: non-zero exit, the expected fragment on
/// stderr, and no panic backtrace.
fn assert_fails_cleanly(out: Output, fragment: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "expected failure, got: {out:?}");
    assert!(
        stderr.contains(fragment),
        "missing {fragment:?} in {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "diagnostic must not be a panic: {stderr}"
    );
}

#[test]
fn list_prints_definitions_and_filters_by_glob() {
    let out = headline().arg("--list").output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in ["rsp/explore", "rsp/flow", "rsp/workload", "rsp/soak"] {
        assert!(stdout.contains(id), "missing {id} in {stdout}");
    }
    // The listing is the regeneration table: one checked command per id.
    assert!(
        stdout.contains("--run rsp/explore --samples 21 --json BENCH_explore.json"),
        "{stdout}"
    );

    let out = headline()
        .args(["--list", "--filter", "rsp/f*"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rsp/flow"), "{stdout}");
    assert!(!stdout.contains("rsp/explore"), "{stdout}");

    // --filter outside --list is a usage error.
    let out = headline().args(["--filter", "x"]).output().unwrap();
    assert_fails_cleanly(out, "--filter only applies to --list");
}

#[test]
fn run_rejects_bad_globs_and_ambiguous_json() {
    let out = headline().args(["--run", "rsp/nope*"]).output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_fails_cleanly(out, "no benchmark matches");
    assert!(stderr.contains("known ids"), "{stderr}");

    // --json with a multi-match glob must fail before measuring.
    let out = headline()
        .args(["--run", "rsp/*", "--json", "/tmp/x.json"])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "--json needs --run to match exactly one benchmark");
}

#[test]
fn check_rejects_bad_artifacts_with_one_line_diagnostics() {
    // Unreadable file.
    let out = headline()
        .args(["--check", "/nonexistent/nope.json"])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "cannot read committed artifact /nonexistent/nope.json");

    // Schema drift: the diagnostic names the file and the missing field.
    let drifted = tmp("drifted.json");
    std::fs::write(&drifted, "{\"benchmark\": \"rsp/soak\"}").unwrap();
    let out = headline()
        .args(["--check", drifted.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_fails_cleanly(out, "invalid benchmark artifact");
    assert!(stderr.contains("drifted.json"), "{stderr}");
    assert!(stderr.contains("missing field `reports`"), "{stderr}");

    // Truncated and outright malformed JSON.
    for (name, content) in [
        (
            "truncated.json",
            "{\"benchmark\": \"rsp/soak\", \"reports\": ",
        ),
        ("malformed.json", "not json at all"),
    ] {
        let path = tmp(name);
        std::fs::write(&path, content).unwrap();
        let out = headline()
            .args(["--check", path.to_str().unwrap()])
            .output()
            .unwrap();
        assert_fails_cleanly(out, "invalid benchmark artifact");
    }

    // An artifact whose benchmark id has no definition fails listing the
    // known ids.
    let unknown = tmp("unknown.json");
    std::fs::write(
        &unknown,
        "{\"benchmark\": \"rsp/unknown\", \"reports\": []}",
    )
    .unwrap();
    let out = headline()
        .args(["--check", unknown.to_str().unwrap()])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "no check handler for benchmark id");

    // Unknown flags are a usage error, not a panic.
    let out = headline().args(["--frobnicate"]).output().unwrap();
    assert_fails_cleanly(out, "unknown argument");
}

#[test]
fn check_all_discovery_errors_abort_before_any_measurement() {
    // An artifact with no matching definition fails discovery.
    let dir = tmpdir("discover-unknown");
    write_artifact(&dir, "BENCH_explore.json", "rsp/explore", "[]");
    write_artifact(&dir, "BENCH_flow.json", "rsp/flow", "[]");
    write_artifact(&dir, "BENCH_workload.json", "rsp/workload", "[]");
    write_artifact(&dir, "BENCH_soak.json", "rsp/soak", "[]");
    write_artifact(&dir, "BENCH_orphan.json", "rsp/orphan", "[]");
    let out = headline()
        .arg("--check-all")
        .current_dir(&dir)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_fails_cleanly(out, "no benchmark definition");
    assert!(stderr.contains("rsp/orphan"), "{stderr}");
    assert!(stderr.contains("gate FAILED"), "{stderr}");

    // A definition with no committed artifact fails discovery, naming
    // the regeneration command.
    let dir = tmpdir("discover-missing");
    write_artifact(&dir, "BENCH_explore.json", "rsp/explore", "[]");
    let out = headline()
        .arg("--check-all")
        .current_dir(&dir)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_fails_cleanly(out, "no committed artifact");
    assert!(stderr.contains("rsp/soak"), "{stderr}");
    assert!(stderr.contains("--run rsp/soak"), "{stderr}");

    // Both error classes are collected in one invocation.
    write_artifact(&dir, "BENCH_orphan.json", "rsp/orphan", "[]");
    let out = headline()
        .arg("--check-all")
        .current_dir(&dir)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("no benchmark definition"), "{stderr}");
    assert!(stderr.contains("no committed artifact"), "{stderr}");
}

#[test]
fn check_all_matches_the_per_artifact_gate_verdict() {
    // A complete artifact set: one real (cheap, paper-space) report for
    // rsp/explore, schema-valid empty artifacts for the rest — the gate
    // replays reports, so empty ones check vacuously and the explore one
    // proves --check-all measures through the same path as --check.
    let dir = tmpdir("check-all-pass");
    let report = rsp_bench::adapters::explore::measure("paper", 1).unwrap();
    let artifact = rsp_bench::gate::BenchArtifact {
        benchmark: "rsp/explore".into(),
        reports: vec![report],
    };
    std::fs::write(
        dir.join("BENCH_explore.json"),
        serde_json::to_string_pretty(&artifact).unwrap(),
    )
    .unwrap();
    write_artifact(&dir, "BENCH_deep100.json", "rsp/deep100", "[]");
    write_artifact(&dir, "BENCH_flow.json", "rsp/flow", "[]");
    write_artifact(&dir, "BENCH_workload.json", "rsp/workload", "[]");
    write_artifact(&dir, "BENCH_soak.json", "rsp/soak", "[]");
    write_artifact(&dir, "BENCH_serve.json", "rsp/serve", "[]");

    // Old-style two-step verdict: per-artifact --check invocations.
    let per_artifact = headline()
        .args(["--check", "BENCH_explore.json", "--tolerance", "9"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(per_artifact.status.success(), "{per_artifact:?}");

    // Self-discovering verdict, with --emit riding along.
    let out = headline()
        .args(["--check-all", "--tolerance", "9", "--emit", "regen"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("discovered 6 committed artifacts for 6 registered benchmarks"),
        "{stdout}"
    );
    for id in [
        "rsp/explore",
        "rsp/deep100",
        "rsp/flow",
        "rsp/workload",
        "rsp/soak",
        "rsp/serve",
    ] {
        assert!(
            stdout.contains(&format!("[{id}]")),
            "missing {id}: {stdout}"
        );
    }
    assert!(stdout.contains("gate PASSED"), "{stdout}");
    // Every discovered artifact is re-emitted for diffing.
    for name in [
        "BENCH_explore.json",
        "BENCH_deep100.json",
        "BENCH_flow.json",
        "BENCH_workload.json",
        "BENCH_soak.json",
        "BENCH_serve.json",
    ] {
        assert!(
            dir.join("regen").join(name).is_file(),
            "missing regen {name}"
        );
    }

    // A drifted anchor flips both verdicts the same way: feasible counts
    // are exact anchors, so +1 on every row fails the gate even at the
    // huge tolerance.
    let mut drifted = artifact.clone();
    for row in &mut drifted.reports[0].engines {
        row.feasible += 1;
    }
    std::fs::write(
        dir.join("BENCH_explore.json"),
        serde_json::to_string_pretty(&drifted).unwrap(),
    )
    .unwrap();
    let per_artifact = headline()
        .args(["--check", "BENCH_explore.json", "--tolerance", "9"])
        .current_dir(&dir)
        .output()
        .unwrap();
    let all = headline()
        .args(["--check-all", "--tolerance", "9"])
        .current_dir(&dir)
        .output()
        .unwrap();
    for out in [per_artifact, all] {
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert_fails_cleanly(out, "feasible count drifted");
        assert!(stderr.contains("gate FAILED"), "{stderr}");
    }
}

#[test]
fn cmp_renders_a_diff_and_only_fails_on_unreadable_inputs() {
    let dir = tmpdir("cmp");
    let mk = |median: u64, feasible: usize| {
        format!(
            "{{\"benchmark\": \"rsp/explore\", \"reports\": [{{\
               \"space\": \"extended\", \"candidates\": 48, \"kernels\": 9, \"threads\": 1, \
               \"samples\": 5, \"selected_pe_count\": 0, \"engines\": [\
                 {{\"name\": \"serial-reference\", \"median_ns\": 1000000, \"min_ns\": 900000, \
                   \"samples\": 5, \"speedup_vs_reference\": 1.0, \"feasible\": 30, \
                   \"candidates_seen\": 48, \"candidates_pruned\": 0, \"bound_tightness\": 0.0, \
                   \"clock_bound_cuts\": 0, \"rearrangements_skipped\": 0, \
                   \"refill_segments\": 0, \"refill_stall_cycles\": 0}}, \
                 {{\"name\": \"engine-1-thread\", \"median_ns\": {median}, \"min_ns\": {median}, \
                   \"samples\": 5, \"speedup_vs_reference\": 1.0, \"feasible\": {feasible}, \
                   \"candidates_seen\": 48, \"candidates_pruned\": 0, \"bound_tightness\": 0.0, \
                   \"clock_bound_cuts\": 0, \"rearrangements_skipped\": 0, \
                   \"refill_segments\": 0, \"refill_stall_cycles\": 0}}]}}]}}"
        )
    };
    let before = dir.join("before.json");
    let after = dir.join("after.json");
    std::fs::write(&before, mk(500_000, 30)).unwrap();
    std::fs::write(&after, mk(2_000_000, 30)).unwrap();

    // A 4x slowdown renders as regressed — but --cmp is a reporter, not
    // a gate: exit 0.
    let out = headline()
        .args(["--cmp", before.to_str().unwrap(), after.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("### rsp/explore"), "{stdout}");
    assert!(stdout.contains("**regressed**"), "{stdout}");
    assert!(stdout.contains("| engine | before x-ref |"), "{stdout}");

    // Anchor drift is flagged by name.
    std::fs::write(&after, mk(500_000, 29)).unwrap();
    let out = headline()
        .args(["--cmp", before.to_str().unwrap(), after.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("anchor-drift"), "{stdout}");
    assert!(stdout.contains("feasible 30 -> 29"), "{stdout}");

    // Unreadable inputs fail cleanly; so does one path missing.
    let out = headline()
        .args(["--cmp", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "cannot read artifact");
    let out = headline()
        .args(["--cmp", before.to_str().unwrap()])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "--cmp needs two paths");
}

#[test]
fn resume_rejects_bad_checkpoints_with_one_line_diagnostics() {
    let bad = tmp("bad-ckpt.json");
    std::fs::write(&bad, "{\"version\": 1}").unwrap();
    let out = headline()
        .args(["--resume", bad.to_str().unwrap()])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_fails_cleanly(out, "invalid checkpoint");
    assert!(stderr.contains("bad-ckpt.json"), "{stderr}");
}

#[test]
fn anytime_demo_checkpoints_and_resumes_to_completion() {
    let ckpt = tmp("demo-ckpt.json");
    let _ = std::fs::remove_file(&ckpt);

    // Zero deadline: truncated immediately, checkpoint written.
    let out = headline()
        .args(["--deadline-ms", "0", "--resume", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("truncated (Deadline)"), "{stdout}");
    assert!(stdout.contains("checkpoint written"), "{stdout}");
    assert!(ckpt.exists());

    // Resume without a deadline: picks the checkpoint up and completes.
    let out = headline()
        .args(["--resume", ckpt.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resuming from"), "{stdout}");
    assert!(stdout.contains("complete:"), "{stdout}");
}

#[test]
fn exclusive_modes_are_rejected() {
    for args in [
        vec!["--list", "--run", "rsp/*"],
        vec!["--check-all", "--cmp", "a", "b"],
        vec!["--run", "rsp/*", "--deadline-ms", "0"],
        vec!["--list", "--check", "x.json"],
    ] {
        let out = headline().args(&args).output().unwrap();
        assert_fails_cleanly(out, "exclusive modes");
    }
    // Flag/mode mismatches fail before any measurement.
    let out = headline()
        .args(["--check-all", "--samples", "3"])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "--check/--check-all are exclusive");
    let out = headline().args(["--tolerance", "0.2"]).output().unwrap();
    assert_fails_cleanly(out, "--tolerance/--emit only apply");
    let out = headline().args(["--json", "x.json"]).output().unwrap();
    assert_fails_cleanly(out, "--json/--samples only apply to --run");
    let out = headline()
        .args(["--cmp", "a", "b", "--emit", "d"])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "--cmp only takes --tolerance");
    let out = headline()
        .args(["--deadline-ms", "0", "--samples", "2"])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "anytime demo");
}
