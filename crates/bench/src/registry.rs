//! The benchmark registry — every tracked benchmark as one declarative
//! [`BenchDef`], discovered and filtered by id, run and gated by one
//! generic runner.
//!
//! Modeled on BurntSushi/rebar's barometer design: a benchmark is
//! *data* (id, workload, space, engine configurations, anchors, tracked
//! report labels) plus a per-kind measurement adapter
//! ([`crate::adapters`]); everything else — running a filtered subset
//! (`headline --run`), listing definitions with their regeneration
//! commands (`--list`), the CI regression gate (`--check` /
//! `--check-all`), and the before/after diff (`--cmp`) — is generic
//! over the definition. Adding a benchmark is one [`BenchDef`] entry
//! plus its committed artifact: no new scaffold, no workflow edit — the
//! CI gate discovers committed `BENCH_*.json` artifacts and pairs them
//! with definitions by id ([`Registry::discover`]), failing on an
//! artifact with no definition or a definition with no artifact.
//!
//! The measurement rules (median-AND-best-of-N reference-normalized
//! timing, exact-drift anchors) live in [`crate::gate`] and are
//! documented in `crates/bench/METHODOLOGY.md`.

use crate::adapters;
use crate::gate::{check_with, BenchArtifact, BenchReport, CheckOutcome};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// One tracked benchmark, declaratively: identity, what it measures,
/// which report labels it tracks, which anchors its gate enforces, and
/// the per-kind adapter that measures one label.
#[derive(Clone, Debug)]
pub struct BenchDef {
    /// Registry id — also the `benchmark` field of the committed
    /// artifact (`rsp/explore`, `rsp/flow`, ...). Globs passed to
    /// [`Registry::filter`] match against this.
    pub id: &'static str,
    /// Committed artifact filename at the repository root.
    pub artifact: &'static str,
    /// One-line description for `--list`.
    pub title: &'static str,
    /// The workload the benchmark measures over.
    pub workload: &'static str,
    /// The design space(s) swept.
    pub space: &'static str,
    /// Engine configurations measured per report (row names).
    pub engines: &'static [&'static str],
    /// Exact-drift anchors the gate enforces beyond normalized timing.
    pub anchors: &'static [&'static str],
    /// Tracked report labels, in artifact order. [`BenchDef::run_all`]
    /// measures exactly these; the gate replays whatever labels the
    /// committed artifact recorded.
    pub labels: &'static [&'static str],
    /// Sample count the committed artifact is regenerated with.
    pub default_samples: u32,
    /// The per-kind adapter: measures one report label at a sample
    /// count, `None` for a label this benchmark does not know.
    pub measure: fn(&str, u32) -> Option<BenchReport>,
}

impl BenchDef {
    /// The one checked command that regenerates this benchmark's
    /// committed artifact (cspx-style regeneration discipline: the
    /// registry emits it, docs and CI quote it).
    pub fn regen_command(&self) -> String {
        format!(
            "cargo run --release -p rsp-bench --bin headline -- --run {} --samples {} --json {}",
            self.id, self.default_samples, self.artifact
        )
    }

    /// Measures every tracked label and assembles the artifact.
    ///
    /// # Panics
    ///
    /// Panics if a tracked label's adapter refuses it (a registry
    /// definition bug, caught by the registry tests).
    pub fn run_all(&self, samples: u32) -> BenchArtifact {
        BenchArtifact {
            benchmark: self.id.into(),
            reports: self
                .labels
                .iter()
                .map(|label| (self.measure)(label, samples).expect("tracked label measures"))
                .collect(),
        }
    }

    /// The benchmark-regression gate: replays every committed report's
    /// label at its recorded sample count through this definition's
    /// adapter and [`crate::gate::check_with`] — the normalized
    /// median-AND-best-of-N timing rule plus the exact-drift anchors
    /// (see `crates/bench/METHODOLOGY.md`).
    pub fn check(&self, committed: &BenchArtifact, tolerance: f64) -> CheckOutcome {
        check_with(committed, tolerance, |old| {
            (self.measure)(&old.space, old.samples)
        })
    }
}

/// A validated set of benchmark definitions.
#[derive(Debug)]
pub struct Registry {
    defs: Vec<BenchDef>,
}

impl Registry {
    /// Builds a registry, rejecting duplicate ids and duplicate artifact
    /// filenames (two definitions claiming one committed file would make
    /// [`Registry::discover`]'s pairing ambiguous).
    pub fn new(defs: Vec<BenchDef>) -> Result<Registry, String> {
        for (i, def) in defs.iter().enumerate() {
            for earlier in &defs[..i] {
                if earlier.id == def.id {
                    return Err(format!("duplicate benchmark id {:?}", def.id));
                }
                if earlier.artifact == def.artifact {
                    return Err(format!(
                        "benchmarks {:?} and {:?} both claim artifact {:?}",
                        earlier.id, def.id, def.artifact
                    ));
                }
            }
        }
        Ok(Registry { defs })
    }

    /// Every definition, in registration order.
    pub fn defs(&self) -> &[BenchDef] {
        &self.defs
    }

    /// The definition with exactly this id.
    pub fn find(&self, id: &str) -> Option<&BenchDef> {
        self.defs.iter().find(|d| d.id == id)
    }

    /// Definitions whose id matches the glob (`*` any sequence, `?` one
    /// character; a literal id matches itself).
    pub fn filter(&self, glob: &str) -> Vec<&BenchDef> {
        self.defs
            .iter()
            .filter(|d| glob_match(glob, d.id))
            .collect()
    }

    /// Discovers every committed `BENCH_*.json` artifact directly in
    /// `dir` and pairs each with its definition by the artifact's
    /// `benchmark` id. Errors (all of them, collected) when a file does
    /// not parse, an artifact has no matching definition, two artifacts
    /// claim the same definition, or a definition has no committed
    /// artifact — the self-discovering CI gate's honesty rule: the set
    /// of committed artifacts and the set of registered benchmarks must
    /// match exactly.
    pub fn discover(&self, dir: &Path) -> Result<Vec<Discovered<'_>>, Vec<String>> {
        let mut errors = Vec::new();
        let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.is_file()
                        && p.file_name()
                            .and_then(|n| n.to_str())
                            .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect(),
            Err(e) => {
                return Err(vec![format!(
                    "cannot read directory {}: {e}",
                    dir.display()
                )])
            }
        };
        paths.sort();

        let mut found: Vec<Discovered<'_>> = Vec::new();
        for path in paths {
            let raw = match std::fs::read_to_string(&path) {
                Ok(raw) => raw,
                Err(e) => {
                    errors.push(format!("cannot read {}: {e}", path.display()));
                    continue;
                }
            };
            let artifact: BenchArtifact = match serde_json::from_str(&raw) {
                Ok(a) => a,
                Err(e) => {
                    errors.push(format!(
                        "{}: invalid benchmark artifact: {e}",
                        path.display()
                    ));
                    continue;
                }
            };
            let Some(def) = self.find(&artifact.benchmark) else {
                errors.push(format!(
                    "{}: no benchmark definition for id {:?} (known ids: {})",
                    path.display(),
                    artifact.benchmark,
                    self.ids().join(", ")
                ));
                continue;
            };
            if let Some(dup) = found.iter().find(|d| d.def.id == def.id) {
                errors.push(format!(
                    "{}: duplicate artifact for benchmark id {:?} (already committed as {})",
                    path.display(),
                    def.id,
                    dup.path.display()
                ));
                continue;
            }
            found.push(Discovered {
                path,
                artifact,
                def,
            });
        }
        for def in &self.defs {
            if !found.iter().any(|d| d.def.id == def.id) {
                errors.push(format!(
                    "benchmark {:?} has no committed artifact {} in {} (regenerate: {})",
                    def.id,
                    def.artifact,
                    dir.display(),
                    def.regen_command()
                ));
            }
        }
        if errors.is_empty() {
            Ok(found)
        } else {
            Err(errors)
        }
    }

    /// Every registered id, in registration order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.defs.iter().map(|d| d.id).collect()
    }

    /// Renders the definition list (`headline --list`): one block per
    /// definition with its tracked labels, engines, anchors, and the
    /// regeneration command — the output that replaces README's
    /// hand-maintained artifact table.
    pub fn render_list(&self, glob: Option<&str>) -> String {
        let defs = match glob {
            Some(g) => self.filter(g),
            None => self.defs.iter().collect(),
        };
        let mut s = String::new();
        for def in defs {
            let _ = writeln!(s, "{} — {}", def.id, def.title);
            let _ = writeln!(s, "  artifact:   {}", def.artifact);
            let _ = writeln!(s, "  workload:   {}", def.workload);
            let _ = writeln!(s, "  space:      {}", def.space);
            let _ = writeln!(s, "  reports:    {}", def.labels.join(", "));
            let _ = writeln!(s, "  engines:    {}", def.engines.join(", "));
            let _ = writeln!(s, "  anchors:    {}", def.anchors.join(", "));
            let _ = writeln!(s, "  regenerate: {}", def.regen_command());
        }
        s
    }
}

/// One committed artifact paired with its registry definition.
#[derive(Debug)]
pub struct Discovered<'r> {
    /// Where the artifact was found.
    pub path: PathBuf,
    /// The parsed committed artifact.
    pub artifact: BenchArtifact,
    /// The definition its `benchmark` id names.
    pub def: &'r BenchDef,
}

/// Glob matching for benchmark ids: `*` matches any (possibly empty)
/// sequence, `?` exactly one character, everything else itself.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last `*` swallow one more character.
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    p[pi..].iter().all(|&c| c == '*')
}

/// The built-in definitions — the six tracked benchmarks.
fn builtin_defs() -> Vec<BenchDef> {
    vec![
        BenchDef {
            id: "rsp/explore",
            artifact: "BENCH_explore.json",
            title: "exploration engine vs serial reference",
            workload: "paper kernel suite (9 kernels), uniform weights, 8x8 base",
            space: "extended (48 candidates) + deep (480 candidates)",
            engines: &[
                "serial-reference",
                "engine-1-thread",
                "engine-1-thread-pruned",
                "engine-parallel",
                "engine-parallel-pruned",
                "engine-pruned-aggregate",
            ],
            anchors: &["feasible"],
            labels: &["extended", "deep"],
            default_samples: 21,
            measure: adapters::explore::measure,
        },
        BenchDef {
            id: "rsp/deep100",
            artifact: "BENCH_deep100.json",
            title: "pruning efficacy on the mixed 11,024-candidate space",
            workload: "paper kernel suite (9 kernels), uniform weights, 8x8 base",
            space: "deep100 (11,024 mixed Mult x Alu x Shifter candidates)",
            engines: &[
                "serial-reference",
                "engine-1-thread-pruned",
                "engine-parallel-pruned",
            ],
            anchors: &[
                "candidates_seen=11024",
                "candidates_pruned (>=60% of seen, asserted in-run)",
                "bound_tightness=1.0 bitwise (bound-as-estimate reuse)",
                "clock_bound_cuts",
                "pruned frontier bit-identical to the unpruned reference (asserted while measuring)",
            ],
            labels: &["deep100"],
            default_samples: 21,
            measure: adapters::deep100::measure,
        },
        BenchDef {
            id: "rsp/flow",
            artifact: "BENCH_flow.json",
            title: "end-to-end Fig. 7 flow, pruned vs unpruned",
            workload: "paper suite + generated matmul11 (overflows the 4x4 cache)",
            space: "flow-paper (12 candidates, 3 geometries) + flow-deep (480, 8x8)",
            engines: &[
                "serial-reference",
                "flow-1-thread-pruned",
                "flow-parallel",
                "flow-parallel-pruned",
            ],
            anchors: &[
                "feasible",
                "selected_pe_count",
                "refill_segments",
                "refill_stall_cycles",
            ],
            labels: &["flow-paper", "flow-deep"],
            default_samples: 21,
            measure: adapters::flow::measure,
        },
        BenchDef {
            id: "rsp/workload",
            artifact: "BENCH_workload.json",
            title: "pruned flow over the generated workload suite",
            workload: "generated suite (workloads/, incl. matmul16 + reduce8192x8x8)",
            space: "flow-workload (12 candidates, 3 geometries; suite selects the 8x8)",
            engines: &[
                "serial-reference",
                "flow-1-thread-pruned",
                "flow-parallel",
                "flow-parallel-pruned",
            ],
            anchors: &[
                "feasible",
                "selected_pe_count=64",
                "refill_segments>0",
                "refill_stall_cycles>0",
            ],
            labels: &["flow-workload"],
            default_samples: 21,
            measure: adapters::workload::measure,
        },
        BenchDef {
            id: "rsp/soak",
            artifact: "BENCH_soak.json",
            title: "anytime layer: budget truncation, fault isolation, resume",
            workload: "paper kernel suite, single-threaded engine rows",
            space: "soak-deep (480 candidates)",
            engines: &[
                "serial-reference",
                "soak-1-thread-full",
                "soak-1-thread-budget-75",
                "soak-1-thread-budget-50",
                "soak-1-thread-budget-25",
                "soak-1-thread-faulted",
                "soak-1-thread-resume",
            ],
            anchors: &["feasible (exact truncation/fault/resume counts)"],
            labels: &["soak-deep"],
            default_samples: 21,
            measure: adapters::soak::measure,
        },
        BenchDef {
            id: "rsp/serve",
            artifact: "BENCH_serve.json",
            title: "flow requests through the rsp-serve wire path, warm vs cold",
            workload: "video app (fdct+sad+inner_product), 4 flow requests per sample",
            space: "serve-flows (paper space, 12 candidates, 8x8 base)",
            engines: &[
                "serial-reference",
                "serve-cold-1-client",
                "serve-warm-1-client",
                "serve-warm-4-clients",
            ],
            anchors: &[
                "feasible",
                "selected_pe_count=64",
                "replies byte-identical to the in-process engine (asserted while measuring)",
                "warm rows add zero synthesis-cache misses (asserted while measuring)",
            ],
            labels: &["serve-flows"],
            default_samples: 11,
            measure: adapters::serve::measure,
        },
    ]
}

/// The process-wide registry of tracked benchmarks.
///
/// # Panics
///
/// Panics if the built-in definitions are malformed (duplicate ids —
/// impossible without a code change, and covered by tests).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Registry::new(builtin_defs()).expect("built-in registry is well-formed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matching() {
        for (pattern, text, want) in [
            ("rsp/explore", "rsp/explore", true),
            ("rsp/explore", "rsp/flow", false),
            ("*", "rsp/anything", true),
            ("rsp/*", "rsp/flow", true),
            ("rsp/*", "other/flow", false),
            ("*flow*", "rsp/flow", true),
            ("*flow*", "rsp/workload", false),
            ("rsp/s?ak", "rsp/soak", true),
            ("rsp/s?ak", "rsp/sneak", false),
            ("*oad", "rsp/workload", true),
            ("", "", true),
            ("*", "", true),
            ("?", "", false),
            ("a*b*c", "axxbyyc", true),
            ("a*b*c", "axxbyy", false),
        ] {
            assert_eq!(
                glob_match(pattern, text),
                want,
                "glob_match({pattern:?}, {text:?})"
            );
        }
    }

    #[test]
    fn registry_finds_and_filters_by_id() {
        let reg = registry();
        assert_eq!(
            reg.ids(),
            vec![
                "rsp/explore",
                "rsp/deep100",
                "rsp/flow",
                "rsp/workload",
                "rsp/soak",
                "rsp/serve"
            ]
        );
        assert!(reg.find("rsp/soak").is_some());
        assert!(reg.find("rsp/serve").is_some());
        assert!(reg.find("rsp/deep100").is_some());
        assert!(reg.find("rsp/nope").is_none());
        assert_eq!(reg.filter("*").len(), 6);
        assert_eq!(reg.filter("rsp/*").len(), 6);
        let flows: Vec<&str> = reg.filter("rsp/flow").iter().map(|d| d.id).collect();
        assert_eq!(flows, vec!["rsp/flow"]);
        let w: Vec<&str> = reg.filter("*work*").iter().map(|d| d.id).collect();
        assert_eq!(w, vec!["rsp/workload"]);
        assert!(reg.filter("nomatch/*").is_empty());
    }

    #[test]
    fn duplicate_ids_and_artifacts_are_rejected() {
        let defs = builtin_defs();
        let mut dup_id = defs.clone();
        dup_id.push(BenchDef {
            artifact: "BENCH_other.json",
            ..defs[0].clone()
        });
        let err = Registry::new(dup_id).unwrap_err();
        assert!(err.contains("duplicate benchmark id"), "{err}");
        assert!(err.contains("rsp/explore"), "{err}");

        let mut dup_artifact = defs.clone();
        dup_artifact.push(BenchDef {
            id: "rsp/other",
            ..defs[0].clone()
        });
        let err = Registry::new(dup_artifact).unwrap_err();
        assert!(err.contains("both claim artifact"), "{err}");
    }

    #[test]
    fn list_renders_every_definition_with_regen_command() {
        let listing = registry().render_list(None);
        for def in registry().defs() {
            assert!(listing.contains(def.id), "missing {}", def.id);
            assert!(listing.contains(def.artifact), "missing {}", def.artifact);
            assert!(
                listing.contains(&def.regen_command()),
                "missing regen command for {}",
                def.id
            );
        }
        let filtered = registry().render_list(Some("rsp/soak"));
        assert!(filtered.contains("rsp/soak"));
        assert!(!filtered.contains("rsp/explore"));
    }

    #[test]
    fn discovery_pairs_artifacts_with_definitions_and_enforces_honesty() {
        let dir = std::env::temp_dir().join(format!("bench-registry-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, id: &str| {
            std::fs::write(
                dir.join(name),
                format!("{{\"benchmark\": {id:?}, \"reports\": []}}"),
            )
            .unwrap();
        };

        // Complete set: every definition paired, deterministic order.
        write("BENCH_explore.json", "rsp/explore");
        write("BENCH_deep100.json", "rsp/deep100");
        write("BENCH_flow.json", "rsp/flow");
        write("BENCH_workload.json", "rsp/workload");
        write("BENCH_soak.json", "rsp/soak");
        write("BENCH_serve.json", "rsp/serve");
        let found = registry().discover(&dir).unwrap();
        assert_eq!(found.len(), 6);
        let mut ids: Vec<&str> = found.iter().map(|d| d.def.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            vec![
                "rsp/deep100",
                "rsp/explore",
                "rsp/flow",
                "rsp/serve",
                "rsp/soak",
                "rsp/workload"
            ]
        );

        // An artifact with no matching definition is an error.
        write("BENCH_bogus.json", "rsp/bogus");
        let errors = registry().discover(&dir).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("no benchmark definition")
                && e.contains("rsp/bogus")
                && e.contains("known ids")),
            "{errors:?}"
        );
        std::fs::remove_file(dir.join("BENCH_bogus.json")).unwrap();

        // Two artifacts claiming one definition is an error.
        write("BENCH_copy.json", "rsp/explore");
        let errors = registry().discover(&dir).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("duplicate artifact") && e.contains("rsp/explore")),
            "{errors:?}"
        );
        std::fs::remove_file(dir.join("BENCH_copy.json")).unwrap();

        // A definition with no committed artifact is an error naming the
        // regeneration command.
        std::fs::remove_file(dir.join("BENCH_soak.json")).unwrap();
        let errors = registry().discover(&dir).unwrap_err();
        assert!(
            errors.iter().any(|e| e.contains("no committed artifact")
                && e.contains("rsp/soak")
                && e.contains("--run rsp/soak")),
            "{errors:?}"
        );

        // Unparsable artifacts are reported, not panicked over.
        std::fs::write(dir.join("BENCH_soak.json"), "not json").unwrap();
        let errors = registry().discover(&dir).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.contains("invalid benchmark artifact")),
            "{errors:?}"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generic_check_matches_the_shared_gate_rules() {
        let def = registry().find("rsp/explore").unwrap();
        // A cheap fixture: the 12-candidate paper space.
        let mut artifact = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![crate::adapters::explore::measure("paper", 2).unwrap()],
        };
        // Generous tolerance: the second run happens moments later on the
        // same host, so a 10x envelope only fails on real breakage.
        let outcome = def.check(&artifact, 9.0);
        assert!(outcome.passed(), "regressions: {:?}", outcome.regressions);
        // The fresh rerun rides along for --emit.
        assert_eq!(outcome.fresh.benchmark, "rsp/explore");
        assert_eq!(outcome.fresh.reports.len(), 1);

        // A fabricated 'the committed engines were 1000x faster relative
        // to the reference' artifact must trip the gate (both normalized
        // statistics regress). Scaling every row equally would cancel in
        // the reference-normalized ratios, so only engine rows shrink.
        for row in &mut artifact.reports[0].engines {
            if row.name != "serial-reference" {
                row.median_ns = 1.max(row.median_ns / 1000);
                row.min_ns = 1.max(row.min_ns / 1000);
            }
        }
        let outcome = def.check(&artifact, 0.15);
        assert!(!outcome.passed());

        // An artifact recorded on a host with a different core count
        // must not timing-gate the parallel rows (their ratio to the
        // serial reference legitimately scales with cores) — even when
        // those committed ratios look 1000x better than this host's.
        let mut cross_host = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![crate::adapters::explore::measure("paper", 1).unwrap()],
        };
        cross_host.reports[0].threads += 7;
        let single_threaded = [
            "serial-reference",
            "engine-1-thread",
            "engine-1-thread-pruned",
        ];
        for row in &mut cross_host.reports[0].engines {
            if !single_threaded.contains(&row.name.as_str()) {
                row.median_ns = 1.max(row.median_ns / 1000);
                row.min_ns = 1.max(row.min_ns / 1000);
            }
        }
        let outcome = def.check(&cross_host, 9.0);
        assert!(
            outcome.passed(),
            "parallel rows must not be timing-gated across core counts: {:?}",
            outcome.regressions
        );

        // A feasible-count drift must trip it regardless of timing, and
        // an unknown committed label must be refused.
        let mut drifted = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![crate::adapters::explore::measure("paper", 1).unwrap()],
        };
        for row in &mut drifted.reports[0].engines {
            row.median_ns *= 1000;
            row.feasible += 1;
        }
        let outcome = def.check(&drifted, 9.0);
        assert!(!outcome.passed());

        let mut unknown = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![],
        };
        unknown.reports = drifted.reports;
        unknown.reports[0].space = "imaginary".into();
        assert!(!def.check(&unknown, 9.0).passed());
    }
}
