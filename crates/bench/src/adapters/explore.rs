//! Exploration-engine adapter — the `rsp/explore` benchmark
//! (`BENCH_explore.json`).
//!
//! Measures the exploration engine against the serial reference over a
//! named design space. The tracked labels (see the registry definition)
//! are:
//!
//! * `extended` — the engine-speedup trajectory tracked since the engine
//!   rebuild.
//! * `deep` — the pruning-efficacy benchmark: a 480-candidate space
//!   where the per-row residual bound, area-ordered enumeration, and the
//!   stage-floor clock bound make [`PruneStrategy::Dominated`] skip a
//!   large fraction of candidate estimations (`candidates_pruned` /
//!   `clock_bound_cuts` / `bound_tightness` per row).
//!
//! (`paper`, the 12-point space, is also accepted — it is the cheap
//! label the adapter's own tests and fabricated CLI fixtures use.)
//!
//! Engines measured per space, all over the full kernel suite with
//! uniform weights:
//!
//! * `serial-reference` — [`rsp_core::explore_reference`], the paper-
//!   faithful baseline: clones the base per candidate, re-synthesizes
//!   every report, rebuilds dense demand histograms.
//! * `engine-1-thread` — the allocation-free engine pinned to one thread
//!   (isolates the algorithmic win from parallel speedup).
//! * `engine-1-thread-pruned` — one thread plus Dominated pruning with
//!   the per-row bound and the stage-floor clock cut: the
//!   core-count-independent row the cross-host timing gate always
//!   holds, so the pruning machinery itself can never silently regress.
//! * `engine-parallel` — the engine on all cores, no pruning.
//! * `engine-parallel-pruned` — all cores plus lower-bound and
//!   dominated-candidate pruning with the default
//!   [`BoundKind::PerRowResidual`] and [`ClockBound::StageFloor`]
//!   (frontier-preserving).
//! * `engine-pruned-aggregate` — same, with the looser
//!   [`BoundKind::Aggregate`] bound (the ablation that shows what the
//!   per-row residual buys).

use crate::gate::{time_median, BenchReport, EngineRow};
use rsp_arch::presets;
use rsp_core::{
    explore_reference, explore_with, BoundKind, ClockBound, Constraints, DesignSpace,
    ExploreOptions, Objective, PruneStrategy,
};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use std::hint::black_box;

/// The design space a report label names.
fn space_for(label: &str) -> Option<DesignSpace> {
    match label {
        "paper" => Some(DesignSpace::paper()),
        "extended" => Some(DesignSpace::extended()),
        "deep" => Some(DesignSpace::deep()),
        _ => None,
    }
}

/// Measures one tracked label (`extended` / `deep` / `paper`) with
/// `samples` measured repetitions per engine; `None` for an unknown
/// label. The registry's generic runner and gate are the callers.
pub fn measure(label: &str, samples: u32) -> Option<BenchReport> {
    space_for(label).map(|space| run(&space, label, samples))
}

/// Runs the exploration benchmark on `space` with `samples` measured
/// repetitions per engine.
pub fn run(space: &DesignSpace, space_label: &str, samples: u32) -> BenchReport {
    let base = presets::base_8x8().base().clone();
    let kernels = suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).expect("suite maps"))
        .collect();
    let weights = vec![1.0; kernels.len()];
    let constraints = Constraints::default();
    let objective = Objective::AreaDelayProduct;

    // Each engine run gets a fresh run-local cache (`cache: None`) so the
    // rows measure full cost, not a warmed memo.
    let engine_opts = |parallelism: Option<usize>,
                       prune: PruneStrategy,
                       bound: BoundKind,
                       clock_bound: ClockBound| ExploreOptions {
        parallelism,
        prune,
        bound,
        clock_bound,
        constraints,
        objective,
        cache: None,
        profiles: None,
        control: Default::default(),
        recorder: rsp_obs::global(),
    };

    let mut rows: Vec<EngineRow> = Vec::new();

    // Reference baseline.
    let reference_median = {
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_reference(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    space,
                    &constraints,
                    objective,
                )
                .expect("reference explores"),
            );
        });
        let last = last.unwrap();
        rows.push(EngineRow {
            name: "serial-reference".into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: 1.0,
            feasible: last.feasible.len(),
            candidates_seen: last.stats.candidates_seen,
            candidates_pruned: 0,
            bound_tightness: 0.0,
            clock_bound_cuts: 0,
            rearrangements_skipped: 0,
            refill_segments: 0,
            refill_stall_cycles: 0,
        });
        median
    };

    let configs = [
        (
            "engine-1-thread",
            Some(1),
            PruneStrategy::None,
            BoundKind::PerRowResidual,
            ClockBound::Off,
        ),
        // Single-threaded pruned row: its ratio to the serial reference
        // is core-count-independent, so the cross-host timing gate can
        // always hold it — the row that keeps the pruning machinery
        // (bound computation, clock floor, area ordering, streaming
        // frontier) from silently rotting even when the artifact and
        // the CI runner disagree on core count.
        (
            "engine-1-thread-pruned",
            Some(1),
            PruneStrategy::Dominated,
            BoundKind::PerRowResidual,
            ClockBound::StageFloor,
        ),
        (
            "engine-parallel",
            None,
            PruneStrategy::None,
            BoundKind::PerRowResidual,
            ClockBound::Off,
        ),
        (
            "engine-parallel-pruned",
            None,
            PruneStrategy::Dominated,
            BoundKind::PerRowResidual,
            ClockBound::StageFloor,
        ),
        (
            "engine-pruned-aggregate",
            None,
            PruneStrategy::Dominated,
            BoundKind::Aggregate,
            ClockBound::StageFloor,
        ),
    ];
    for (name, parallelism, prune, bound, clock_bound) in configs {
        let opts = engine_opts(parallelism, prune, bound, clock_bound);
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_with(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    space,
                    &opts,
                )
                .expect("engine explores"),
            );
        });
        let last = last.unwrap();
        rows.push(EngineRow {
            name: name.into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: reference_median as f64 / median as f64,
            feasible: last.feasible.len(),
            candidates_seen: last.stats.candidates_seen,
            candidates_pruned: last.stats.candidates_pruned,
            bound_tightness: last.stats.bound_tightness,
            clock_bound_cuts: last.stats.clock_bound_cuts,
            rearrangements_skipped: 0,
            refill_segments: 0,
            refill_stall_cycles: 0,
        });
    }

    BenchReport {
        space: space_label.into(),
        candidates: space.plans().count(),
        kernels: kernels.len(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        samples,
        selected_pe_count: 0, // exploration is pinned to the 8×8 base
        engines: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_engines_agree() {
        let report = measure("paper", 2).unwrap();
        assert_eq!(report.engines.len(), 6);
        // No-prune engines agree exactly with the reference.
        let feasible_of = |name: &str| {
            report
                .engines
                .iter()
                .find(|e| e.name == name)
                .unwrap()
                .feasible
        };
        assert_eq!(
            feasible_of("serial-reference"),
            feasible_of("engine-1-thread")
        );
        assert_eq!(
            feasible_of("serial-reference"),
            feasible_of("engine-parallel")
        );
        // Pruned engines report their efficacy.
        let pruned_row = report
            .engines
            .iter()
            .find(|e| e.name == "engine-parallel-pruned")
            .unwrap();
        assert_eq!(pruned_row.candidates_seen, report.candidates);
        assert!(pruned_row.clock_bound_cuts <= pruned_row.candidates_pruned);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("serial-reference"));
        assert!(json.contains("bound_tightness"));
        assert!(json.contains("clock_bound_cuts"));
        // Unknown labels are refused.
        assert!(measure("imaginary", 1).is_none());
    }
}
