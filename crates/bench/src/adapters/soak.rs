//! Anytime-robustness adapter — the `rsp/soak` benchmark
//! (`BENCH_soak.json`).
//!
//! Where `rsp/explore` tracks how fast the engine completes, this
//! benchmark tracks how well it *stops*: every row exercises the
//! anytime layer ([`rsp_core::ExploreControl`]) over the 480-candidate
//! `deep` space and anchors its *exact* result counts, so any drift in
//! truncation behavior — a budget row suddenly evaluating a different
//! prefix, a resumed run no longer reaching the complete result, a
//! faulted candidate leaking into the feasible set — fails CI even when
//! timings are fine.
//!
//! Every engine row is pinned to one thread, so the cross-host timing
//! gate holds it everywhere. All budgets are **candidate counts**, never
//! wall-clock: deadline truncation is inherently host-dependent, so it
//! is exercised by the unit/property tests
//! (`rsp-core/tests/anytime.rs`) rather than anchored here.
//!
//! Rows of the one tracked label, `soak-deep`:
//!
//! * `serial-reference` — [`rsp_core::explore_reference`] over the full
//!   space: the timing yardstick and the feasible-count oracle.
//! * `soak-1-thread-full` — the engine with its candidate budget set to
//!   exactly the space size; asserts the run reports `Complete` and
//!   anchors the same feasible count as the reference (an unhit budget
//!   must be free).
//! * `soak-1-thread-budget-75/-50/-25` — budgets of 75/50/25 % of the
//!   space; the anchored `feasible`/`candidates_seen` pin the exact
//!   truncation prefix.
//! * `soak-1-thread-faulted` — a [`DelayModel`] fault hook makes one
//!   feasible candidate's synthesis panic; the run must isolate it
//!   (`PruneStats::faulted == 1`, asserted here) and the anchored
//!   feasible count is exactly the reference's minus one.
//! * `soak-1-thread-resume` — truncates at 50 %, checkpoints, and
//!   resumes to completion ([`rsp_core::explore_resume`]); the anchored
//!   feasible count equals the full run's, and the row's wall-clock
//!   tracks the cost of the truncate → checkpoint → resume round trip.

use crate::gate::{time_median, BenchReport, EngineRow};
use rsp_arch::presets;
use rsp_core::{
    explore_reference, explore_resume, explore_with, BoundKind, ClockBound, Constraints,
    DesignSpace, ExploreControl, ExploreOptions, Objective, PruneStrategy,
};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use rsp_synth::{AreaModel, DelayModel, ModelCache};
use std::hint::black_box;
use std::sync::{Arc, OnceLock};

/// Marker in the injected fault's panic payload, letting the muting
/// panic hook distinguish the benchmark's own injected worker panics
/// from real ones (which still print).
const FAULT_MARKER: &str = "soak-bench-injected-fault";

fn mute_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let muted = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(FAULT_MARKER));
            if !muted {
                default(info);
            }
        }));
    });
}

/// Measures the tracked label (`soak-deep`) with `samples` measured
/// repetitions per row; `None` for an unknown label.
pub fn measure(label: &str, samples: u32) -> Option<BenchReport> {
    (label == "soak-deep").then(|| run(samples))
}

/// Runs the soak benchmark over the `deep` space with `samples` measured
/// repetitions per row.
pub fn run(samples: u32) -> BenchReport {
    let space = DesignSpace::deep();
    let base = presets::base_8x8().base().clone();
    let kernels = suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).expect("suite maps"))
        .collect();
    let weights = vec![1.0; kernels.len()];
    let total = space.plans().count();

    let opts = |control: ExploreControl| ExploreOptions {
        parallelism: Some(1),
        prune: PruneStrategy::LowerBound,
        bound: BoundKind::PerRowResidual,
        clock_bound: ClockBound::StageFloor,
        constraints: Constraints::default(),
        objective: Objective::AreaDelayProduct,
        cache: None,
        profiles: None,
        control,
        recorder: rsp_obs::global(),
    };

    let mut rows: Vec<EngineRow> = Vec::new();
    let mut push_row =
        |name: &str, median: u64, min: u64, reference_median: u64, r: &rsp_core::Exploration| {
            rows.push(EngineRow {
                name: name.into(),
                median_ns: median,
                min_ns: min,
                samples,
                speedup_vs_reference: reference_median as f64 / median as f64,
                feasible: r.feasible.len(),
                candidates_seen: r.stats.candidates_seen,
                candidates_pruned: r.stats.candidates_pruned,
                bound_tightness: r.stats.bound_tightness,
                clock_bound_cuts: r.stats.clock_bound_cuts,
                rearrangements_skipped: 0,
                refill_segments: 0,
                refill_stall_cycles: 0,
            });
        };

    // Yardstick: the unbudgeted serial reference.
    let mut reference = None;
    let (reference_median, reference_min) = time_median(samples, || {
        reference = Some(
            explore_reference(
                black_box(&base),
                &kernels,
                &contexts,
                &weights,
                &space,
                &Constraints::default(),
                Objective::AreaDelayProduct,
            )
            .expect("reference explores"),
        );
    });
    let reference = reference.unwrap();
    push_row(
        "serial-reference",
        reference_median,
        reference_min,
        reference_median,
        &reference,
    );

    // Budgeted rows, the full-budget row first: an exactly-sized budget
    // must report Complete and reproduce the reference's feasible set.
    let budgets = [
        ("soak-1-thread-full", total),
        ("soak-1-thread-budget-75", total * 3 / 4),
        ("soak-1-thread-budget-50", total / 2),
        ("soak-1-thread-budget-25", total / 4),
    ];
    for (name, budget) in budgets {
        let o = opts(ExploreControl::with_budget(budget));
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_with(black_box(&base), &kernels, &contexts, &weights, &space, &o)
                    .expect("budgeted engine explores"),
            );
        });
        let last = last.unwrap();
        assert_eq!(
            last.completeness.is_complete(),
            budget >= total,
            "{name}: completeness does not match its budget"
        );
        assert_eq!(last.stats.candidates_seen, budget.min(total), "{name}");
        if budget >= total {
            assert_eq!(
                last.feasible.len(),
                reference.feasible.len(),
                "{name}: an unhit budget must reproduce the complete result"
            );
        }
        push_row(name, median, min, reference_median, &last);
    }

    // Fault-isolation row: one feasible candidate's delay synthesis
    // panics; the run must complete with it isolated and counted.
    {
        mute_injected_panics();
        // Match on the full sharing plan, not the display name: deep-
        // space names collide across shared-FU kinds, and the hook must
        // fault exactly one candidate.
        let target = reference
            .feasible
            .iter()
            .enumerate()
            .find(|(i, _)| !reference.pareto.contains(i))
            .map(|(_, p)| p.arch.plan().clone())
            .expect("deep space has non-frontier feasible points");
        let mut o = opts(ExploreControl::default());
        let mut last = None;
        let (median, min) = time_median(samples, || {
            // Fresh hooked cache per run, so every sample pays (and
            // isolates) the fault rather than hitting a memo.
            let fault_target = target.clone();
            let faulty = DelayModel::new().with_fault_hook(move |arch| {
                if *arch.plan() == fault_target {
                    panic!("{FAULT_MARKER}: {}", arch.name());
                }
            });
            o.cache = Some(Arc::new(ModelCache::with_models(AreaModel::new(), faulty)));
            last = Some(
                explore_with(black_box(&base), &kernels, &contexts, &weights, &space, &o)
                    .expect("faulted engine still explores"),
            );
        });
        let last = last.unwrap();
        assert_eq!(last.stats.faulted, 1, "exactly one candidate faults");
        assert!(last.completeness.is_complete());
        assert_eq!(
            last.feasible.len(),
            reference.feasible.len() - 1,
            "the faulted candidate (and only it) drops out"
        );
        push_row(
            "soak-1-thread-faulted",
            median,
            min,
            reference_median,
            &last,
        );
    }

    // Checkpoint/resume row: truncate at 50 %, checkpoint, resume to the
    // complete result. The row times the whole round trip.
    {
        let mut last = None;
        let (median, min) = time_median(samples, || {
            let truncated = explore_with(
                black_box(&base),
                &kernels,
                &contexts,
                &weights,
                &space,
                &opts(ExploreControl::with_budget(total / 2)),
            )
            .expect("truncated engine explores");
            let checkpoint = truncated.checkpoint();
            last = Some(
                explore_resume(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    &space,
                    &opts(ExploreControl::default()),
                    &checkpoint,
                )
                .expect("resume completes"),
            );
        });
        let last = last.unwrap();
        assert!(last.completeness.is_complete());
        assert_eq!(
            last.feasible.len(),
            reference.feasible.len(),
            "resume must reach the complete feasible set"
        );
        push_row("soak-1-thread-resume", median, min, reference_median, &last);
    }

    BenchReport {
        space: "soak-deep".into(),
        candidates: total,
        kernels: kernels.len(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        samples,
        selected_pe_count: 0,
        engines: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_benchmark_runs_and_anchors_hold() {
        let report = measure("soak-deep", 1).unwrap();
        assert_eq!(report.engines.len(), 7);
        let row = |name: &str| report.engines.iter().find(|e| e.name == name).unwrap();
        let full = row("soak-1-thread-full");
        let reference = row("serial-reference");
        assert_eq!(full.feasible, reference.feasible);
        assert_eq!(full.candidates_seen, report.candidates);
        // Budget rows see exactly their budget.
        assert_eq!(
            row("soak-1-thread-budget-50").candidates_seen,
            report.candidates / 2
        );
        assert!(row("soak-1-thread-budget-25").feasible <= row("soak-1-thread-budget-50").feasible);
        // Fault isolation drops exactly one point; resume recovers all.
        assert_eq!(
            row("soak-1-thread-faulted").feasible,
            reference.feasible - 1
        );
        assert_eq!(row("soak-1-thread-resume").feasible, reference.feasible);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("soak-1-thread-resume"));
        // Unknown labels are refused.
        assert!(measure("soak-imaginary", 1).is_none());
    }
}
