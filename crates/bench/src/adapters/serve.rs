//! Serving adapter — the `rsp/serve` benchmark (`BENCH_serve.json`).
//!
//! Measures sustained flow requests through the `rsp-serve` wire path
//! (real sockets, JSON line protocol, worker pool) against the direct
//! in-process engine, and the cache-warm vs cache-cold contrast the
//! long-running [`rsp_core::Session`] exists for. One label,
//! `serve-flows`: every row runs the same four Fig. 7 flow requests
//! (the paper's video workload over the 12-candidate paper space on the
//! 8×8 base) per sample; flows/second is `4 / (median_ns / 1e9)`.
//!
//! * `serial-reference` — four cold [`rsp_core::run_flow`] calls, no
//!   server, no caches: the normalization yardstick.
//! * `serve-cold-1-client` — a **fresh server per sample** (empty
//!   session caches), one client, four sequential flow requests: wire +
//!   dispatch + cold-cache cost.
//! * `serve-warm-1-client` — one long-lived server, one client, four
//!   sequential requests against warm caches: the steady-state serving
//!   cost (the warm-vs-cold anchor's fast side).
//! * `serve-warm-4-clients` — same warm server, four **concurrent**
//!   clients each issuing one flow request per sample: sustained
//!   throughput at the worker-pool width.
//!
//! Row names deliberately avoid the `1-thread` marker: served timings
//! depend on the host's core count, so the cross-host gate holds them
//! to anchors only (see `crates/bench/METHODOLOGY.md`).
//!
//! Honesty checks run inline while measuring: every served reply must
//! be **byte-identical** to the serialized in-process reference reply
//! (the wire format's float rendering is shortest-round-trip, so byte
//! equality is bit identity), and the warm rows must not add a single
//! synthesis-cache miss (asserted through the wire via
//! [`rsp_serve::proto::Request::Stats`]).

use crate::gate::{time_median, BenchReport, EngineRow};
use rsp_core::{run_flow, AppProfile, DesignSpace, FlowConfig, FlowReport};
use rsp_kernel::suite;
use rsp_serve::proto::{FlowReply, FlowRequest, Request, Response, SpaceSpec, WorkloadApp};
use rsp_serve::{Client, ServeConfig, Server};
use std::hint::black_box;
use std::net::SocketAddr;

/// Flow requests per measured sample — the unit behind the artifact's
/// flows/second reading.
const FLOWS_PER_SAMPLE: usize = 4;

/// Worker threads (= concurrent connections) the measured servers run.
const WORKERS: usize = 4;

/// The benchmark workload: the paper's video app (FDCT per macroblock,
/// SAD-dominated motion search) plus an inner-product tail.
fn kernels() -> Vec<(rsp_kernel::Kernel, u64)> {
    vec![
        (suite::fdct(), 99),
        (suite::sad(), 396),
        (suite::inner_product(), 64),
    ]
}

fn apps() -> Vec<AppProfile> {
    vec![AppProfile::new("video", kernels())]
}

/// The same workload as a wire request (kernels travel as textual DFG
/// source).
fn flow_request() -> Request {
    Request::Flow(FlowRequest {
        apps: vec![WorkloadApp {
            name: "video".into(),
            kernels: kernels()
                .into_iter()
                .map(|(k, runs)| (rsp_workload::print_kernel(&k), runs))
                .collect(),
        }],
        geometries: None,
        space: SpaceSpec::Paper,
        limits: rsp_serve::proto::Limits::none(),
    })
}

/// Serializes the reply the server would send for `report` — the byte
/// string every served reply is asserted against.
fn expected_reply(report: &FlowReport) -> String {
    serde_json::to_string(&Response::Flowed(FlowReply {
        base_pe_count: report.base.geometry().pe_count() as u64,
        chosen: report.chosen.name().to_string(),
        area_slices: report.area_slices,
        base_area_slices: report.base_area_slices,
        weighted_et_ns: report.weighted_et_ns(),
        feasible: report.exploration.feasible.len() as u64,
        critical_loops: report.critical_loops.len() as u64,
        refill_segments: report.stats.refill_segments as u64,
        refill_stall_cycles: report.stats.refill_stall_cycles,
        complete: report.completeness.is_complete(),
    }))
    .expect("reply serializes")
}

fn call_and_check(client: &mut Client, expected: &str) {
    let reply = client.call(flow_request()).expect("flow request");
    let got = serde_json::to_string(&reply).expect("reply serializes");
    assert_eq!(
        got, expected,
        "served flow differs from the in-process engine"
    );
}

fn stats_via(addr: SocketAddr) -> rsp_serve::proto::StatsReply {
    let mut client = Client::connect(addr).expect("connect for stats");
    match client.call(Request::Stats).expect("stats request") {
        Response::Stats(s) => s,
        other => panic!("expected Stats, got {other:?}"),
    }
}

fn row_from(
    name: &str,
    median: u64,
    min: u64,
    samples: u32,
    reference_median: u64,
    report: &FlowReport,
) -> EngineRow {
    // Every row's replies are asserted byte-identical to `report`'s, so
    // the correctness anchors are shared by construction.
    EngineRow {
        name: name.into(),
        median_ns: median,
        min_ns: min,
        samples,
        speedup_vs_reference: reference_median as f64 / median as f64,
        feasible: report.exploration.feasible.len(),
        candidates_seen: report.exploration.stats.candidates_seen,
        candidates_pruned: report.stats.candidates_pruned,
        bound_tightness: report.exploration.stats.bound_tightness,
        clock_bound_cuts: report.stats.clock_bound_cuts,
        rearrangements_skipped: report.stats.rearrangements_skipped,
        refill_segments: report.stats.refill_segments,
        refill_stall_cycles: report.stats.refill_stall_cycles,
    }
}

/// Measures the `serve-flows` label with `samples` measured repetitions
/// per row; `None` for an unknown label.
pub fn measure(label: &str, samples: u32) -> Option<BenchReport> {
    if label != "serve-flows" {
        return None;
    }
    let apps = apps();
    let config = FlowConfig::default(); // paper space, 8×8, no caches
    let reference = run_flow(&apps, &config).expect("reference flow runs");
    let expected = expected_reply(&reference);
    let mut rows: Vec<EngineRow> = Vec::new();

    // serial-reference: four cold in-process flows, fresh config each
    // time so nothing is memoized across them.
    let reference_median = {
        let (median, min) = time_median(samples, || {
            for _ in 0..FLOWS_PER_SAMPLE {
                let cold = FlowConfig::default();
                black_box(run_flow(black_box(&apps), &cold).expect("flow runs"));
            }
        });
        rows.push(row_from(
            "serial-reference",
            median,
            min,
            samples,
            median,
            &reference,
        ));
        median
    };

    // serve-cold-1-client: a fresh server (empty caches) per sample.
    // Shutdown joins worker threads at a 50 ms poll boundary, so the
    // spent servers are parked and dropped after timing instead.
    {
        let mut spent: Vec<Server> = Vec::new();
        let (median, min) = time_median(samples, || {
            let server = Server::spawn(ServeConfig {
                workers: WORKERS,
                ..ServeConfig::default()
            })
            .expect("spawn cold server");
            let mut client = Client::connect(server.addr()).expect("connect");
            for _ in 0..FLOWS_PER_SAMPLE {
                call_and_check(&mut client, &expected);
            }
            spent.push(server);
        });
        drop(spent);
        rows.push(row_from(
            "serve-cold-1-client",
            median,
            min,
            samples,
            reference_median,
            &reference,
        ));
    }

    // One long-lived server for both warm rows, primed before timing so
    // even the warmup invocation is warm.
    let server = Server::spawn(ServeConfig {
        workers: WORKERS,
        ..ServeConfig::default()
    })
    .expect("spawn warm server");
    let addr = server.addr();
    {
        let mut client = Client::connect(addr).expect("connect");
        call_and_check(&mut client, &expected);
    }
    let primed = stats_via(addr);
    assert!(primed.model_reports > 0, "priming populated the caches");

    // serve-warm-1-client: sequential requests against warm caches.
    {
        let mut client = Client::connect(addr).expect("connect");
        let (median, min) = time_median(samples, || {
            for _ in 0..FLOWS_PER_SAMPLE {
                call_and_check(&mut client, &expected);
            }
        });
        rows.push(row_from(
            "serve-warm-1-client",
            median,
            min,
            samples,
            reference_median,
            &reference,
        ));
    }

    // serve-warm-4-clients: concurrent clients, one flow each, fresh
    // connections per sample so the worker pool is exercised end to end.
    {
        let (median, min) = time_median(samples, || {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..FLOWS_PER_SAMPLE)
                    .map(|_| {
                        s.spawn(|| {
                            let mut client = Client::connect(addr).expect("connect");
                            call_and_check(&mut client, &expected);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("client thread");
                }
            });
        });
        rows.push(row_from(
            "serve-warm-4-clients",
            median,
            min,
            samples,
            reference_median,
            &reference,
        ));
    }

    // The warm-cache anchor: the entire timed warm phase must not have
    // synthesized a single new plan — every request hit the memo.
    let after = stats_via(addr);
    assert_eq!(
        after.model_misses, primed.model_misses,
        "warm serving must not miss the synthesis cache"
    );
    assert!(
        after.model_hits > primed.model_hits,
        "warm serving must be answered from the synthesis cache"
    );
    server.shutdown();

    Some(BenchReport {
        space: label.into(),
        candidates: DesignSpace::paper().plans().count(),
        kernels: apps.iter().map(|a| a.kernels.len()).sum(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        samples,
        selected_pe_count: reference.base.geometry().pe_count(),
        engines: rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_benchmark_measures_all_four_rows_bit_identically() {
        let report = measure("serve-flows", 1).unwrap();
        assert_eq!(report.engines.len(), 4);
        assert_eq!(report.engines[0].name, "serial-reference");
        let names: Vec<&str> = report.engines.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "serial-reference",
                "serve-cold-1-client",
                "serve-warm-1-client",
                "serve-warm-4-clients"
            ]
        );
        // All rows carry the reference's anchors (replies were asserted
        // byte-identical while measuring).
        for row in &report.engines {
            assert_eq!(row.feasible, report.engines[0].feasible);
            assert_eq!(row.refill_segments, report.engines[0].refill_segments);
        }
        assert_eq!(report.selected_pe_count, 64);
        assert_eq!(report.kernels, 3);
        // Unknown labels are refused.
        assert!(measure("serve-imaginary", 1).is_none());
    }
}
