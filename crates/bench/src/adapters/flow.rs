//! End-to-end flow adapter — the `rsp/flow` benchmark
//! (`BENCH_flow.json`).
//!
//! Times the complete Fig. 7 flow ([`rsp_core::run_flow`]: profiling →
//! base-architecture exploration over three candidate geometries →
//! pipeline mapping → RSP exploration → exact RSP mapping) over the full
//! kernel suite. Tracked labels:
//!
//! * `flow-paper` — the paper's 12-point space over **three candidate
//!   geometries** (4×4, 6×6, 8×8) and the paper suite *plus* the
//!   generated `matmul11` (`rsp_workload::generators`), which overflows
//!   the 4×4 configuration cache: the serial geometry oracle no longer
//!   early-exits at 4×4 — both paths walk to the 6×6 (the
//!   `selected_pe_count: 36` anchor) — so the report measures real
//!   multi-geometry work plus exact-stage refinement where exploration
//!   itself is cheap.
//! * `flow-deep` — the 480-candidate deep space pinned to the paper's
//!   8×8 base: where estimation-phase pruning, the stage-floor clock
//!   cut, and the exact-stage dominance cut all bite
//!   (`candidates_pruned`, `clock_bound_cuts`,
//!   `rearrangements_skipped` per row).
//!
//! Flow configurations measured per space:
//!
//! * `serial-reference` — `parallelism: Some(1)`, no pruning: the serial
//!   geometry oracle, unpruned exploration, and exact rearrangement of
//!   every frontier candidate. The normalization yardstick.
//! * `flow-1-thread-pruned` — one thread plus Dominated pruning, the
//!   per-row residual bound, the stage-floor clock cut, and the
//!   exact-stage dominance cut: the core-count-independent row the
//!   cross-host timing gate always holds.
//! * `flow-parallel` — all cores, no pruning (isolates the fan-out win).
//! * `flow-parallel-pruned` — all cores plus every cut (the
//!   production configuration).
//!
//! All rows produce bit-identical flow outputs (property-tested in
//! `rsp-core`); only the work they perform differs. This module also
//! owns `measure_configs`, the four-configuration measurement scaffold
//! the workload adapter ([`crate::adapters::workload`]) reuses — only
//! the workload and the [`FlowConfig`] constructor differ between the
//! two artifacts.

use crate::gate::{time_median, BenchReport, EngineRow};
use rsp_core::{
    run_flow, AppProfile, BoundKind, ClockBound, DesignSpace, FlowConfig, FlowReport, Objective,
    PruneStrategy,
};
use rsp_kernel::suite;
use std::hint::black_box;

/// The benchmark workload: the full kernel suite plus the generated
/// `matmul11` (which a 4×4 array cannot hold) as one domain, coverage
/// 1.0 so every kernel becomes a critical loop.
fn workload() -> Vec<AppProfile> {
    let mut kernels: Vec<_> = suite::all().into_iter().map(|k| (k, 1)).collect();
    kernels.push((rsp_workload::generators::matmul(11), 1));
    vec![AppProfile::new("full-suite+generated", kernels)]
}

/// The design space and geometry list a report label names.
fn space_for(label: &str) -> Option<(DesignSpace, Vec<(usize, usize)>)> {
    match label {
        // Multi-geometry: base-architecture exploration has real work to
        // fan out (the serial oracle walks them smallest first).
        "flow-paper" => Some((DesignSpace::paper(), vec![(4, 4), (6, 6), (8, 8)])),
        // Pinned to the paper's 8×8 so the deep space's wide frontier
        // (and with it all three pruning counters) stays exercised — on
        // the 4×4 the smallest feasible base, which the flow would
        // otherwise select, the frontier collapses to two points.
        "flow-deep" => Some((DesignSpace::deep(), vec![(8, 8)])),
        _ => None,
    }
}

fn config(
    label: &str,
    parallelism: Option<usize>,
    prune: PruneStrategy,
    clock_bound: ClockBound,
) -> FlowConfig {
    let (space, geometries) = space_for(label).expect("known flow label");
    FlowConfig {
        coverage: 1.0,
        geometries,
        space,
        objective: Objective::AreaDelayProduct,
        parallelism,
        prune,
        bound: BoundKind::PerRowResidual,
        clock_bound,
        ..FlowConfig::default()
    }
}

fn row_from(
    name: &str,
    median: u64,
    min: u64,
    samples: u32,
    reference_median: u64,
    report: &FlowReport,
) -> EngineRow {
    EngineRow {
        name: name.into(),
        median_ns: median,
        min_ns: min,
        samples,
        speedup_vs_reference: reference_median as f64 / median as f64,
        feasible: report.exploration.feasible.len(),
        candidates_seen: report.exploration.stats.candidates_seen,
        candidates_pruned: report.stats.candidates_pruned,
        bound_tightness: report.exploration.stats.bound_tightness,
        clock_bound_cuts: report.stats.clock_bound_cuts,
        rearrangements_skipped: report.stats.rearrangements_skipped,
        refill_segments: report.stats.refill_segments,
        refill_stall_cycles: report.stats.refill_stall_cycles,
    }
}

/// Measures the four tracked flow configurations (`serial-reference`,
/// `flow-1-thread-pruned`, `flow-parallel`, `flow-parallel-pruned`)
/// over `apps` and assembles the report — the scaffold shared with the
/// workload adapter; only the workload and the [`FlowConfig`]
/// constructor differ between the artifacts.
pub(crate) fn measure_configs(
    label: &str,
    apps: &[AppProfile],
    candidates: usize,
    samples: u32,
    config: &dyn Fn(Option<usize>, PruneStrategy, ClockBound) -> FlowConfig,
) -> BenchReport {
    let mut rows: Vec<EngineRow> = Vec::new();

    let (reference_median, selected_pe_count) = {
        let cfg = config(Some(1), PruneStrategy::None, ClockBound::Off);
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(run_flow(black_box(apps), &cfg).expect("flow runs"));
        });
        let last = last.unwrap();
        let selected = last.base.geometry().pe_count();
        rows.push(row_from(
            "serial-reference",
            median,
            min,
            samples,
            median,
            &last,
        ));
        (median, selected)
    };

    let configs = [
        (
            "flow-1-thread-pruned",
            Some(1),
            PruneStrategy::Dominated,
            ClockBound::StageFloor,
        ),
        ("flow-parallel", None, PruneStrategy::None, ClockBound::Off),
        (
            "flow-parallel-pruned",
            None,
            PruneStrategy::Dominated,
            ClockBound::StageFloor,
        ),
    ];
    for (name, parallelism, prune, clock_bound) in configs {
        let cfg = config(parallelism, prune, clock_bound);
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(run_flow(black_box(apps), &cfg).expect("flow runs"));
        });
        rows.push(row_from(
            name,
            median,
            min,
            samples,
            reference_median,
            &last.unwrap(),
        ));
    }

    BenchReport {
        space: label.into(),
        candidates,
        kernels: apps.iter().map(|a| a.kernels.len()).sum(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        samples,
        selected_pe_count,
        engines: rows,
    }
}

/// Measures one tracked label (`flow-paper` / `flow-deep`) with
/// `samples` measured repetitions per configuration; `None` for an
/// unknown label.
pub fn measure(label: &str, samples: u32) -> Option<BenchReport> {
    let (space, _) = space_for(label)?;
    let apps = workload();
    Some(measure_configs(
        label,
        &apps,
        space.plans().count(),
        samples,
        &|parallelism, prune, clock_bound| config(label, parallelism, prune, clock_bound),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_benchmark_runs_and_reports_cut_counters() {
        let report = measure("flow-paper", 1).unwrap();
        assert_eq!(report.engines.len(), 4);
        assert_eq!(report.engines[0].name, "serial-reference");
        // The generated matmul11 overflows the 4×4, so the multi-geometry
        // exploration escalates to the 6×6 — no more 4×4 early exit.
        assert_eq!(report.selected_pe_count, 36);
        // Unpruned rows report no cuts; pruned rows may.
        let row = |name: &str| report.engines.iter().find(|e| e.name == name).unwrap();
        assert_eq!(row("serial-reference").candidates_pruned, 0);
        assert_eq!(row("serial-reference").rearrangements_skipped, 0);
        assert_eq!(row("flow-parallel").rearrangements_skipped, 0);
        let pruned = row("flow-parallel-pruned");
        assert!(pruned.clock_bound_cuts <= pruned.candidates_pruned);
        // Same artifact schema as the exploration benchmark.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("rearrangements_skipped"));
        // Unknown labels are refused.
        assert!(measure("flow-imaginary", 1).is_none());
    }
}
