//! Per-kind engine adapters behind the benchmark registry.
//!
//! Each adapter exposes one entry point,
//! `measure(label, samples) -> Option<BenchReport>`: given a tracked
//! report label (the `space` field of a committed
//! [`crate::gate::BenchReport`]) it measures every engine configuration
//! of that benchmark kind and returns the report, or `None` for a label
//! it does not know. The generic registry runner
//! ([`crate::registry::BenchDef::run_all`] /
//! [`crate::registry::BenchDef::check`]) is the only caller: running a
//! benchmark walks its definition's tracked labels, and checking replays
//! the committed reports' labels at their recorded sample counts — so an
//! adapter never decides *which* reports exist, only *how* one label is
//! measured.
//!
//! The six kinds:
//!
//! * [`explore`] — exploration-engine rows over a named design space
//!   (`rsp/explore`).
//! * [`deep100`] — pruning efficacy on the mixed 11,024-candidate
//!   multi-kind space, with in-run frontier bit-identity asserts
//!   (`rsp/deep100`).
//! * [`flow`] — end-to-end Fig. 7 flow rows (`rsp/flow`); also owns the
//!   four-configuration measurement scaffold the workload adapter
//!   reuses.
//! * [`workload`] — the flow over the generated workload suite
//!   (`rsp/workload`).
//! * [`soak`] — anytime-robustness rows: budget truncation, fault
//!   isolation, checkpoint/resume (`rsp/soak`).
//! * [`serve`] — flow requests through the `rsp-serve` wire path,
//!   cache-warm vs cache-cold, sequential vs concurrent clients
//!   (`rsp/serve`).

pub mod deep100;
pub mod explore;
pub mod flow;
pub mod serve;
pub mod soak;
pub mod workload;
