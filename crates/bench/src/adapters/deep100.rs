//! Mixed-space pruning adapter — the `rsp/deep100` benchmark
//! (`BENCH_deep100.json`).
//!
//! Sweeps [`DesignSpace::deep100`] — the mixed multi-kind space of
//! 11,024 candidates (Mult × Alu × Shifter sharing axes) — the first
//! tracked space past the 10⁴-candidate mark. Engine rows only: the
//! dense-histogram serial reference rebuilds a `cycles × rows × cols`
//! demand per shared group per candidate, which at this scale would
//! measure allocator churn rather than exploration, so the yardstick
//! `serial-reference` row is the allocation-free engine pinned to one
//! thread with pruning off (documented here and in METHODOLOGY.md; the
//! engine-vs-oracle equivalence itself is property-tested in rsp-core
//! at smaller spaces and asserted in-run below at this one).
//!
//! * `serial-reference` — engine, one thread, no pruning, no clock
//!   bound: the full-estimation baseline every other row normalizes
//!   against.
//! * `engine-1-thread-pruned` — one thread plus Dominated pruning with
//!   [`BoundKind::PerRowResidual`] and [`ClockBound::StageFloor`]: the
//!   core-count-independent row the cross-host timing gate always
//!   holds.
//! * `engine-parallel-pruned` — same pruning on all cores.
//!
//! While measuring, the adapter asserts the acceptance properties the
//! committed artifact is gated on: the space clears 10⁴ candidates, the
//! pruned fraction clears 60 %, the bound tightness is exactly 1.0
//! (the admissible per-row bound *is* the estimate on pruned runs —
//! strictly better than the deep-space baseline's 0.96), and the pruned
//! Pareto frontier is bit-identical to the unpruned reference's.

use crate::gate::{time_median, BenchReport, EngineRow};
use rsp_arch::presets;
use rsp_core::{
    explore_with, BoundKind, ClockBound, Constraints, DesignSpace, Exploration, ExploreOptions,
    Objective, PruneStrategy,
};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use std::hint::black_box;

/// Minimum candidate count the tracked space must enumerate.
const MIN_CANDIDATES: usize = 10_000;
/// Minimum fraction of candidates pruning must skip.
const MIN_PRUNED_FRACTION: f64 = 0.60;

/// Measures the one tracked label (`deep100`) with `samples` measured
/// repetitions per engine; `None` for an unknown label.
pub fn measure(label: &str, samples: u32) -> Option<BenchReport> {
    match label {
        "deep100" => Some(run(samples)),
        _ => None,
    }
}

/// The pruned frontier must match the unpruned reference bit-for-bit:
/// same candidates by name, same synthesized numbers to the bit.
fn assert_frontier_identical(reference: &Exploration, pruned: &Exploration, row: &str) {
    let a: Vec<_> = reference.pareto_points().collect();
    let b: Vec<_> = pruned.pareto_points().collect();
    assert_eq!(a.len(), b.len(), "{row}: frontier size diverged");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.arch.name(), y.arch.name(), "{row}: frontier candidate");
        assert_eq!(
            x.area_slices.to_bits(),
            y.area_slices.to_bits(),
            "{row}: area of {}",
            x.arch.name()
        );
        assert_eq!(
            x.est_et_ns.to_bits(),
            y.est_et_ns.to_bits(),
            "{row}: est et of {}",
            x.arch.name()
        );
        assert_eq!(
            x.clock_ns.to_bits(),
            y.clock_ns.to_bits(),
            "{row}: clock of {}",
            x.arch.name()
        );
    }
}

/// Runs the deep100 benchmark with `samples` measured repetitions per
/// engine.
pub fn run(samples: u32) -> BenchReport {
    let space = DesignSpace::deep100();
    let base = presets::base_8x8().base().clone();
    let kernels = suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).expect("suite maps"))
        .collect();
    let weights = vec![1.0; kernels.len()];

    let opts = |parallelism: Option<usize>, prune: PruneStrategy, clock_bound: ClockBound| {
        ExploreOptions {
            parallelism,
            prune,
            bound: BoundKind::PerRowResidual,
            clock_bound,
            constraints: Constraints::default(),
            objective: Objective::AreaDelayProduct,
            cache: None,
            profiles: None,
            control: Default::default(),
            recorder: rsp_obs::global(),
        }
    };

    let configs = [
        (
            "serial-reference",
            opts(Some(1), PruneStrategy::None, ClockBound::Off),
        ),
        (
            "engine-1-thread-pruned",
            opts(Some(1), PruneStrategy::Dominated, ClockBound::StageFloor),
        ),
        (
            "engine-parallel-pruned",
            opts(None, PruneStrategy::Dominated, ClockBound::StageFloor),
        ),
    ];

    let mut rows: Vec<EngineRow> = Vec::new();
    let mut reference_median = 0u64;
    let mut reference_run: Option<Exploration> = None;
    for (name, opts) in configs {
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_with(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    &space,
                    &opts,
                )
                .expect("deep100 explores"),
            );
        });
        let last = last.unwrap();
        assert!(
            last.stats.candidates_seen >= MIN_CANDIDATES,
            "{name}: space shrank below {MIN_CANDIDATES} candidates \
             ({} seen)",
            last.stats.candidates_seen
        );
        if name == "serial-reference" {
            reference_median = median;
        } else {
            let fraction = last.stats.candidates_pruned as f64 / last.stats.candidates_seen as f64;
            assert!(
                fraction >= MIN_PRUNED_FRACTION,
                "{name}: pruned fraction fell to {fraction:.3}"
            );
            assert_eq!(
                last.stats.bound_tightness.to_bits(),
                1.0f64.to_bits(),
                "{name}: per-row bound no longer matches the estimate \
                 (tightness {})",
                last.stats.bound_tightness
            );
            assert_frontier_identical(
                reference_run.as_ref().expect("reference measured first"),
                &last,
                name,
            );
        }
        rows.push(EngineRow {
            name: name.into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: if name == "serial-reference" {
                1.0
            } else {
                reference_median as f64 / median as f64
            },
            feasible: last.feasible.len(),
            candidates_seen: last.stats.candidates_seen,
            candidates_pruned: last.stats.candidates_pruned,
            bound_tightness: last.stats.bound_tightness,
            clock_bound_cuts: last.stats.clock_bound_cuts,
            rearrangements_skipped: 0,
            refill_segments: 0,
            refill_stall_cycles: 0,
        });
        if name == "serial-reference" {
            reference_run = Some(last);
        }
    }

    BenchReport {
        space: "deep100".into(),
        candidates: space.plans().count(),
        kernels: kernels.len(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        samples,
        selected_pe_count: 0, // exploration is pinned to the 8×8 base
        engines: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_asserts_its_anchors() {
        let report = measure("deep100", 1).unwrap();
        assert_eq!(report.candidates, 11_024);
        assert_eq!(report.engines.len(), 3);
        let row = |name: &str| report.engines.iter().find(|e| e.name == name).unwrap();
        let reference = row("serial-reference");
        assert_eq!(reference.candidates_pruned, 0);
        for name in ["engine-1-thread-pruned", "engine-parallel-pruned"] {
            let pruned = row(name);
            // The in-run asserts already enforced these; the test pins
            // the emitted row too.
            assert!(pruned.candidates_seen >= MIN_CANDIDATES);
            assert!(
                pruned.candidates_pruned as f64
                    >= MIN_PRUNED_FRACTION * pruned.candidates_seen as f64
            );
            assert_eq!(pruned.bound_tightness.to_bits(), 1.0f64.to_bits());
            assert!(pruned.clock_bound_cuts > 0);
            // Pruned runs never estimate dominated candidates, so their
            // feasible set is a (frontier-preserving) subset.
            assert!(pruned.feasible <= reference.feasible, "{name}");
        }
        assert!(measure("deep", 1).is_none());
    }
}
