//! Shared benchmark-artifact schema and the CI regression gate.
//!
//! Every artifact the registry tracks ([`crate::registry`]) uses the
//! same rebar-style shape: [`BenchReport`]s of [`EngineRow`]s with
//! median-of-N and best-of-N wall-clock plus correctness anchors
//! (feasible-design counts, refill and pruning counters, bitwise bound
//! tightness, the selected base geometry), and one `serial-reference`
//! row per report serving as the
//! normalization yardstick. [`check_with`] implements the gate shared
//! by all of them: a row regresses only when its reference-normalized
//! median **and** best-of-N both exceed the tolerance (the
//! median-AND-best rule that keeps the gate stable on noisy 1-CPU
//! hosts), or when a correctness anchor drifts. The full methodology —
//! normalization, the cross-host core-count convention, anchor
//! semantics, and the regeneration discipline — is documented in
//! `crates/bench/METHODOLOGY.md`.

use serde::{Deserialize, Serialize};

/// One engine's timing row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineRow {
    /// Engine configuration name.
    pub name: String,
    /// Median wall-clock per run (nanoseconds).
    pub median_ns: u64,
    /// Minimum observed (nanoseconds).
    pub min_ns: u64,
    /// Measured samples (after one warmup).
    pub samples: u32,
    /// Speedup versus the serial reference (reference median / this
    /// median).
    pub speedup_vs_reference: f64,
    /// Feasible designs the run produced (sanity anchor: engines must
    /// agree unless pruning legitimately drops dominated points).
    pub feasible: usize,
    /// Candidate plans enumerated from the space (exact-drift anchor:
    /// the enumeration is deterministic, so any change is a code
    /// change).
    pub candidates_seen: usize,
    /// Candidates whose full estimation pruning skipped (exact-drift
    /// anchor: pruning decisions are deterministic at every thread
    /// count).
    pub candidates_pruned: usize,
    /// Mean lower-bound / full-estimate ratio over estimated candidates
    /// (1.0 = exact bound; 0.0 = pruning disabled, no bounds computed).
    /// Anchored bitwise: the accumulator runs serially in enumeration
    /// order, so the committed value reproduces to the bit.
    pub bound_tightness: f64,
    /// Candidates the stage-floor clock bound cut before delay
    /// synthesis (subset of `candidates_pruned`; exact-drift anchor).
    pub clock_bound_cuts: usize,
    /// Flow rows only: frontier candidates whose exact rearrangement
    /// the objective-score cut skipped (0 for pure-exploration rows;
    /// exact-drift anchor).
    pub rearrangements_skipped: usize,
    /// Flow rows only: configuration-cache refills performed across the
    /// exact rearrangements (schedule segments beyond the first). A
    /// correctness anchor: the `flow-workload` report records a nonzero
    /// count — matmul16's stall-heavy schedules split instead of
    /// overflowing — and the gate fails on any drift.
    pub refill_segments: usize,
    /// Flow rows only: refill-stall cycles those splits charged
    /// (anchored against drift together with `refill_segments`).
    pub refill_stall_cycles: u64,
}

/// Timings of every engine over one benchmark configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Configuration label (`extended`, `deep`, `flow-paper`, ...).
    pub space: String,
    /// Candidate plans enumerated per run.
    pub candidates: usize,
    /// Kernels in the workload.
    pub kernels: usize,
    /// Worker threads available to the parallel engines.
    pub threads: usize,
    /// Measured samples per engine (after one warmup).
    pub samples: u32,
    /// PE count of the base geometry the flow's multi-geometry
    /// exploration selected (`0` for benchmarks that do not explore
    /// geometries). A correctness anchor: the `flow-workload` report
    /// records `64` — the generated suite genuinely selects the paper's
    /// 8×8 — and the gate fails if that selection ever drifts.
    pub selected_pe_count: usize,
    /// Timing rows, reference first.
    pub engines: Vec<EngineRow>,
}

/// One whole committed artifact (`BENCH_explore.json` /
/// `BENCH_flow.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchArtifact {
    /// Artifact schema/benchmark id (`rsp/explore`, `rsp/flow`).
    pub benchmark: String,
    /// One report per tracked configuration.
    pub reports: Vec<BenchReport>,
}

/// Renders a human-readable summary table of one report.
pub fn render(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let geometry = if report.selected_pe_count > 0 {
        format!(", selects {}-PE base", report.selected_pe_count)
    } else {
        String::new()
    };
    let _ = writeln!(
        s,
        "{} ({} candidates x {} kernels, {} threads, median of {}{}):",
        report.space, report.candidates, report.kernels, report.threads, report.samples, geometry
    );
    for e in &report.engines {
        let _ = writeln!(
            s,
            "  {:<24} {:>10.3} ms   {:>6.2}x   ({} feasible, {}/{} pruned \
             [{} clock-cut], {} rearr. skipped, {} refills/{} stall-cyc, tightness {:.3})",
            e.name,
            e.median_ns as f64 / 1e6,
            e.speedup_vs_reference,
            e.feasible,
            e.candidates_pruned,
            e.candidates_seen,
            e.clock_bound_cuts,
            e.rearrangements_skipped,
            e.refill_segments,
            e.refill_stall_cycles,
            e.bound_tightness
        );
    }
    s
}

/// Renders every report of an artifact.
pub fn render_all(artifact: &BenchArtifact) -> String {
    artifact
        .reports
        .iter()
        .map(render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Outcome of a benchmark-regression check ([`check_with`]).
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// One status line per compared engine row.
    pub lines: Vec<String>,
    /// Human-readable failures; empty means the gate passes.
    pub regressions: Vec<String>,
    /// The freshly re-run reports (same labels and sample counts as the
    /// committed artifact) — written out by `headline --emit` so CI can
    /// upload them for diffing when the gate fails.
    pub fresh: BenchArtifact,
}

impl CheckOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// The shared benchmark-regression gate: re-runs every report of the
/// committed artifact through `rerun` (which maps a committed report's
/// label back to a fresh measurement at the same sample count, or `None`
/// for an unknown label) and compares engine rows by name.
///
/// A row regresses when its reference-normalized median **and**
/// best-of-N both exceed the committed ratios by more than `tolerance`
/// (e.g. `0.15` = +15 %), when a correctness anchor drifts at all
/// (feasible count, refill counters, pruning counters, bitwise bound
/// tightness, selected base geometry), or when a committed engine
/// configuration disappears. The `serial-reference`
/// row is the yardstick and is checked for anchor drift only; when the
/// committed `threads` differs from the host's, timing is gated only
/// for core-count-independent rows (names containing `1-thread`). The
/// rationale for each rule is in `crates/bench/METHODOLOGY.md`.
pub fn check_with(
    committed: &BenchArtifact,
    tolerance: f64,
    rerun: impl Fn(&BenchReport) -> Option<BenchReport>,
) -> CheckOutcome {
    let mut outcome = CheckOutcome {
        lines: Vec::new(),
        regressions: Vec::new(),
        fresh: BenchArtifact {
            benchmark: committed.benchmark.clone(),
            reports: Vec::new(),
        },
    };
    for old in &committed.reports {
        let Some(new) = rerun(old) else {
            outcome
                .regressions
                .push(format!("unknown committed label {:?}", old.space));
            continue;
        };
        let reference = |report: &BenchReport| {
            report
                .engines
                .iter()
                .find(|e| e.name == "serial-reference")
                .map(|e| (e.median_ns as f64, e.min_ns as f64))
        };
        let Some(old_ref) = reference(old) else {
            outcome.regressions.push(format!(
                "{}: committed report lacks the serial-reference yardstick",
                old.space
            ));
            continue;
        };
        let new_ref = reference(&new).expect("rerun always measures the reference");
        if new.selected_pe_count != old.selected_pe_count {
            outcome.regressions.push(format!(
                "{}: selected base geometry drifted {} -> {} PEs",
                old.space, old.selected_pe_count, new.selected_pe_count
            ));
        }
        let threads_match = old.threads == new.threads;
        if !threads_match {
            outcome.lines.push(format!(
                "{}: committed threads {} != host threads {} — timing gated for \
                 core-count-independent rows only",
                old.space, old.threads, new.threads
            ));
        }
        for old_row in &old.engines {
            let Some(new_row) = new.engines.iter().find(|e| e.name == old_row.name) else {
                outcome.regressions.push(format!(
                    "{}/{}: engine configuration no longer measured",
                    old.space, old_row.name
                ));
                continue;
            };
            // Reference-normalized timings: fraction of the same run's
            // serial-reference cost.
            let old_med = old_row.median_ns as f64 / old_ref.0;
            let new_med = new_row.median_ns as f64 / new_ref.0;
            let old_min = old_row.min_ns as f64 / old_ref.1;
            let new_min = new_row.min_ns as f64 / new_ref.1;
            let med_ratio = new_med / old_med;
            let min_ratio = new_min / old_min;
            let is_reference = old_row.name == "serial-reference";
            // Parallel rows' ratio to the reference scales with core
            // count; only gate them when the host matches the artifact.
            // Single-threaded rows are core-count-independent and stay
            // gated either way.
            let single_threaded = old_row.name.contains("1-thread");
            let timing_gated = !is_reference && (threads_match || single_threaded);
            let verdict = if new_row.feasible != old_row.feasible {
                outcome.regressions.push(format!(
                    "{}/{}: feasible count drifted {} -> {}",
                    old.space, old_row.name, old_row.feasible, new_row.feasible
                ));
                "FEASIBLE-DRIFT"
            } else if new_row.refill_segments != old_row.refill_segments
                || new_row.refill_stall_cycles != old_row.refill_stall_cycles
            {
                outcome.regressions.push(format!(
                    "{}/{}: refill anchors drifted {} segments/{} stall-cycles -> {}/{}",
                    old.space,
                    old_row.name,
                    old_row.refill_segments,
                    old_row.refill_stall_cycles,
                    new_row.refill_segments,
                    new_row.refill_stall_cycles
                ));
                "REFILL-DRIFT"
            } else if new_row.candidates_seen != old_row.candidates_seen
                || new_row.candidates_pruned != old_row.candidates_pruned
                || new_row.clock_bound_cuts != old_row.clock_bound_cuts
                || new_row.rearrangements_skipped != old_row.rearrangements_skipped
            {
                outcome.regressions.push(format!(
                    "{}/{}: pruning anchors drifted {}/{} seen/pruned \
                     [{} clock-cut, {} rearr. skipped] -> {}/{} [{}, {}]",
                    old.space,
                    old_row.name,
                    old_row.candidates_seen,
                    old_row.candidates_pruned,
                    old_row.clock_bound_cuts,
                    old_row.rearrangements_skipped,
                    new_row.candidates_seen,
                    new_row.candidates_pruned,
                    new_row.clock_bound_cuts,
                    new_row.rearrangements_skipped
                ));
                "PRUNE-DRIFT"
            } else if new_row.bound_tightness.to_bits() != old_row.bound_tightness.to_bits() {
                outcome.regressions.push(format!(
                    "{}/{}: bound tightness drifted {} -> {} (bitwise)",
                    old.space, old_row.name, old_row.bound_tightness, new_row.bound_tightness
                ));
                "TIGHTNESS-DRIFT"
            } else if timing_gated && med_ratio > 1.0 + tolerance && min_ratio > 1.0 + tolerance {
                outcome.regressions.push(format!(
                    "{}/{}: normalized median {:.3}x-ref -> {:.3}x-ref (+{:.0} %) and \
                     normalized min (+{:.0} %) both exceed the {:.0} % tolerance",
                    old.space,
                    old_row.name,
                    old_med,
                    new_med,
                    (med_ratio - 1.0) * 100.0,
                    (min_ratio - 1.0) * 100.0,
                    tolerance * 100.0
                ));
                "REGRESSED"
            } else {
                "ok"
            };
            outcome.lines.push(format!(
                "{}/{}: median {:.3} ms ({:.3}x-ref, committed {:.3}x-ref, {:+.1} %), \
                 min {:+.1} % {}",
                old.space,
                old_row.name,
                new_row.median_ns as f64 / 1e6,
                new_med,
                old_med,
                (med_ratio - 1.0) * 100.0,
                (min_ratio - 1.0) * 100.0,
                verdict
            ));
        }
        outcome.fresh.reports.push(new);
    }
    outcome
}

/// Times `f` with one warmup plus `samples` measured runs; returns
/// `(median, min)` nanoseconds.
pub(crate) fn time_median<F: FnMut()>(samples: u32, mut f: F) -> (u64, u64) {
    assert!(samples >= 1, "need at least one sample");
    f(); // warmup
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    (times[times.len() / 2], times[0])
}
