//! Regenerates the paper's figure6 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::figure6());
}
