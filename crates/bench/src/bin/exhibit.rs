//! One dispatching binary for every regenerated paper exhibit.
//!
//! `cargo run --release -p rsp-bench --bin exhibit -- table2` prints one
//! exhibit; several names print in order; `all` prints every exhibit in
//! paper order (the source of `EXPERIMENTS.md`'s measured columns);
//! `--list` names them all.

/// One exhibit: CLI name, renderer, one-line description.
type Exhibit = (&'static str, fn() -> String, &'static str);

/// Every exhibit the dispatcher knows.
const EXHIBITS: &[Exhibit] = &[
    ("table1", rsp_bench::table1, "synthesis result of a PE"),
    (
        "table2",
        rsp_bench::table2,
        "synthesis of the nine architectures",
    ),
    ("table3", rsp_bench::table3, "kernels in the experiments"),
    (
        "table4",
        rsp_bench::table4,
        "performance of the Livermore kernels",
    ),
    (
        "table5",
        rsp_bench::table5,
        "performance of the DSP kernels",
    ),
    ("figure1", rsp_bench::figure1, "4x4 array and bus structure"),
    (
        "figure2",
        rsp_bench::figure2,
        "loop-pipelined matmul schedule",
    ),
    (
        "figure3",
        rsp_bench::figure3,
        "multiplier sharing topology (and Fig. 4)",
    ),
    (
        "figure5",
        rsp_bench::figure5,
        "general vs pipelined PE critical path",
    ),
    (
        "figure6",
        rsp_bench::figure6,
        "matmul on the 2-stage shared multiplier",
    ),
    (
        "figure7",
        rsp_bench::figure7,
        "design space exploration flow, executed",
    ),
    (
        "figure8",
        rsp_bench::figure8,
        "the four RS/RSP configurations",
    ),
    (
        "headline",
        rsp_bench::headline,
        "the abstract's three claims vs ours",
    ),
    ("power", rsp_bench::power, "energy model extension"),
    (
        "ablation",
        rsp_bench::ablation,
        "template-parameter ablation sweeps",
    ),
    (
        "utilization",
        rsp_bench::utilization,
        "shared-resource utilization",
    ),
    (
        "estimator",
        rsp_bench::estimator_report,
        "DSE estimator vs exact",
    ),
    (
        "all",
        rsp_bench::all_exhibits,
        "every exhibit in paper order",
    ),
];

fn usage() -> String {
    let mut s = String::from(
        "usage: exhibit [--list] <name>...\n\nRegenerates the paper's exhibits. Names:\n",
    );
    for (name, _, what) in EXHIBITS {
        s.push_str(&format!("  {name:<12} {what}\n"));
    }
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for (name, _, _) in EXHIBITS {
            println!("{name}");
        }
        return;
    }
    for arg in &args {
        let Some((_, render, _)) = EXHIBITS.iter().find(|(name, _, _)| name == arg) else {
            eprintln!("unknown exhibit {arg:?}\n\n{}", usage());
            std::process::exit(2);
        };
        print!("{}", render());
    }
}
