//! Extension: ablation sweeps over the RSP template parameters.
fn main() {
    print!("{}", rsp_bench::ablation());
}
