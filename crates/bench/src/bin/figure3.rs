//! Regenerates the paper's figure3 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::figure3());
}
