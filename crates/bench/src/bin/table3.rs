//! Regenerates the paper's table3 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::table3());
}
