//! Extension: activity-based energy across kernels and architectures.
fn main() {
    print!("{}", rsp_bench::power());
}
