//! Regenerates the paper's figure5 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::figure5());
}
