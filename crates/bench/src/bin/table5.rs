//! Regenerates the paper's table5 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::table5());
}
