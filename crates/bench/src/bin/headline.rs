//! Regenerates the paper's headline (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::headline());
}
