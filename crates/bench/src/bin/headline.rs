//! Regenerates the paper's headline claims *and* the tracked exploration
//! benchmark (`BENCH_explore.json`).
//!
//! ```sh
//! cargo run --release -p rsp-bench --bin headline            # stdout only
//! cargo run --release -p rsp-bench --bin headline -- --json BENCH_explore.json
//! cargo run --release -p rsp-bench --bin headline -- --samples 15
//! ```
//!
//! The JSON artifact is rebar-style: engine rows with median-of-N
//! wall-clock (one warmup discarded) and speedups versus the serial
//! reference engine, so future PRs diff performance against a recorded
//! trajectory.

use rsp_bench::explore_bench;
use rsp_core::DesignSpace;

fn main() {
    let mut json_path: Option<String> = None;
    let mut samples: u32 = 11;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--samples" => {
                samples = args
                    .next()
                    .expect("--samples needs a count")
                    .parse()
                    .expect("--samples needs a number");
                assert!(samples >= 1, "--samples must be at least 1");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    print!("{}", rsp_bench::headline());
    println!();

    let report = explore_bench::run(&DesignSpace::extended(), "extended", samples);
    print!("{}", explore_bench::render(&report));

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json + "\n").expect("write benchmark artifact");
        println!("wrote {path}");
    }
}
