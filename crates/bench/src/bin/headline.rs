//! Regenerates the paper's headline claims *and* the tracked exploration
//! benchmark (`BENCH_explore.json`), and gates CI against it.
//!
//! ```sh
//! cargo run --release -p rsp-bench --bin headline            # stdout only
//! cargo run --release -p rsp-bench --bin headline -- --json BENCH_explore.json
//! cargo run --release -p rsp-bench --bin headline -- --samples 15
//! cargo run --release -p rsp-bench --bin headline -- --check BENCH_explore.json --tolerance 0.15
//! ```
//!
//! The JSON artifact is rebar-style: engine rows with median-of-N
//! wall-clock (one warmup discarded), speedups versus the serial
//! reference engine, and pruning-efficacy counters
//! (`candidates_pruned`, `bound_tightness`), over the `extended` space
//! (the speedup trajectory) and the `deep` space (where pruning bites).
//!
//! `--check <artifact>` is the CI benchmark-regression gate: it re-runs
//! every committed report (same spaces and sample counts) and exits
//! non-zero when any engine's median **and** best-of-N wall-clock —
//! both normalized by the same run's `serial-reference` row, so
//! host-speed differences between the artifact's origin and the CI
//! runner cancel — regress by more than `--tolerance` (default
//! 0.15 = 15 %; requiring both statistics keeps the gate stable against
//! scheduler noise), when a feasible-design count drifts, or when a
//! committed engine configuration is no longer measured.

use rsp_bench::explore_bench;

fn main() {
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance: Option<f64> = None;
    let mut samples: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            "--tolerance" => {
                let t: f64 = args
                    .next()
                    .expect("--tolerance needs a fraction")
                    .parse()
                    .expect("--tolerance needs a number");
                assert!(t >= 0.0, "--tolerance must be non-negative");
                tolerance = Some(t);
            }
            "--samples" => {
                let n: u32 = args
                    .next()
                    .expect("--samples needs a count")
                    .parse()
                    .expect("--samples needs a number");
                assert!(n >= 1, "--samples must be at least 1");
                samples = Some(n);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    if let Some(path) = check_path {
        // Checking replays the committed reports at their recorded
        // sample counts and writes nothing; flags that only make sense
        // for a measuring run are a usage error, not something to drop
        // silently.
        assert!(
            json_path.is_none() && samples.is_none(),
            "--check is exclusive: it neither writes --json nor takes --samples \
             (it re-runs each committed report at its recorded sample count)"
        );
        let tolerance = tolerance.unwrap_or(0.15);
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read committed artifact {path}: {e}"));
        let committed: explore_bench::BenchArtifact =
            serde_json::from_str(&raw).expect("committed artifact parses");
        println!("benchmark-regression gate: {path} (tolerance {tolerance})");
        let outcome = explore_bench::check(&committed, tolerance);
        for line in &outcome.lines {
            println!("  {line}");
        }
        if outcome.passed() {
            println!("gate PASSED");
            return;
        }
        eprintln!("gate FAILED:");
        for r in &outcome.regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }

    assert!(
        tolerance.is_none(),
        "--tolerance only applies to --check mode"
    );

    print!("{}", rsp_bench::headline());
    println!();

    let artifact = explore_bench::run_all(samples.unwrap_or(11));
    print!("{}", explore_bench::render_all(&artifact));

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
        std::fs::write(&path, json + "\n").expect("write benchmark artifact");
        println!("wrote {path}");
    }
}
