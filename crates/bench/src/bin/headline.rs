//! Regenerates the paper's headline claims *and* the tracked benchmarks
//! (`BENCH_explore.json`, `BENCH_flow.json`, `BENCH_workload.json`,
//! `BENCH_soak.json`), and gates CI against them.
//!
//! ```sh
//! cargo run --release -p rsp-bench --bin headline            # stdout only
//! cargo run --release -p rsp-bench --bin headline -- --json BENCH_explore.json
//! cargo run --release -p rsp-bench --bin headline -- --flow --json BENCH_flow.json
//! cargo run --release -p rsp-bench --bin headline -- --workload --json BENCH_workload.json
//! cargo run --release -p rsp-bench --bin headline -- --soak --json BENCH_soak.json
//! cargo run --release -p rsp-bench --bin headline -- --samples 15
//! cargo run --release -p rsp-bench --bin headline -- \
//!     --check BENCH_explore.json --check BENCH_flow.json --check BENCH_workload.json \
//!     --check BENCH_soak.json --tolerance 0.15 --emit bench-regen
//! cargo run --release -p rsp-bench --bin headline -- --deadline-ms 200
//! cargo run --release -p rsp-bench --bin headline -- --deadline-ms 200 --resume soak.ckpt.json
//! ```
//!
//! The JSON artifacts are rebar-style: engine rows with median-of-N
//! wall-clock (one warmup discarded), speedups versus the serial
//! reference row, and pruning-efficacy counters (`candidates_pruned`,
//! `clock_bound_cuts`, `rearrangements_skipped`, `bound_tightness`).
//! Without `--flow`/`--workload`/`--soak` the exploration benchmark runs
//! (`extended` + `deep` spaces); `--flow` runs the end-to-end Fig. 7
//! flow benchmark (`flow-paper` + `flow-deep`); `--workload` runs the
//! flow over the generated workload suite (`flow-workload`); `--soak`
//! runs the anytime-robustness benchmark (`soak-deep`: candidate-budget
//! truncation, fault isolation, checkpoint/resume — see
//! [`rsp_bench::soak_bench`]).
//!
//! `--deadline-ms N` demonstrates the anytime layer live: one deep-space
//! exploration under a wall-clock deadline, reporting how far it got and
//! what it found. With `--resume <path>` the run starts from the
//! checkpoint at `<path>` when the file exists, and — whenever the run
//! is truncated — writes its checkpoint back there, so repeated
//! invocations ratchet the sweep to completion. `--resume` alone (no
//! deadline) finishes a checkpointed sweep in one go.
//!
//! `--check <artifact>` is the CI benchmark-regression gate; it may be
//! repeated to gate several artifacts in one invocation, and each
//! artifact is dispatched to its own benchmark by its `benchmark` id
//! (`rsp/explore`, `rsp/flow`, `rsp/workload`, `rsp/soak`) — an id with
//! no handler fails the gate with the known ids listed. The gate re-runs
//! every committed report (same configurations and sample counts) and
//! exits non-zero when any engine's median **and** best-of-N wall-clock
//! — both normalized by the same run's `serial-reference` row, so
//! host-speed differences between the artifact's origin and the CI
//! runner cancel — regress by more than `--tolerance` (default 0.15 =
//! 15 %; requiring both statistics keeps the gate stable against
//! scheduler noise), when a feasible-design count or selected base
//! geometry drifts, or when a committed engine configuration is no
//! longer measured. `--emit <dir>` additionally writes each freshly
//! re-run artifact to `<dir>/<artifact filename>`, so CI can upload
//! them for diffing when the gate fails.
//!
//! I/O and JSON failures (missing artifact, malformed or schema-drifted
//! JSON, unwritable output) exit non-zero with a one-line diagnostic
//! naming the file — and, for schema drift, the offending field — never
//! a panic backtrace.

use rsp_bench::gate::CheckOutcome;
use rsp_bench::{explore_bench, flow_bench, gate, soak_bench, workload_bench};
use std::path::Path;
use std::time::Duration;

/// A benchmark's `--check` gate entry point.
type CheckFn = fn(&gate::BenchArtifact, f64) -> CheckOutcome;

/// Benchmark ids `--check` can dispatch, with their gate entry points.
const CHECK_HANDLERS: [(&str, CheckFn); 4] = [
    ("rsp/explore", explore_bench::check),
    ("rsp/flow", flow_bench::check),
    ("rsp/workload", workload_bench::check),
    ("rsp/soak", soak_bench::check),
];

/// One-line fatal diagnostic; exits non-zero without a backtrace.
fn fail(msg: String) -> ! {
    eprintln!("headline: {msg}");
    std::process::exit(1);
}

fn usage_error(msg: &str) -> ! {
    fail(format!("{msg} (see the module docs for usage)"))
}

/// The live anytime demo: one deep-space exploration under an optional
/// wall-clock deadline, optionally resumed from / checkpointed to
/// `resume_path`.
fn run_anytime(deadline_ms: Option<u64>, resume_path: Option<&str>) {
    use rsp_arch::presets;
    use rsp_core::{
        explore_resume, explore_with, Completeness, DesignSpace, ExploreControl, ExploreOptions,
    };
    use rsp_mapper::{map, MapOptions};

    let base = presets::base_8x8().base().clone();
    let kernels = rsp_kernel::suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).expect("suite maps"))
        .collect();
    let weights = vec![1.0; kernels.len()];
    let space = DesignSpace::deep();
    let control = match deadline_ms {
        Some(ms) => ExploreControl::with_deadline(Duration::from_millis(ms)),
        None => ExploreControl::default(),
    };
    let options = ExploreOptions {
        control,
        ..ExploreOptions::default()
    };

    let checkpoint = match resume_path {
        Some(path) if Path::new(path).exists() => {
            let raw = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read checkpoint {path}: {e}")));
            let ckpt: rsp_core::ExploreCheckpoint = serde_json::from_str(&raw)
                .unwrap_or_else(|e| fail(format!("{path}: invalid checkpoint: {e}")));
            println!(
                "resuming from {path}: {}/{} candidates done",
                ckpt.cursor(),
                ckpt.candidates_total()
            );
            Some(ckpt)
        }
        _ => None,
    };

    let result = match &checkpoint {
        Some(ckpt) => explore_resume(&base, &kernels, &contexts, &weights, &space, &options, ckpt),
        None => explore_with(&base, &kernels, &contexts, &weights, &space, &options),
    }
    .unwrap_or_else(|e| fail(format!("anytime exploration failed: {e}")));

    match result.completeness {
        Completeness::Complete => {
            println!(
                "complete: {} candidates, {} feasible, {} on the frontier, best {}",
                result.stats.candidates_seen,
                result.feasible.len(),
                result.pareto.len(),
                result.best_point().arch.name()
            );
        }
        Completeness::Truncated {
            candidates_remaining,
            reason,
        } => {
            let best = result
                .try_best_point()
                .map(|p| p.arch.name().to_string())
                .unwrap_or_else(|| "none yet".into());
            println!(
                "truncated ({reason:?}): {} candidates done, {} remaining, {} feasible so far, best {best}",
                result.stats.candidates_seen,
                candidates_remaining,
                result.feasible.len(),
            );
            if let Some(path) = resume_path {
                let json = serde_json::to_string_pretty(&result.checkpoint())
                    .unwrap_or_else(|e| fail(format!("checkpoint does not serialize: {e}")));
                std::fs::write(path, json + "\n")
                    .unwrap_or_else(|e| fail(format!("cannot write checkpoint {path}: {e}")));
                println!("checkpoint written to {path} — rerun with --resume {path} to continue");
            }
        }
    }
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut check_paths: Vec<String> = Vec::new();
    let mut emit_dir: Option<String> = None;
    let mut tolerance: Option<f64> = None;
    let mut samples: Option<u32> = None;
    let mut flow = false;
    let mut workload = false;
    let mut soak = false;
    let mut deadline_ms: Option<u64> = None;
    let mut resume_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let next = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(next("--json", &mut args)),
            "--check" => check_paths.push(next("--check", &mut args)),
            "--emit" => emit_dir = Some(next("--emit", &mut args)),
            "--flow" => flow = true,
            "--workload" => workload = true,
            "--soak" => soak = true,
            "--resume" => resume_path = Some(next("--resume", &mut args)),
            "--deadline-ms" => {
                let raw = next("--deadline-ms", &mut args);
                let ms: u64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error("--deadline-ms needs a millisecond count"));
                deadline_ms = Some(ms);
            }
            "--tolerance" => {
                let raw = next("--tolerance", &mut args);
                let t: f64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error("--tolerance needs a number"));
                if t < 0.0 {
                    usage_error("--tolerance must be non-negative");
                }
                tolerance = Some(t);
            }
            "--samples" => {
                let raw = next("--samples", &mut args);
                let n: u32 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error("--samples needs a number"));
                if n < 1 {
                    usage_error("--samples must be at least 1");
                }
                samples = Some(n);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if [flow, workload, soak].iter().filter(|b| **b).count() > 1 {
        usage_error("--flow/--workload/--soak are exclusive (each writes its own artifact)");
    }

    if deadline_ms.is_some() || resume_path.is_some() {
        if !check_paths.is_empty() || json_path.is_some() || flow || workload || soak {
            usage_error("--deadline-ms/--resume run the anytime demo and take no other modes");
        }
        run_anytime(deadline_ms, resume_path.as_deref());
        return;
    }

    if !check_paths.is_empty() {
        // Checking replays the committed reports at their recorded
        // sample counts and writes no --json; flags that only make sense
        // for a measuring run are a usage error, not something to drop
        // silently.
        if json_path.is_some() || samples.is_some() || flow || workload || soak {
            usage_error(
                "--check is exclusive: it neither writes --json nor takes \
                 --samples/--flow/--workload/--soak (each committed artifact selects its own \
                 benchmark and sample counts)",
            );
        }
        let tolerance = tolerance.unwrap_or(0.15);
        let mut failed = false;
        for path in &check_paths {
            let raw = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read committed artifact {path}: {e}")));
            let committed: gate::BenchArtifact = serde_json::from_str(&raw)
                .unwrap_or_else(|e| fail(format!("{path}: invalid benchmark artifact: {e}")));
            println!("benchmark-regression gate: {path} (tolerance {tolerance})");
            let handler = CHECK_HANDLERS
                .iter()
                .find(|(id, _)| *id == committed.benchmark)
                .map(|(_, check)| check);
            let Some(handler) = handler else {
                let known: Vec<&str> = CHECK_HANDLERS.iter().map(|(id, _)| *id).collect();
                eprintln!(
                    "  FAILED: {path}: no check handler for benchmark id {:?} (known ids: {})",
                    committed.benchmark,
                    known.join(", ")
                );
                failed = true;
                continue;
            };
            let outcome = handler(&committed, tolerance);
            for line in &outcome.lines {
                println!("  {line}");
            }
            if let Some(dir) = &emit_dir {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(format!("cannot create --emit directory {dir}: {e}")));
                let Some(name) = Path::new(path).file_name() else {
                    fail(format!("--check path {path} has no file name"));
                };
                let out = Path::new(dir).join(name);
                let json = serde_json::to_string_pretty(&outcome.fresh)
                    .unwrap_or_else(|e| fail(format!("artifact does not serialize: {e}")));
                std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
                    fail(format!(
                        "cannot write regenerated artifact {}: {e}",
                        out.display()
                    ))
                });
                println!("  regenerated artifact written to {}", out.display());
            }
            if outcome.passed() {
                println!("  PASSED");
            } else {
                failed = true;
                eprintln!("  FAILED:");
                for r in &outcome.regressions {
                    eprintln!("    {r}");
                }
            }
        }
        if failed {
            eprintln!("gate FAILED");
            std::process::exit(1);
        }
        println!("gate PASSED");
        return;
    }

    if tolerance.is_some() || emit_dir.is_some() {
        usage_error("--tolerance/--emit only apply to --check mode");
    }

    if flow || workload || soak {
        let artifact = if flow {
            flow_bench::run_all(samples.unwrap_or(11))
        } else if workload {
            workload_bench::run_all(samples.unwrap_or(11))
        } else {
            soak_bench::run_all(samples.unwrap_or(11))
        };
        print!("{}", gate::render_all(&artifact));
        if let Some(path) = json_path {
            let json = serde_json::to_string_pretty(&artifact)
                .unwrap_or_else(|e| fail(format!("artifact does not serialize: {e}")));
            std::fs::write(&path, json + "\n")
                .unwrap_or_else(|e| fail(format!("cannot write benchmark artifact {path}: {e}")));
            println!("wrote {path}");
        }
        return;
    }

    print!("{}", rsp_bench::headline());
    println!();

    let artifact = explore_bench::run_all(samples.unwrap_or(11));
    print!("{}", gate::render_all(&artifact));

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&artifact)
            .unwrap_or_else(|e| fail(format!("artifact does not serialize: {e}")));
        std::fs::write(&path, json + "\n")
            .unwrap_or_else(|e| fail(format!("cannot write benchmark artifact {path}: {e}")));
        println!("wrote {path}");
    }
}
