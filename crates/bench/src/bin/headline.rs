//! The one generic benchmark runner over the registry
//! ([`rsp_bench::registry`]): lists, runs, gates, and diffs every
//! tracked benchmark (`BENCH_explore.json`, `BENCH_flow.json`,
//! `BENCH_workload.json`, `BENCH_soak.json`) from its declarative
//! definition.
//!
//! ```sh
//! cargo run --release -p rsp-bench --bin headline                    # claims + registry summary
//! cargo run --release -p rsp-bench --bin headline -- --list
//! cargo run --release -p rsp-bench --bin headline -- --list --filter 'rsp/f*'
//! cargo run --release -p rsp-bench --bin headline -- --run 'rsp/*' --samples 5
//! cargo run --release -p rsp-bench --bin headline -- --run rsp/explore --samples 21 --json BENCH_explore.json
//! cargo run --release -p rsp-bench --bin headline -- --check BENCH_explore.json --tolerance 0.15
//! cargo run --release -p rsp-bench --bin headline -- --check-all --tolerance 0.15 --emit bench-regen
//! cargo run --release -p rsp-bench --bin headline -- --cmp BENCH_explore.json bench-regen/BENCH_explore.json
//! cargo run --release -p rsp-bench --bin headline -- --cmp . bench-regen
//! cargo run --release -p rsp-bench --bin headline -- --deadline-ms 200 --resume soak.ckpt.json
//! cargo run --release -p rsp-bench --bin headline -- --profile rsp/explore
//! ```
//!
//! `--list` prints every benchmark definition — workload, space,
//! engines, anchors, tracked labels, and the exact regeneration command
//! — optionally narrowed by `--filter <id-glob>` (`*`/`?` wildcards).
//!
//! `--run <id-glob>` measures every matching definition (all its
//! tracked labels) and prints the report tables; with `--json <path>`
//! the glob must match exactly one benchmark (each artifact holds one)
//! and its artifact is written there. `--samples` overrides the
//! per-definition default.
//!
//! `--check <artifact>` is the benchmark-regression gate for one
//! committed artifact; it may be repeated. The artifact's `benchmark`
//! id selects its registry definition — an id with no definition fails
//! the gate with the known ids listed. `--check-all` is the
//! self-discovering variant CI runs: it finds every `BENCH_*.json` in
//! the current directory, pairs each with its definition by id, and
//! *additionally* fails when an artifact has no definition or a
//! definition has no committed artifact — discovery errors abort before
//! any measurement. Both replay every committed report (same labels and
//! sample counts) through [`rsp_bench::gate::check_with`] and exit
//! non-zero when an engine's reference-normalized median **and**
//! best-of-N both regress beyond `--tolerance` (default 0.15), when a
//! correctness anchor drifts, or when a committed engine configuration
//! disappears — the full rules are in `crates/bench/METHODOLOGY.md`.
//! `--emit <dir>` writes each freshly re-run artifact to
//! `<dir>/<artifact filename>` so CI can upload and diff them.
//!
//! `--cmp <before> <after>` renders a rebar-style markdown diff of two
//! artifact files, or of two directories of `BENCH_*.json` artifacts
//! paired by filename ([`rsp_bench::cmp`]) — CI appends the
//! committed-vs-regenerated diff to the step summary on every run.
//! `--cmp` never exits non-zero on drift (the gate owns the verdict);
//! only unreadable inputs fail.
//!
//! `--profile <bench-id>` runs one registry benchmark (default 1 sample
//! per row, override with `--samples`) with an in-memory recorder
//! installed as the process-global `rsp_obs` recorder, then prints the
//! per-phase time breakdown — exploration's enumerate/prepare/screen/
//! estimate chunks, the flow's profile/select/explore/exact phases,
//! prune and refill counters — aggregated across every event the run
//! emitted. Observational only: the benchmark's anchors still assert.
//!
//! `--deadline-ms N` demonstrates the anytime layer live: one deep-space
//! exploration under a wall-clock deadline, reporting how far it got and
//! what it found. With `--resume <path>` the run starts from the
//! checkpoint at `<path>` when the file exists, and — whenever the run
//! is truncated — writes its checkpoint back there, so repeated
//! invocations ratchet the sweep to completion. `--resume` alone (no
//! deadline) finishes a checkpointed sweep in one go.
//!
//! I/O and JSON failures (missing artifact, malformed or schema-drifted
//! JSON, unwritable output) exit non-zero with a one-line diagnostic
//! naming the file — and, for schema drift, the offending field — never
//! a panic backtrace.

use rsp_bench::cmp;
use rsp_bench::gate::{self, BenchArtifact, CheckOutcome};
use rsp_bench::registry::{registry, BenchDef};
use std::path::Path;
use std::time::Duration;

/// One-line fatal diagnostic; exits non-zero without a backtrace.
fn fail(msg: String) -> ! {
    eprintln!("headline: {msg}");
    std::process::exit(1);
}

fn usage_error(msg: &str) -> ! {
    fail(format!("{msg} (see the module docs for usage)"))
}

/// The live anytime demo: one deep-space exploration under an optional
/// wall-clock deadline, optionally resumed from / checkpointed to
/// `resume_path`.
fn run_anytime(deadline_ms: Option<u64>, resume_path: Option<&str>) {
    use rsp_core::{
        explore_resume, explore_with, Completeness, DesignSpace, ExploreControl, Session,
    };

    // The session assembles options and memoizes the mapped contexts —
    // the same request layer the CLI and `rsp-serve` build on.
    let session = Session::builder().build();
    let base = session.base(8, 8);
    let kernels = rsp_kernel::suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| (*session.map(&base, k).expect("suite maps")).clone())
        .collect();
    let weights = vec![1.0; kernels.len()];
    let space = DesignSpace::deep();
    let control = match deadline_ms {
        Some(ms) => ExploreControl::with_deadline(Duration::from_millis(ms)),
        None => ExploreControl::default(),
    };
    let options = session.explore_options(control);

    let checkpoint = match resume_path {
        Some(path) if Path::new(path).exists() => {
            let raw = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read checkpoint {path}: {e}")));
            let ckpt: rsp_core::ExploreCheckpoint = serde_json::from_str(&raw)
                .unwrap_or_else(|e| fail(format!("{path}: invalid checkpoint: {e}")));
            println!(
                "resuming from {path}: {}/{} candidates done",
                ckpt.cursor(),
                ckpt.candidates_total()
            );
            Some(ckpt)
        }
        _ => None,
    };

    let result = match &checkpoint {
        Some(ckpt) => explore_resume(&base, &kernels, &contexts, &weights, &space, &options, ckpt),
        None => explore_with(&base, &kernels, &contexts, &weights, &space, &options),
    }
    .unwrap_or_else(|e| fail(format!("anytime exploration failed: {e}")));

    match result.completeness {
        Completeness::Complete => {
            println!(
                "complete: {} candidates, {} feasible, {} on the frontier, best {}",
                result.stats.candidates_seen,
                result.feasible.len(),
                result.pareto.len(),
                result.best_point().arch.name()
            );
        }
        Completeness::Truncated {
            candidates_remaining,
            reason,
        } => {
            let best = result
                .try_best_point()
                .map(|p| p.arch.name().to_string())
                .unwrap_or_else(|| "none yet".into());
            println!(
                "truncated ({reason:?}): {} candidates done, {} remaining, {} feasible so far, best {best}",
                result.stats.candidates_seen,
                candidates_remaining,
                result.feasible.len(),
            );
            if let Some(path) = resume_path {
                let json = serde_json::to_string_pretty(&result.checkpoint())
                    .unwrap_or_else(|e| fail(format!("checkpoint does not serialize: {e}")));
                std::fs::write(path, json + "\n")
                    .unwrap_or_else(|e| fail(format!("cannot write checkpoint {path}: {e}")));
                println!("checkpoint written to {path} — rerun with --resume {path} to continue");
            }
        }
    }
}

/// The per-phase time profile: installs a `RingRecorder` as the
/// process-global recorder, runs one registry benchmark under it, and
/// renders the aggregate `(target, phase)` breakdown the engine's spans
/// and counters recorded. Purely observational — the benchmark's own
/// anchors still run and still assert.
fn run_profile(id: &str, samples: u32) {
    use rsp_obs::RingRecorder;
    use std::sync::Arc;

    let Some(def) = registry().find(id) else {
        fail(format!(
            "no benchmark with id {id:?} (known ids: {})",
            registry().ids().join(", ")
        ));
    };
    // Installed before `run_all` so every option struct the adapters
    // build (they default their recorder from the global) records here.
    let ring = Arc::new(RingRecorder::new(65_536));
    let prev = rsp_obs::set_global(ring.clone());
    let artifact = def.run_all(samples);
    rsp_obs::set_global(prev);

    println!(
        "phase profile: {} — {} ({} report(s), {samples} sample(s) per row)",
        def.id,
        def.title,
        artifact.reports.len()
    );
    let summary = ring.summary();
    if summary.is_empty() {
        println!("  no events recorded — this benchmark exercises no instrumented phase");
        return;
    }
    let span_total: u64 = summary.iter().map(|(_, s)| s.total_ns).sum();
    println!(
        "  {:<9} {:<13} {:>10} {:>12} {:>12} {:>7} {:>10}",
        "target", "phase", "events", "total_ms", "mean_us", "%time", "delta"
    );
    for ((target, name), s) in &summary {
        let total_ms = s.total_ns as f64 / 1e6;
        let mean_us = s.total_ns as f64 / s.count.max(1) as f64 / 1e3;
        let pct = 100.0 * s.total_ns as f64 / span_total.max(1) as f64;
        println!(
            "  {target:<9} {name:<13} {:>10} {total_ms:>12.3} {mean_us:>12.2} {pct:>6.1}% {:>10}",
            s.count, s.total_delta
        );
    }
    println!(
        "  events retained {} / recorded {} (ring capacity 65536; totals above are wrap-proof)",
        ring.events().len(),
        ring.total()
    );
}

/// Gates one committed artifact against its definition; prints the
/// status lines, writes the fresh rerun under `emit_dir`, and returns
/// whether the gate passed.
fn check_one(
    def: &BenchDef,
    path: &str,
    committed: &BenchArtifact,
    tolerance: f64,
    emit_dir: Option<&str>,
) -> bool {
    let outcome: CheckOutcome = def.check(committed, tolerance);
    for line in &outcome.lines {
        println!("  {line}");
    }
    if let Some(dir) = emit_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(format!("cannot create --emit directory {dir}: {e}")));
        let Some(name) = Path::new(path).file_name() else {
            fail(format!("--check path {path} has no file name"));
        };
        let out = Path::new(dir).join(name);
        let json = serde_json::to_string_pretty(&outcome.fresh)
            .unwrap_or_else(|e| fail(format!("artifact does not serialize: {e}")));
        std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
            fail(format!(
                "cannot write regenerated artifact {}: {e}",
                out.display()
            ))
        });
        println!("  regenerated artifact written to {}", out.display());
    }
    if outcome.passed() {
        println!("  PASSED");
    } else {
        eprintln!("  FAILED:");
        for r in &outcome.regressions {
            eprintln!("    {r}");
        }
    }
    outcome.passed()
}

fn main() {
    let mut list = false;
    let mut filter: Option<String> = None;
    let mut run_glob: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut check_paths: Vec<String> = Vec::new();
    let mut check_all = false;
    let mut cmp_paths: Option<(String, String)> = None;
    let mut emit_dir: Option<String> = None;
    let mut tolerance: Option<f64> = None;
    let mut samples: Option<u32> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut resume_path: Option<String> = None;
    let mut profile_id: Option<String> = None;
    let mut args = std::env::args().skip(1);
    let next = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--filter" => filter = Some(next("--filter", &mut args)),
            "--run" => run_glob = Some(next("--run", &mut args)),
            "--json" => json_path = Some(next("--json", &mut args)),
            "--check" => check_paths.push(next("--check", &mut args)),
            "--check-all" => check_all = true,
            "--cmp" => {
                let before = next("--cmp", &mut args);
                let after = args
                    .next()
                    .unwrap_or_else(|| usage_error("--cmp needs two paths (before and after)"));
                cmp_paths = Some((before, after));
            }
            "--emit" => emit_dir = Some(next("--emit", &mut args)),
            "--profile" => profile_id = Some(next("--profile", &mut args)),
            "--resume" => resume_path = Some(next("--resume", &mut args)),
            "--deadline-ms" => {
                let raw = next("--deadline-ms", &mut args);
                let ms: u64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error("--deadline-ms needs a millisecond count"));
                deadline_ms = Some(ms);
            }
            "--tolerance" => {
                let raw = next("--tolerance", &mut args);
                let t: f64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error("--tolerance needs a number"));
                if t < 0.0 {
                    usage_error("--tolerance must be non-negative");
                }
                tolerance = Some(t);
            }
            "--samples" => {
                let raw = next("--samples", &mut args);
                let n: u32 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error("--samples needs a number"));
                if n < 1 {
                    usage_error("--samples must be at least 1");
                }
                samples = Some(n);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let modes = [
        list,
        run_glob.is_some(),
        !check_paths.is_empty() || check_all,
        cmp_paths.is_some(),
        deadline_ms.is_some() || resume_path.is_some(),
        profile_id.is_some(),
    ];
    if modes.iter().filter(|m| **m).count() > 1 {
        usage_error(
            "--list/--run/--check/--check-all/--cmp/--deadline-ms/--profile are exclusive modes",
        );
    }
    if filter.is_some() && !list {
        usage_error("--filter only applies to --list");
    }

    if let Some(id) = profile_id {
        if json_path.is_some() || tolerance.is_some() || emit_dir.is_some() {
            usage_error("--profile only takes --samples");
        }
        run_profile(&id, samples.unwrap_or(1));
        return;
    }

    if deadline_ms.is_some() || resume_path.is_some() {
        if json_path.is_some() || samples.is_some() || tolerance.is_some() || emit_dir.is_some() {
            usage_error("--deadline-ms/--resume run the anytime demo and take no other flags");
        }
        run_anytime(deadline_ms, resume_path.as_deref());
        return;
    }

    if list {
        print!("{}", registry().render_list(filter.as_deref()));
        return;
    }

    if let Some((before, after)) = cmp_paths {
        if json_path.is_some() || samples.is_some() || emit_dir.is_some() {
            usage_error("--cmp only takes --tolerance");
        }
        let diff = cmp::cmp_paths(
            Path::new(&before),
            Path::new(&after),
            tolerance.unwrap_or(cmp::DEFAULT_TOLERANCE),
        )
        .unwrap_or_else(|e| fail(e));
        print!("{diff}");
        return;
    }

    if !check_paths.is_empty() || check_all {
        // Checking replays the committed reports at their recorded
        // sample counts and writes no --json; flags that only make sense
        // for a measuring run are a usage error, not something to drop
        // silently.
        if json_path.is_some() || samples.is_some() {
            usage_error(
                "--check/--check-all are exclusive: they neither write --json nor take \
                 --samples (each committed artifact selects its own benchmark and sample counts)",
            );
        }
        let tolerance = tolerance.unwrap_or(0.15);
        let mut failed = false;

        // Pair every artifact with its definition up front: --check-all
        // discovery errors (and unknown --check ids) must abort before
        // any measurement is paid for.
        let mut jobs: Vec<(String, BenchArtifact, &BenchDef)> = Vec::new();
        for path in &check_paths {
            let raw = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(format!("cannot read committed artifact {path}: {e}")));
            let committed: BenchArtifact = serde_json::from_str(&raw)
                .unwrap_or_else(|e| fail(format!("{path}: invalid benchmark artifact: {e}")));
            let Some(def) = registry().find(&committed.benchmark) else {
                eprintln!(
                    "headline: {path}: no check handler for benchmark id {:?} (known ids: {})",
                    committed.benchmark,
                    registry().ids().join(", ")
                );
                std::process::exit(1);
            };
            jobs.push((path.clone(), committed, def));
        }
        if check_all {
            match registry().discover(Path::new(".")) {
                Ok(found) => {
                    println!(
                        "discovered {} committed artifacts for {} registered benchmarks",
                        found.len(),
                        registry().defs().len()
                    );
                    for d in found {
                        jobs.push((d.path.display().to_string(), d.artifact, d.def));
                    }
                }
                Err(errors) => {
                    for e in &errors {
                        eprintln!("headline: {e}");
                    }
                    eprintln!("gate FAILED");
                    std::process::exit(1);
                }
            }
        }

        for (path, committed, def) in &jobs {
            println!(
                "benchmark-regression gate: {path} [{}] (tolerance {tolerance})",
                def.id
            );
            if !check_one(def, path, committed, tolerance, emit_dir.as_deref()) {
                failed = true;
            }
        }
        if failed {
            eprintln!("gate FAILED");
            std::process::exit(1);
        }
        println!("gate PASSED");
        return;
    }

    if tolerance.is_some() || emit_dir.is_some() {
        usage_error("--tolerance/--emit only apply to --check/--check-all/--cmp modes");
    }

    if let Some(glob) = run_glob {
        let defs = registry().filter(&glob);
        if defs.is_empty() {
            fail(format!(
                "no benchmark matches {glob:?} (known ids: {})",
                registry().ids().join(", ")
            ));
        }
        if json_path.is_some() && defs.len() > 1 {
            let ids: Vec<&str> = defs.iter().map(|d| d.id).collect();
            usage_error(&format!(
                "--json needs --run to match exactly one benchmark (an artifact holds one), \
                 but {glob:?} matches {}",
                ids.join(", ")
            ));
        }
        for def in defs {
            let artifact = def.run_all(samples.unwrap_or(def.default_samples));
            println!("{} — {}", def.id, def.title);
            print!("{}", gate::render_all(&artifact));
            if let Some(path) = &json_path {
                let json = serde_json::to_string_pretty(&artifact)
                    .unwrap_or_else(|e| fail(format!("artifact does not serialize: {e}")));
                std::fs::write(path, json + "\n").unwrap_or_else(|e| {
                    fail(format!("cannot write benchmark artifact {path}: {e}"))
                });
                println!("wrote {path}");
            }
        }
        return;
    }

    if json_path.is_some() || samples.is_some() {
        usage_error("--json/--samples only apply to --run mode");
    }

    // Bare invocation: the paper's headline claims plus the registry
    // summary (what `--list` details, one line each).
    print!("{}", rsp_bench::headline());
    println!();
    println!("tracked benchmarks (headline --list for details):");
    for def in registry().defs() {
        println!("  {:<14} {:<20} {}", def.id, def.artifact, def.title);
    }
}
