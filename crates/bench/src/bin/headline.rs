//! Regenerates the paper's headline claims *and* the tracked benchmarks
//! (`BENCH_explore.json`, `BENCH_flow.json`, `BENCH_workload.json`), and
//! gates CI against them.
//!
//! ```sh
//! cargo run --release -p rsp-bench --bin headline            # stdout only
//! cargo run --release -p rsp-bench --bin headline -- --json BENCH_explore.json
//! cargo run --release -p rsp-bench --bin headline -- --flow --json BENCH_flow.json
//! cargo run --release -p rsp-bench --bin headline -- --workload --json BENCH_workload.json
//! cargo run --release -p rsp-bench --bin headline -- --samples 15
//! cargo run --release -p rsp-bench --bin headline -- \
//!     --check BENCH_explore.json --check BENCH_flow.json --check BENCH_workload.json \
//!     --tolerance 0.15 --emit bench-regen
//! ```
//!
//! The JSON artifacts are rebar-style: engine rows with median-of-N
//! wall-clock (one warmup discarded), speedups versus the serial
//! reference row, and pruning-efficacy counters (`candidates_pruned`,
//! `clock_bound_cuts`, `rearrangements_skipped`, `bound_tightness`).
//! Without `--flow`/`--workload` the exploration benchmark runs
//! (`extended` + `deep` spaces); `--flow` runs the end-to-end Fig. 7
//! flow benchmark (`flow-paper` + `flow-deep`); `--workload` runs the
//! flow over the generated workload suite (`flow-workload`, whose
//! multi-geometry exploration selects the 8×8 base — anchored by
//! `selected_pe_count`).
//!
//! `--check <artifact>` is the CI benchmark-regression gate; it may be
//! repeated to gate several artifacts in one invocation, and each
//! artifact is dispatched to its own benchmark by its `benchmark` id
//! (`rsp/explore`, `rsp/flow`, `rsp/workload`) — an id with no handler
//! fails the gate with the known ids listed. The gate re-runs every
//! committed report (same configurations and sample counts) and exits
//! non-zero when any engine's median **and** best-of-N wall-clock —
//! both normalized by the same run's `serial-reference` row, so
//! host-speed differences between the artifact's origin and the CI
//! runner cancel — regress by more than `--tolerance` (default 0.15 =
//! 15 %; requiring both statistics keeps the gate stable against
//! scheduler noise), when a feasible-design count or selected base
//! geometry drifts, or when a committed engine configuration is no
//! longer measured. `--emit <dir>` additionally writes each freshly
//! re-run artifact to `<dir>/<artifact filename>`, so CI can upload
//! them for diffing when the gate fails.

use rsp_bench::gate::CheckOutcome;
use rsp_bench::{explore_bench, flow_bench, gate, workload_bench};
use std::path::Path;

/// A benchmark's `--check` gate entry point.
type CheckFn = fn(&gate::BenchArtifact, f64) -> CheckOutcome;

/// Benchmark ids `--check` can dispatch, with their gate entry points.
const CHECK_HANDLERS: [(&str, CheckFn); 3] = [
    ("rsp/explore", explore_bench::check),
    ("rsp/flow", flow_bench::check),
    ("rsp/workload", workload_bench::check),
];

fn main() {
    let mut json_path: Option<String> = None;
    let mut check_paths: Vec<String> = Vec::new();
    let mut emit_dir: Option<String> = None;
    let mut tolerance: Option<f64> = None;
    let mut samples: Option<u32> = None;
    let mut flow = false;
    let mut workload = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--check" => check_paths.push(args.next().expect("--check needs a path")),
            "--emit" => emit_dir = Some(args.next().expect("--emit needs a directory")),
            "--flow" => flow = true,
            "--workload" => workload = true,
            "--tolerance" => {
                let t: f64 = args
                    .next()
                    .expect("--tolerance needs a fraction")
                    .parse()
                    .expect("--tolerance needs a number");
                assert!(t >= 0.0, "--tolerance must be non-negative");
                tolerance = Some(t);
            }
            "--samples" => {
                let n: u32 = args
                    .next()
                    .expect("--samples needs a count")
                    .parse()
                    .expect("--samples needs a number");
                assert!(n >= 1, "--samples must be at least 1");
                samples = Some(n);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        !(flow && workload),
        "--flow and --workload are exclusive (each writes its own artifact)"
    );

    if !check_paths.is_empty() {
        // Checking replays the committed reports at their recorded
        // sample counts and writes no --json; flags that only make sense
        // for a measuring run are a usage error, not something to drop
        // silently.
        assert!(
            json_path.is_none() && samples.is_none() && !flow && !workload,
            "--check is exclusive: it neither writes --json nor takes --samples/--flow/--workload \
             (each committed artifact selects its own benchmark and sample counts)"
        );
        let tolerance = tolerance.unwrap_or(0.15);
        let mut failed = false;
        for path in &check_paths {
            let raw = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read committed artifact {path}: {e}"));
            let committed: gate::BenchArtifact =
                serde_json::from_str(&raw).expect("committed artifact parses");
            println!("benchmark-regression gate: {path} (tolerance {tolerance})");
            let handler = CHECK_HANDLERS
                .iter()
                .find(|(id, _)| *id == committed.benchmark)
                .map(|(_, check)| check);
            let Some(handler) = handler else {
                let known: Vec<&str> = CHECK_HANDLERS.iter().map(|(id, _)| *id).collect();
                eprintln!(
                    "  FAILED: {path}: no check handler for benchmark id {:?} (known ids: {})",
                    committed.benchmark,
                    known.join(", ")
                );
                failed = true;
                continue;
            };
            let outcome = handler(&committed, tolerance);
            for line in &outcome.lines {
                println!("  {line}");
            }
            if let Some(dir) = &emit_dir {
                std::fs::create_dir_all(dir).expect("create --emit directory");
                let name = Path::new(path)
                    .file_name()
                    .expect("--check path has a file name");
                let out = Path::new(dir).join(name);
                let json =
                    serde_json::to_string_pretty(&outcome.fresh).expect("artifact serializes");
                std::fs::write(&out, json + "\n").expect("write regenerated artifact");
                println!("  regenerated artifact written to {}", out.display());
            }
            if outcome.passed() {
                println!("  PASSED");
            } else {
                failed = true;
                eprintln!("  FAILED:");
                for r in &outcome.regressions {
                    eprintln!("    {r}");
                }
            }
        }
        if failed {
            eprintln!("gate FAILED");
            std::process::exit(1);
        }
        println!("gate PASSED");
        return;
    }

    assert!(
        tolerance.is_none() && emit_dir.is_none(),
        "--tolerance/--emit only apply to --check mode"
    );

    if flow || workload {
        let artifact = if flow {
            flow_bench::run_all(samples.unwrap_or(11))
        } else {
            workload_bench::run_all(samples.unwrap_or(11))
        };
        print!("{}", gate::render_all(&artifact));
        if let Some(path) = json_path {
            let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
            std::fs::write(&path, json + "\n").expect("write benchmark artifact");
            println!("wrote {path}");
        }
        return;
    }

    print!("{}", rsp_bench::headline());
    println!();

    let artifact = explore_bench::run_all(samples.unwrap_or(11));
    print!("{}", gate::render_all(&artifact));

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
        std::fs::write(&path, json + "\n").expect("write benchmark artifact");
        println!("wrote {path}");
    }
}
