//! Regenerates the paper's table4 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::table4());
}
