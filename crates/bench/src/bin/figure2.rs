//! Regenerates the paper's figure2 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::figure2());
}
