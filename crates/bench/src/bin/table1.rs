//! Regenerates the paper's table1 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::table1());
}
