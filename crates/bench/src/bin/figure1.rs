//! Regenerates the paper's figure1 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::figure1());
}
