//! Extension: functional-resource utilization across architectures.
fn main() {
    print!("{}", rsp_bench::utilization());
}
