//! Regenerates the paper's figure7 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::figure7());
}
