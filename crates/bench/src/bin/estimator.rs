//! Prints the exploration-time estimate against the exact rearrangement.
fn main() {
    print!("{}", rsp_bench::estimator_report());
}
