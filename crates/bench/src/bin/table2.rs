//! Regenerates the paper's table2 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::table2());
}
