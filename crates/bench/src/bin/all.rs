//! Prints every regenerated table and figure in paper order.
fn main() {
    print!("{}", rsp_bench::all_exhibits());
}
