//! Regenerates the paper's figure8 (see `rsp-bench` crate docs).
fn main() {
    print!("{}", rsp_bench::figure8());
}
