//! Tracked exploration benchmark — the `BENCH_explore.json` trajectory.
//!
//! Rebar-style harness: each engine configuration is timed with a warmup
//! run plus `samples` measured runs, and the *median* wall-clock is
//! reported (robust against scheduler noise). The JSON artifact is
//! committed so future changes can be checked against the recorded
//! trajectory instead of a vibe — and CI enforces it: the `headline`
//! binary's `--check` mode ([`check`]) re-runs the benchmark and fails
//! when any engine's median *and* best-of-N wall-clock — both
//! normalized by the same run's `serial-reference` row, so host speed
//! cancels — regress beyond a tolerance versus the committed artifact,
//! or when a feasible-design count drifts (a correctness anchor, not a
//! timing).
//!
//! The artifact holds one report per design space:
//!
//! * `extended` — the engine-speedup trajectory tracked since the engine
//!   rebuild.
//! * `deep` — the pruning-efficacy benchmark: a 480-candidate space
//!   where the per-row residual bound plus area-ordered enumeration make
//!   [`PruneStrategy::Dominated`] skip a large fraction of candidate
//!   estimations (`candidates_pruned` / `bound_tightness` per row).
//!
//! Engines measured per space, all over the full kernel suite with
//! uniform weights:
//!
//! * `serial-reference` — [`rsp_core::explore_reference`], the paper-
//!   faithful baseline: clones the base per candidate, re-synthesizes
//!   every report, rebuilds dense demand histograms.
//! * `engine-1-thread` — the allocation-free engine pinned to one thread
//!   (isolates the algorithmic win from parallel speedup).
//! * `engine-1-thread-pruned` — one thread plus Dominated pruning with
//!   the per-row bound: the core-count-independent row the cross-host
//!   timing gate always holds, so the pruning machinery itself can never
//!   silently regress.
//! * `engine-parallel` — the engine on all cores, no pruning.
//! * `engine-parallel-pruned` — all cores plus lower-bound and
//!   dominated-candidate pruning with the default
//!   [`BoundKind::PerRowResidual`] (frontier-preserving).
//! * `engine-pruned-aggregate` — same, with the looser
//!   [`BoundKind::Aggregate`] bound (the ablation that shows what the
//!   per-row residual buys).

use rsp_arch::presets;
use rsp_core::{
    explore_reference, explore_with, BoundKind, Constraints, DesignSpace, ExploreOptions,
    Objective, PruneStrategy,
};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// One engine's timing row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineRow {
    /// Engine configuration name.
    pub name: String,
    /// Median wall-clock per exploration (nanoseconds).
    pub median_ns: u64,
    /// Minimum observed (nanoseconds).
    pub min_ns: u64,
    /// Measured samples (after one warmup).
    pub samples: u32,
    /// Speedup versus the serial reference (reference median / this
    /// median).
    pub speedup_vs_reference: f64,
    /// Feasible designs the run produced (sanity anchor: engines must
    /// agree unless pruning legitimately drops dominated points).
    pub feasible: usize,
    /// Candidate plans enumerated from the space.
    pub candidates_seen: usize,
    /// Candidates whose full estimation pruning skipped.
    pub candidates_pruned: usize,
    /// Mean lower-bound / full-estimate ratio over estimated candidates
    /// (1.0 = exact bound; 0.0 = pruning disabled, no bounds computed).
    pub bound_tightness: f64,
}

/// Timings of every engine over one design space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Design space label (`extended`, `deep`, ...).
    pub space: String,
    /// Candidate plans enumerated per exploration.
    pub candidates: usize,
    /// Kernels in the workload.
    pub kernels: usize,
    /// Worker threads available to the parallel engines.
    pub threads: usize,
    /// Measured samples per engine (after one warmup).
    pub samples: u32,
    /// Timing rows, reference first.
    pub engines: Vec<EngineRow>,
}

/// The whole committed artifact (`BENCH_explore.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchArtifact {
    /// Artifact schema/benchmark id.
    pub benchmark: String,
    /// One report per tracked design space.
    pub reports: Vec<BenchReport>,
}

fn time_median<F: FnMut()>(samples: u32, mut f: F) -> (u64, u64) {
    assert!(samples >= 1, "need at least one sample");
    f(); // warmup
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    (times[times.len() / 2], times[0])
}

/// The design space a report label names; checking mode re-runs the
/// committed labels through this.
fn space_for(label: &str) -> Option<DesignSpace> {
    match label {
        "paper" => Some(DesignSpace::paper()),
        "extended" => Some(DesignSpace::extended()),
        "deep" => Some(DesignSpace::deep()),
        _ => None,
    }
}

/// Runs the exploration benchmark on `space` with `samples` measured
/// repetitions per engine.
pub fn run(space: &DesignSpace, space_label: &str, samples: u32) -> BenchReport {
    let base = presets::base_8x8().base().clone();
    let kernels = suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).expect("suite maps"))
        .collect();
    let weights = vec![1.0; kernels.len()];
    let constraints = Constraints::default();
    let objective = Objective::AreaDelayProduct;

    // Each engine run gets a fresh run-local cache (`cache: None`) so the
    // rows measure full cost, not a warmed memo.
    let engine_opts =
        |parallelism: Option<usize>, prune: PruneStrategy, bound: BoundKind| ExploreOptions {
            parallelism,
            prune,
            bound,
            constraints,
            objective,
            cache: None,
        };

    let mut rows: Vec<EngineRow> = Vec::new();

    // Reference baseline.
    let reference_median = {
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_reference(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    space,
                    &constraints,
                    objective,
                )
                .expect("reference explores"),
            );
        });
        let last = last.unwrap();
        rows.push(EngineRow {
            name: "serial-reference".into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: 1.0,
            feasible: last.feasible.len(),
            candidates_seen: last.stats.candidates_seen,
            candidates_pruned: 0,
            bound_tightness: 0.0,
        });
        median
    };

    let configs = [
        (
            "engine-1-thread",
            Some(1),
            PruneStrategy::None,
            BoundKind::PerRowResidual,
        ),
        // Single-threaded pruned row: its ratio to the serial reference
        // is core-count-independent, so the cross-host timing gate can
        // always hold it — the row that keeps the pruning machinery
        // (bound computation, area ordering, streaming frontier) from
        // silently rotting even when the artifact and the CI runner
        // disagree on core count.
        (
            "engine-1-thread-pruned",
            Some(1),
            PruneStrategy::Dominated,
            BoundKind::PerRowResidual,
        ),
        (
            "engine-parallel",
            None,
            PruneStrategy::None,
            BoundKind::PerRowResidual,
        ),
        (
            "engine-parallel-pruned",
            None,
            PruneStrategy::Dominated,
            BoundKind::PerRowResidual,
        ),
        (
            "engine-pruned-aggregate",
            None,
            PruneStrategy::Dominated,
            BoundKind::Aggregate,
        ),
    ];
    for (name, parallelism, prune, bound) in configs {
        let opts = engine_opts(parallelism, prune, bound);
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_with(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    space,
                    &opts,
                )
                .expect("engine explores"),
            );
        });
        let last = last.unwrap();
        rows.push(EngineRow {
            name: name.into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: reference_median as f64 / median as f64,
            feasible: last.feasible.len(),
            candidates_seen: last.stats.candidates_seen,
            candidates_pruned: last.stats.candidates_pruned,
            bound_tightness: last.stats.bound_tightness,
        });
    }

    BenchReport {
        space: space_label.into(),
        candidates: space.plans().count(),
        kernels: kernels.len(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        samples,
        engines: rows,
    }
}

/// Runs the full tracked benchmark: the `extended` speedup trajectory
/// plus the `deep` pruning-efficacy report.
pub fn run_all(samples: u32) -> BenchArtifact {
    BenchArtifact {
        benchmark: "rsp/explore".into(),
        reports: vec![
            run(&DesignSpace::extended(), "extended", samples),
            run(&DesignSpace::deep(), "deep", samples),
        ],
    }
}

/// Renders a human-readable summary table of one report.
pub fn render(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "explore benchmark — {} ({} candidates x {} kernels, {} threads, median of {}):",
        report.space, report.candidates, report.kernels, report.threads, report.samples
    );
    for e in &report.engines {
        let _ = writeln!(
            s,
            "  {:<24} {:>10.3} ms   {:>6.2}x   ({} feasible, {}/{} pruned, tightness {:.3})",
            e.name,
            e.median_ns as f64 / 1e6,
            e.speedup_vs_reference,
            e.feasible,
            e.candidates_pruned,
            e.candidates_seen,
            e.bound_tightness
        );
    }
    s
}

/// Renders every report of an artifact.
pub fn render_all(artifact: &BenchArtifact) -> String {
    artifact
        .reports
        .iter()
        .map(render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Outcome of a benchmark-regression check ([`check`]).
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// One status line per compared engine row.
    pub lines: Vec<String>,
    /// Human-readable failures; empty means the gate passes.
    pub regressions: Vec<String>,
}

impl CheckOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// The benchmark-regression gate: re-runs every report of the committed
/// artifact (same spaces, same sample counts) and compares engine rows
/// by name.
///
/// Engine timings are compared **normalized by the same run's
/// `serial-reference` median/min** — the committed artifact's absolute
/// nanoseconds came from whatever host generated it, so comparing raw
/// wall-clock across hosts would gate on host speed, not regressions;
/// the reference is measured in the same process seconds earlier, so
/// systematic host-speed differences cancel in the ratio. A row
/// regresses when its normalized median **and** its normalized best-of-N
/// (minimum) both exceed the committed ratios by more than `tolerance`
/// (e.g. `0.15` = +15 %) — a genuine engine slowdown raises both
/// statistics, while scheduler noise rarely inflates the minimum, so
/// requiring both keeps the gate stable on busy hosts without letting
/// real regressions through. A row also regresses when its
/// feasible-design count drifts (correctness anchor — this is
/// host-independent) or when a committed engine configuration
/// disappears. The `serial-reference` row itself is the yardstick and is
/// checked for feasible-count drift only.
///
/// Normalization cancels host *speed* but not host *core count*: a
/// parallel engine's ratio to the serial reference legitimately depends
/// on how many cores it fanned out over. When the committed report's
/// recorded `threads` differs from this host's, timing is therefore
/// gated only for the rows whose ratio is core-count-independent
/// (`engine-1-thread` and `engine-1-thread-pruned` — the latter keeps
/// the pruning machinery gated cross-host); parallel rows keep their
/// correctness anchors and are reported informationally.
pub fn check(committed: &BenchArtifact, tolerance: f64) -> CheckOutcome {
    let mut outcome = CheckOutcome {
        lines: Vec::new(),
        regressions: Vec::new(),
    };
    for old in &committed.reports {
        let Some(space) = space_for(&old.space) else {
            outcome
                .regressions
                .push(format!("unknown committed space label {:?}", old.space));
            continue;
        };
        let new = run(&space, &old.space, old.samples);
        let reference = |report: &BenchReport| {
            report
                .engines
                .iter()
                .find(|e| e.name == "serial-reference")
                .map(|e| (e.median_ns as f64, e.min_ns as f64))
        };
        let Some(old_ref) = reference(old) else {
            outcome.regressions.push(format!(
                "{}: committed report lacks the serial-reference yardstick",
                old.space
            ));
            continue;
        };
        let new_ref = reference(&new).expect("run() always measures the reference");
        let threads_match = old.threads == new.threads;
        if !threads_match {
            outcome.lines.push(format!(
                "{}: committed threads {} != host threads {} — timing gated for \
                 core-count-independent rows only",
                old.space, old.threads, new.threads
            ));
        }
        for old_row in &old.engines {
            let Some(new_row) = new.engines.iter().find(|e| e.name == old_row.name) else {
                outcome.regressions.push(format!(
                    "{}/{}: engine configuration no longer measured",
                    old.space, old_row.name
                ));
                continue;
            };
            // Reference-normalized timings: fraction of the same run's
            // serial-reference cost.
            let old_med = old_row.median_ns as f64 / old_ref.0;
            let new_med = new_row.median_ns as f64 / new_ref.0;
            let old_min = old_row.min_ns as f64 / old_ref.1;
            let new_min = new_row.min_ns as f64 / new_ref.1;
            let med_ratio = new_med / old_med;
            let min_ratio = new_min / old_min;
            let is_reference = old_row.name == "serial-reference";
            // Parallel rows' ratio to the reference scales with core
            // count; only gate them when the host matches the artifact.
            // Single-threaded rows are core-count-independent and stay
            // gated either way.
            let single_threaded = matches!(
                old_row.name.as_str(),
                "engine-1-thread" | "engine-1-thread-pruned"
            );
            let timing_gated = !is_reference && (threads_match || single_threaded);
            let verdict = if new_row.feasible != old_row.feasible {
                outcome.regressions.push(format!(
                    "{}/{}: feasible count drifted {} -> {}",
                    old.space, old_row.name, old_row.feasible, new_row.feasible
                ));
                "FEASIBLE-DRIFT"
            } else if timing_gated && med_ratio > 1.0 + tolerance && min_ratio > 1.0 + tolerance {
                outcome.regressions.push(format!(
                    "{}/{}: normalized median {:.3}x-ref -> {:.3}x-ref (+{:.0} %) and \
                     normalized min (+{:.0} %) both exceed the {:.0} % tolerance",
                    old.space,
                    old_row.name,
                    old_med,
                    new_med,
                    (med_ratio - 1.0) * 100.0,
                    (min_ratio - 1.0) * 100.0,
                    tolerance * 100.0
                ));
                "REGRESSED"
            } else {
                "ok"
            };
            outcome.lines.push(format!(
                "{}/{}: median {:.3} ms ({:.3}x-ref, committed {:.3}x-ref, {:+.1} %), \
                 min {:+.1} % {}",
                old.space,
                old_row.name,
                new_row.median_ns as f64 / 1e6,
                new_med,
                old_med,
                (med_ratio - 1.0) * 100.0,
                (min_ratio - 1.0) * 100.0,
                verdict
            ));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_engines_agree() {
        let report = run(&DesignSpace::paper(), "paper", 2);
        assert_eq!(report.engines.len(), 6);
        // No-prune engines agree exactly with the reference.
        let feasible_of = |name: &str| {
            report
                .engines
                .iter()
                .find(|e| e.name == name)
                .unwrap()
                .feasible
        };
        assert_eq!(
            feasible_of("serial-reference"),
            feasible_of("engine-1-thread")
        );
        assert_eq!(
            feasible_of("serial-reference"),
            feasible_of("engine-parallel")
        );
        // Pruned engines report their efficacy.
        let pruned_row = report
            .engines
            .iter()
            .find(|e| e.name == "engine-parallel-pruned")
            .unwrap();
        assert_eq!(pruned_row.candidates_seen, report.candidates);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("serial-reference"));
        assert!(json.contains("bound_tightness"));
    }

    #[test]
    fn artifact_roundtrips_through_json() {
        let artifact = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![run(&DesignSpace::paper(), "paper", 1)],
        };
        let json = serde_json::to_string_pretty(&artifact).unwrap();
        let back: BenchArtifact = serde_json::from_str(&json).unwrap();
        assert_eq!(back.benchmark, artifact.benchmark);
        assert_eq!(back.reports.len(), 1);
        assert_eq!(back.reports[0].engines.len(), 6);
        assert_eq!(
            back.reports[0].engines[0].median_ns,
            artifact.reports[0].engines[0].median_ns
        );
    }

    #[test]
    fn check_passes_against_fresh_run_and_fails_on_fabricated_regression() {
        let mut artifact = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![run(&DesignSpace::paper(), "paper", 2)],
        };
        // Generous tolerance: the second run happens moments later on the
        // same host, so a 10x envelope only fails on real breakage.
        let outcome = check(&artifact, 9.0);
        assert!(outcome.passed(), "regressions: {:?}", outcome.regressions);

        // A fabricated 'the committed engines were 1000x faster relative
        // to the reference' artifact must trip the gate (both normalized
        // statistics regress). Scaling every row equally would cancel in
        // the reference-normalized ratios, so only engine rows shrink.
        for row in &mut artifact.reports[0].engines {
            if row.name != "serial-reference" {
                row.median_ns = 1.max(row.median_ns / 1000);
                row.min_ns = 1.max(row.min_ns / 1000);
            }
        }
        let outcome = check(&artifact, 0.15);
        assert!(!outcome.passed());

        // An artifact recorded on a host with a different core count
        // must not timing-gate the parallel rows (their ratio to the
        // serial reference legitimately scales with cores) — even when
        // those committed ratios look 1000x better than this host's.
        let mut cross_host = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![run(&DesignSpace::paper(), "paper", 1)],
        };
        cross_host.reports[0].threads += 7;
        let single_threaded = [
            "serial-reference",
            "engine-1-thread",
            "engine-1-thread-pruned",
        ];
        for row in &mut cross_host.reports[0].engines {
            if !single_threaded.contains(&row.name.as_str()) {
                row.median_ns = 1.max(row.median_ns / 1000);
                row.min_ns = 1.max(row.min_ns / 1000);
            }
        }
        let outcome = check(&cross_host, 9.0);
        assert!(
            outcome.passed(),
            "parallel rows must not be timing-gated across core counts: {:?}",
            outcome.regressions
        );

        // And a feasible-count drift must trip it regardless of timing.
        let mut drifted = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![run(&DesignSpace::paper(), "paper", 1)],
        };
        for row in &mut drifted.reports[0].engines {
            row.median_ns *= 1000;
            row.feasible += 1;
        }
        let outcome = check(&drifted, 9.0);
        assert!(!outcome.passed());
    }
}
