//! Tracked exploration benchmark — the `BENCH_explore.json` trajectory.
//!
//! Rebar-style harness: each engine configuration is timed with a warmup
//! run plus `samples` measured runs, and the *median* wall-clock is
//! reported (robust against scheduler noise). The JSON artifact is
//! committed so future changes can be checked against the recorded
//! trajectory instead of a vibe.
//!
//! Engines measured, all over one workload (a design space × the full
//! kernel suite, uniform weights):
//!
//! * `serial-reference` — [`rsp_core::explore_reference`], the paper-
//!   faithful baseline: clones the base per candidate, re-synthesizes
//!   every report, rebuilds dense demand histograms.
//! * `engine-1-thread` — the allocation-free engine pinned to one thread
//!   (isolates the algorithmic win from parallel speedup).
//! * `engine-parallel` — the engine on all cores, no pruning.
//! * `engine-parallel-pruned` — all cores plus admissible lower-bound and
//!   dominated-candidate pruning (frontier-preserving).

use rsp_arch::presets;
use rsp_core::{
    explore_reference, explore_with, Constraints, DesignSpace, ExploreOptions, Objective,
    PruneStrategy,
};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One engine's timing row.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRow {
    /// Engine configuration name.
    pub name: String,
    /// Median wall-clock per exploration (nanoseconds).
    pub median_ns: u64,
    /// Minimum observed (nanoseconds).
    pub min_ns: u64,
    /// Measured samples (after one warmup).
    pub samples: u32,
    /// Speedup versus the serial reference (reference median / this
    /// median).
    pub speedup_vs_reference: f64,
    /// Feasible designs the run produced (sanity anchor: engines must
    /// agree unless pruning legitimately drops dominated points).
    pub feasible: usize,
    /// Candidates skipped by pruning.
    pub pruned: usize,
}

/// The whole benchmark artifact.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Artifact schema/benchmark id.
    pub benchmark: String,
    /// Design space description.
    pub space: String,
    /// Candidate plans enumerated per exploration.
    pub candidates: usize,
    /// Kernels in the workload.
    pub kernels: usize,
    /// Worker threads available to the parallel engines.
    pub threads: usize,
    /// Measured samples per engine (after one warmup).
    pub samples: u32,
    /// Timing rows, reference first.
    pub engines: Vec<EngineRow>,
}

fn time_median<F: FnMut()>(samples: u32, mut f: F) -> (u64, u64) {
    assert!(samples >= 1, "need at least one sample");
    f(); // warmup
    let mut times: Vec<u64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    (times[times.len() / 2], times[0])
}

/// Runs the exploration benchmark on `space` with `samples` measured
/// repetitions per engine.
pub fn run(space: &DesignSpace, space_label: &str, samples: u32) -> BenchReport {
    let base = presets::base_8x8().base().clone();
    let kernels = suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).expect("suite maps"))
        .collect();
    let weights = vec![1.0; kernels.len()];
    let constraints = Constraints::default();
    let objective = Objective::AreaDelayProduct;

    // Each engine run gets a fresh run-local cache (`cache: None`) so the
    // rows measure full cost, not a warmed memo.
    let engine_opts = |parallelism: Option<usize>, prune: PruneStrategy| ExploreOptions {
        parallelism,
        prune,
        constraints,
        objective,
        cache: None,
    };

    let mut rows: Vec<EngineRow> = Vec::new();

    // Reference baseline.
    let reference_median = {
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_reference(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    space,
                    &constraints,
                    objective,
                )
                .expect("reference explores"),
            );
        });
        let last = last.unwrap();
        rows.push(EngineRow {
            name: "serial-reference".into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: 1.0,
            feasible: last.feasible.len(),
            pruned: 0,
        });
        median
    };

    let configs = [
        ("engine-1-thread", Some(1), PruneStrategy::None),
        ("engine-parallel", None, PruneStrategy::None),
        ("engine-parallel-pruned", None, PruneStrategy::Dominated),
    ];
    for (name, parallelism, prune) in configs {
        let opts = engine_opts(parallelism, prune);
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_with(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    space,
                    &opts,
                )
                .expect("engine explores"),
            );
        });
        let last = last.unwrap();
        rows.push(EngineRow {
            name: name.into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: reference_median as f64 / median as f64,
            feasible: last.feasible.len(),
            pruned: last.pruned,
        });
    }

    BenchReport {
        benchmark: "rsp/explore".into(),
        space: space_label.into(),
        candidates: space.plans().count(),
        kernels: kernels.len(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        samples,
        engines: rows,
    }
}

/// Renders a human-readable summary table.
pub fn render(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "explore benchmark — {} ({} candidates x {} kernels, {} threads, median of {}):",
        report.space, report.candidates, report.kernels, report.threads, report.samples
    );
    for e in &report.engines {
        let _ = writeln!(
            s,
            "  {:<24} {:>10.3} ms   {:>6.2}x   ({} feasible, {} pruned)",
            e.name,
            e.median_ns as f64 / 1e6,
            e.speedup_vs_reference,
            e.feasible,
            e.pruned
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_engines_agree() {
        let report = run(&DesignSpace::paper(), "paper", 2);
        assert_eq!(report.engines.len(), 4);
        let feas: Vec<usize> = report.engines.iter().map(|e| e.feasible).collect();
        // No-prune engines agree exactly with the reference.
        assert_eq!(feas[0], feas[1]);
        assert_eq!(feas[0], feas[2]);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("serial-reference"));
    }
}
