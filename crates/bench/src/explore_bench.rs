//! Tracked exploration benchmark — the `BENCH_explore.json` trajectory.
//!
//! Rebar-style harness: each engine configuration is timed with a warmup
//! run plus `samples` measured runs, and the *median* wall-clock is
//! reported (robust against scheduler noise). The JSON artifact is
//! committed so future changes can be checked against the recorded
//! trajectory instead of a vibe — and CI enforces it: the `headline`
//! binary's `--check` mode ([`check`]) re-runs the benchmark and fails
//! when any engine's median *and* best-of-N wall-clock — both
//! normalized by the same run's `serial-reference` row, so host speed
//! cancels — regress beyond a tolerance versus the committed artifact,
//! or when a feasible-design count drifts (a correctness anchor, not a
//! timing). The artifact schema and the gate logic live in
//! [`crate::gate`], shared with the flow benchmark
//! ([`crate::flow_bench`], `BENCH_flow.json`).
//!
//! The artifact holds one report per design space:
//!
//! * `extended` — the engine-speedup trajectory tracked since the engine
//!   rebuild.
//! * `deep` — the pruning-efficacy benchmark: a 480-candidate space
//!   where the per-row residual bound, area-ordered enumeration, and the
//!   stage-floor clock bound make [`PruneStrategy::Dominated`] skip a
//!   large fraction of candidate estimations (`candidates_pruned` /
//!   `clock_bound_cuts` / `bound_tightness` per row).
//!
//! Engines measured per space, all over the full kernel suite with
//! uniform weights:
//!
//! * `serial-reference` — [`rsp_core::explore_reference`], the paper-
//!   faithful baseline: clones the base per candidate, re-synthesizes
//!   every report, rebuilds dense demand histograms.
//! * `engine-1-thread` — the allocation-free engine pinned to one thread
//!   (isolates the algorithmic win from parallel speedup).
//! * `engine-1-thread-pruned` — one thread plus Dominated pruning with
//!   the per-row bound and the stage-floor clock cut: the
//!   core-count-independent row the cross-host timing gate always
//!   holds, so the pruning machinery itself can never silently regress.
//! * `engine-parallel` — the engine on all cores, no pruning.
//! * `engine-parallel-pruned` — all cores plus lower-bound and
//!   dominated-candidate pruning with the default
//!   [`BoundKind::PerRowResidual`] and [`ClockBound::StageFloor`]
//!   (frontier-preserving).
//! * `engine-pruned-aggregate` — same, with the looser
//!   [`BoundKind::Aggregate`] bound (the ablation that shows what the
//!   per-row residual buys).

pub use crate::gate::{render, render_all, BenchArtifact, BenchReport, CheckOutcome, EngineRow};

use crate::gate::{check_with, time_median};
use rsp_arch::presets;
use rsp_core::{
    explore_reference, explore_with, BoundKind, ClockBound, Constraints, DesignSpace,
    ExploreOptions, Objective, PruneStrategy,
};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use std::hint::black_box;

/// The design space a report label names; checking mode re-runs the
/// committed labels through this.
fn space_for(label: &str) -> Option<DesignSpace> {
    match label {
        "paper" => Some(DesignSpace::paper()),
        "extended" => Some(DesignSpace::extended()),
        "deep" => Some(DesignSpace::deep()),
        _ => None,
    }
}

/// Runs the exploration benchmark on `space` with `samples` measured
/// repetitions per engine.
pub fn run(space: &DesignSpace, space_label: &str, samples: u32) -> BenchReport {
    let base = presets::base_8x8().base().clone();
    let kernels = suite::all();
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).expect("suite maps"))
        .collect();
    let weights = vec![1.0; kernels.len()];
    let constraints = Constraints::default();
    let objective = Objective::AreaDelayProduct;

    // Each engine run gets a fresh run-local cache (`cache: None`) so the
    // rows measure full cost, not a warmed memo.
    let engine_opts = |parallelism: Option<usize>,
                       prune: PruneStrategy,
                       bound: BoundKind,
                       clock_bound: ClockBound| ExploreOptions {
        parallelism,
        prune,
        bound,
        clock_bound,
        constraints,
        objective,
        cache: None,
        control: Default::default(),
    };

    let mut rows: Vec<EngineRow> = Vec::new();

    // Reference baseline.
    let reference_median = {
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_reference(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    space,
                    &constraints,
                    objective,
                )
                .expect("reference explores"),
            );
        });
        let last = last.unwrap();
        rows.push(EngineRow {
            name: "serial-reference".into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: 1.0,
            feasible: last.feasible.len(),
            candidates_seen: last.stats.candidates_seen,
            candidates_pruned: 0,
            bound_tightness: 0.0,
            clock_bound_cuts: 0,
            rearrangements_skipped: 0,
            refill_segments: 0,
            refill_stall_cycles: 0,
        });
        median
    };

    let configs = [
        (
            "engine-1-thread",
            Some(1),
            PruneStrategy::None,
            BoundKind::PerRowResidual,
            ClockBound::Off,
        ),
        // Single-threaded pruned row: its ratio to the serial reference
        // is core-count-independent, so the cross-host timing gate can
        // always hold it — the row that keeps the pruning machinery
        // (bound computation, clock floor, area ordering, streaming
        // frontier) from silently rotting even when the artifact and
        // the CI runner disagree on core count.
        (
            "engine-1-thread-pruned",
            Some(1),
            PruneStrategy::Dominated,
            BoundKind::PerRowResidual,
            ClockBound::StageFloor,
        ),
        (
            "engine-parallel",
            None,
            PruneStrategy::None,
            BoundKind::PerRowResidual,
            ClockBound::Off,
        ),
        (
            "engine-parallel-pruned",
            None,
            PruneStrategy::Dominated,
            BoundKind::PerRowResidual,
            ClockBound::StageFloor,
        ),
        (
            "engine-pruned-aggregate",
            None,
            PruneStrategy::Dominated,
            BoundKind::Aggregate,
            ClockBound::StageFloor,
        ),
    ];
    for (name, parallelism, prune, bound, clock_bound) in configs {
        let opts = engine_opts(parallelism, prune, bound, clock_bound);
        let mut last = None;
        let (median, min) = time_median(samples, || {
            last = Some(
                explore_with(
                    black_box(&base),
                    &kernels,
                    &contexts,
                    &weights,
                    space,
                    &opts,
                )
                .expect("engine explores"),
            );
        });
        let last = last.unwrap();
        rows.push(EngineRow {
            name: name.into(),
            median_ns: median,
            min_ns: min,
            samples,
            speedup_vs_reference: reference_median as f64 / median as f64,
            feasible: last.feasible.len(),
            candidates_seen: last.stats.candidates_seen,
            candidates_pruned: last.stats.candidates_pruned,
            bound_tightness: last.stats.bound_tightness,
            clock_bound_cuts: last.stats.clock_bound_cuts,
            rearrangements_skipped: 0,
            refill_segments: 0,
            refill_stall_cycles: 0,
        });
    }

    BenchReport {
        space: space_label.into(),
        candidates: space.plans().count(),
        kernels: kernels.len(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        samples,
        selected_pe_count: 0, // exploration is pinned to the 8×8 base
        engines: rows,
    }
}

/// Runs the full tracked benchmark: the `extended` speedup trajectory
/// plus the `deep` pruning-efficacy report.
pub fn run_all(samples: u32) -> BenchArtifact {
    BenchArtifact {
        benchmark: "rsp/explore".into(),
        reports: vec![
            run(&DesignSpace::extended(), "extended", samples),
            run(&DesignSpace::deep(), "deep", samples),
        ],
    }
}

/// The exploration benchmark-regression gate: re-runs every report of
/// the committed artifact (same spaces, same sample counts) through
/// [`crate::gate::check_with`] — see there for the median-AND-best-of-N
/// normalized comparison rule and the cross-host core-count handling.
pub fn check(committed: &BenchArtifact, tolerance: f64) -> CheckOutcome {
    check_with(committed, tolerance, |old| {
        space_for(&old.space).map(|space| run(&space, &old.space, old.samples))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_engines_agree() {
        let report = run(&DesignSpace::paper(), "paper", 2);
        assert_eq!(report.engines.len(), 6);
        // No-prune engines agree exactly with the reference.
        let feasible_of = |name: &str| {
            report
                .engines
                .iter()
                .find(|e| e.name == name)
                .unwrap()
                .feasible
        };
        assert_eq!(
            feasible_of("serial-reference"),
            feasible_of("engine-1-thread")
        );
        assert_eq!(
            feasible_of("serial-reference"),
            feasible_of("engine-parallel")
        );
        // Pruned engines report their efficacy.
        let pruned_row = report
            .engines
            .iter()
            .find(|e| e.name == "engine-parallel-pruned")
            .unwrap();
        assert_eq!(pruned_row.candidates_seen, report.candidates);
        assert!(pruned_row.clock_bound_cuts <= pruned_row.candidates_pruned);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("serial-reference"));
        assert!(json.contains("bound_tightness"));
        assert!(json.contains("clock_bound_cuts"));
    }

    #[test]
    fn artifact_roundtrips_through_json() {
        let artifact = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![run(&DesignSpace::paper(), "paper", 1)],
        };
        let json = serde_json::to_string_pretty(&artifact).unwrap();
        let back: BenchArtifact = serde_json::from_str(&json).unwrap();
        assert_eq!(back.benchmark, artifact.benchmark);
        assert_eq!(back.reports.len(), 1);
        assert_eq!(back.reports[0].engines.len(), 6);
        assert_eq!(
            back.reports[0].engines[0].median_ns,
            artifact.reports[0].engines[0].median_ns
        );
    }

    #[test]
    fn check_passes_against_fresh_run_and_fails_on_fabricated_regression() {
        let mut artifact = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![run(&DesignSpace::paper(), "paper", 2)],
        };
        // Generous tolerance: the second run happens moments later on the
        // same host, so a 10x envelope only fails on real breakage.
        let outcome = check(&artifact, 9.0);
        assert!(outcome.passed(), "regressions: {:?}", outcome.regressions);
        // The fresh rerun rides along for --emit.
        assert_eq!(outcome.fresh.benchmark, "rsp/explore");
        assert_eq!(outcome.fresh.reports.len(), 1);

        // A fabricated 'the committed engines were 1000x faster relative
        // to the reference' artifact must trip the gate (both normalized
        // statistics regress). Scaling every row equally would cancel in
        // the reference-normalized ratios, so only engine rows shrink.
        for row in &mut artifact.reports[0].engines {
            if row.name != "serial-reference" {
                row.median_ns = 1.max(row.median_ns / 1000);
                row.min_ns = 1.max(row.min_ns / 1000);
            }
        }
        let outcome = check(&artifact, 0.15);
        assert!(!outcome.passed());

        // An artifact recorded on a host with a different core count
        // must not timing-gate the parallel rows (their ratio to the
        // serial reference legitimately scales with cores) — even when
        // those committed ratios look 1000x better than this host's.
        let mut cross_host = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![run(&DesignSpace::paper(), "paper", 1)],
        };
        cross_host.reports[0].threads += 7;
        let single_threaded = [
            "serial-reference",
            "engine-1-thread",
            "engine-1-thread-pruned",
        ];
        for row in &mut cross_host.reports[0].engines {
            if !single_threaded.contains(&row.name.as_str()) {
                row.median_ns = 1.max(row.median_ns / 1000);
                row.min_ns = 1.max(row.min_ns / 1000);
            }
        }
        let outcome = check(&cross_host, 9.0);
        assert!(
            outcome.passed(),
            "parallel rows must not be timing-gated across core counts: {:?}",
            outcome.regressions
        );

        // And a feasible-count drift must trip it regardless of timing.
        let mut drifted = BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![run(&DesignSpace::paper(), "paper", 1)],
        };
        for row in &mut drifted.reports[0].engines {
            row.median_ns *= 1000;
            row.feasible += 1;
        }
        let outcome = check(&drifted, 9.0);
        assert!(!outcome.passed());
    }
}
