//! # rsp-bench — regenerators for every table and figure of the paper
//!
//! Each `table*`/`figure*` function reproduces one exhibit of the paper
//! from the library's models and prints our measurement next to the
//! published value. One dispatching binary wraps them (`cargo run -p
//! rsp-bench --bin exhibit -- table2`; `exhibit -- all` prints
//! everything, the source of `EXPERIMENTS.md`'s measured columns).
//!
//! The crate also owns the tracked benchmark **registry**
//! ([`registry`]): every tracked benchmark is one declarative
//! [`registry::BenchDef`] (id, workload, space, engines, anchors,
//! report labels) paired with a per-kind measurement adapter
//! ([`adapters`]); the `headline` binary is the one generic runner —
//! `--list` the definitions, `--run <id-glob>` a subset, `--cmp` two
//! artifacts rebar-style ([`cmp`]), and `--check`/`--check-all` the CI
//! benchmark-regression gate ([`gate`]): every committed report is
//! re-run and fails when an engine's reference-normalized median *and*
//! best-of-N wall-clock both regress beyond the tolerance, when a
//! correctness anchor drifts, or when a committed engine configuration
//! disappears (full rules in `crates/bench/METHODOLOGY.md`). The rows
//! also track pruning efficacy (`candidates_pruned`,
//! `bound_tightness`) so the exploration engine's pruning can never
//! silently rot.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapters;
pub mod cmp;
pub mod gate;
pub mod registry;

use rsp_arch::{presets, OpKind, RspArchitecture};
use rsp_core::{estimate_stalls, rearrange, run_flow, AppProfile, FlowConfig, KernelPerf};
use rsp_kernel::{suite, Kernel, MappingStyle};
use rsp_mapper::{map, ConfigContext, MapOptions};
use rsp_synth::{paper, AreaModel, ComponentLibrary, DelayModel};
use std::fmt::Write as _;

/// Maps a kernel onto the paper's 8×8 base architecture.
///
/// # Panics
///
/// Panics if mapping fails (cannot happen for the built-in suite).
pub fn context_for(kernel: &Kernel) -> ConfigContext {
    map(presets::base_8x8().base(), kernel, &MapOptions::default())
        .expect("suite kernels map onto the 8x8 base")
}

/// Exact performance rows (ours) for one kernel across the nine
/// architectures of Tables 4/5.
///
/// # Panics
///
/// Panics if rearrangement fails (cannot happen for the built-in suite).
pub fn perf_rows(kernel: &Kernel) -> Vec<KernelPerf> {
    let ctx = context_for(kernel);
    let delay = DelayModel::new();
    presets::table_architectures()
        .iter()
        .map(|arch| {
            rsp_core::evaluate_perf(&ctx, arch, &delay, &Default::default())
                .expect("suite kernels rearrange on table architectures")
        })
        .collect()
}

/// Table 1 — synthesis result of a PE: our component library (and the
/// width-parametric estimator at 16 bit) against the paper.
pub fn table1() -> String {
    let lib = ComponentLibrary::table1();
    let est = ComponentLibrary::for_width(16);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 1: synthesis result of a PE (16-bit, Virtex-II slices)"
    );
    let _ = writeln!(
        s,
        "{:<18} {:>8} {:>8} {:>10} {:>10} {:>12}",
        "component", "slices", "ratio%", "delay(ns)", "ratio%", "estimator"
    );
    for row in &paper::TABLE1 {
        let (slices, delay, est_a) = match row.component {
            "PE" => (
                lib.pe_area(rsp_arch::FuKind::ALL),
                DelayModel::new()
                    .pe_internal_path(&rsp_arch::PeDesign::full(), &rsp_arch::SharingPlan::none()),
                est.pe_area(rsp_arch::FuKind::ALL),
            ),
            name => {
                let fu = match name {
                    "Multiplexer" => rsp_arch::FuKind::Mux,
                    "ALU" => rsp_arch::FuKind::Alu,
                    "Array multiplier" => rsp_arch::FuKind::Multiplier,
                    "Shift logic" => rsp_arch::FuKind::Shifter,
                    other => unreachable!("unknown component {other}"),
                };
                (
                    lib.spec(fu).area_slices,
                    lib.spec(fu).delay_ns,
                    est.spec(fu).area_slices,
                )
            }
        };
        let _ = writeln!(
            s,
            "{:<18} {:>8.0} {:>8.2} {:>10.1} {:>10.2} {:>12.1}",
            row.component,
            slices,
            100.0 * slices / 910.0,
            delay,
            100.0 * delay / 25.6,
            est_a,
        );
    }
    let _ = writeln!(
        s,
        "(paper values identical by construction: the library is Table 1)"
    );
    s
}

/// Table 2 — synthesis result of the nine architectures: ours vs paper.
pub fn table2() -> String {
    let area = AreaModel::new();
    let delay = DelayModel::new();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 2: synthesis result of the nine architectures (8x8)"
    );
    let _ = writeln!(
        s,
        "{:<6} {:>10} {:>10} {:>7} {:>8} {:>8} {:>7} | {:>9} {:>9}",
        "arch", "slices", "paper", "err%", "clk(ns)", "paper", "err%", "areaR%", "delayR%"
    );
    for (arch, p) in presets::table_architectures().iter().zip(&paper::TABLE2) {
        let a = area.report(arch);
        let d = delay.report(arch);
        let _ = writeln!(
            s,
            "{:<6} {:>10.0} {:>10.0} {:>6.1}% {:>8.2} {:>8.2} {:>6.1}% | {:>8.1}% {:>8.1}%",
            arch.name(),
            a.synthesized_slices,
            p.array_slices,
            100.0 * (a.synthesized_slices - p.array_slices) / p.array_slices,
            d.clock_ns,
            p.array_delay_ns,
            100.0 * (d.clock_ns - p.array_delay_ns) / p.array_delay_ns,
            a.reduction_pct(),
            d.reduction_pct(),
        );
    }
    let _ = writeln!(
        s,
        "headline: paper area -42.8% (RS#1), delay -34.69% (RSP#1 vs 25.6ns PE)"
    );
    s
}

/// Table 3 — kernels in the experiments: operation sets and peak
/// multiplications per cycle, ours vs paper.
pub fn table3() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 3: kernels in the experiments");
    let _ = writeln!(
        s,
        "{:<14} {:<28} {:>8} {:>8} {:>10} {:>6}",
        "kernel", "operation set (ours)", "MultNo", "paper", "style", "iters"
    );
    for (k, p) in suite::all().iter().zip(&paper::TABLE3) {
        let ctx = context_for(k);
        let ops: Vec<String> = k.op_set().iter().map(|o| o.to_string()).collect();
        let style = match k.style() {
            MappingStyle::Lockstep => "lockstep",
            MappingStyle::Dataflow => "dataflow",
        };
        let _ = writeln!(
            s,
            "{:<14} {:<28} {:>8} {:>8} {:>10} {:>6}",
            k.name(),
            ops.join(", "),
            ctx.mult_profile().max_per_cycle,
            p.max_mults_per_cycle,
            style,
            k.iterations(),
        );
    }
    s
}

fn perf_table(title: &str, kernels: &[Kernel], paper_rows: &[paper::KernelPerf]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    for (k, pk) in kernels.iter().zip(paper_rows) {
        let _ = writeln!(s, "\n  {} ({} iterations)", k.name(), k.iterations());
        let _ = writeln!(
            s,
            "  {:<6} {:>7} {:>9} {:>8} {:>6} | {:>7} {:>9} {:>8} {:>6}",
            "arch", "cycles", "ET(ns)", "DR%", "stall", "paper", "ET(ns)", "DR%", "stall"
        );
        let base_paper_et = pk.cells[0].et_ns;
        for (row, cell) in perf_rows(k).iter().zip(&pk.cells) {
            let paper_dr = 100.0 * (1.0 - cell.et_ns / base_paper_et);
            let paper_stall = if cell.stalls == paper::STALLS_NOT_APPLICABLE {
                "-".to_string()
            } else {
                cell.stalls.to_string()
            };
            let _ = writeln!(
                s,
                "  {:<6} {:>7} {:>9.1} {:>7.1}% {:>6} | {:>7} {:>9.1} {:>7.1}% {:>6}",
                row.arch,
                row.cycles,
                row.et_ns,
                row.dr_pct,
                row.rs_stalls,
                cell.cycles,
                cell.et_ns,
                paper_dr,
                paper_stall,
            );
        }
    }
    s
}

/// Table 4 — Livermore kernels across the nine architectures.
pub fn table4() -> String {
    perf_table(
        "Table 4: performance of the Livermore kernels (ours | paper)",
        &suite::livermore(),
        &paper::TABLE4,
    )
}

/// Table 5 — DSP kernels across the nine architectures.
pub fn table5() -> String {
    perf_table(
        "Table 5: performance of 2D-FDCT, SAD, MVM, FFT (ours | paper)",
        &suite::dsp(),
        &paper::TABLE5,
    )
}

/// Figure 1 — the 4×4 illustration array and its bus structure.
pub fn figure1() -> String {
    let arch = presets::fig1_4x4();
    let mut s = String::new();
    let _ = writeln!(s, "Figure 1: 4x4 reconfigurable array");
    let _ = writeln!(s, "  geometry: {}", arch.geometry());
    let _ = writeln!(s, "  buses:    {}", arch.base().buses());
    let _ = writeln!(
        s,
        "  config cache: {} contexts per PE (loop pipelining, not SIMD)",
        arch.base().config_cache_depth()
    );
    for row in 0..4 {
        let pes: Vec<String> = (0..4).map(|c| format!("PE[{row},{c}]")).collect();
        let _ = writeln!(s, "  {}  <= 2 read / 1 write bus", pes.join(" "));
    }
    s
}

/// Figure 2 — loop-pipelined schedule of the order-4 matrix multiplication
/// on the 4×4 base array.
pub fn figure2() -> String {
    let kernel = suite::matmul(4);
    let ctx = map(presets::fig1_4x4().base(), &kernel, &MapOptions::default())
        .expect("matmul(4) maps on the 4x4 array");
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 2: loop pipelining of a matrix multiplication of order 4"
    );
    let _ = writeln!(
        s,
        "(one lane per column; all 4 PEs of a column run the same op; Ld fetches both operands)"
    );
    s.push_str(&ctx.render_schedule(ctx.cycles(), |i| i.op.mnemonic().to_string()));
    let profile = ctx.mult_profile();
    let _ = writeln!(
        s,
        "peak: {} simultaneous multiplications = {} per row x 4 rows -> 8 multipliers for stall-free sharing (Fig. 3)",
        profile.max_per_cycle, profile.max_per_row_cycle
    );
    s
}

/// Figure 3/4 — multiplier sharing topology and bus-switch connections.
pub fn figure3() -> String {
    let arch = presets::shared_multiplier("Fig3", 4, 4, 2, 0, 1);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 3: 8 multipliers shared among 16 PEs (two per row)"
    );
    for res in arch.shared_resources() {
        let reach: Vec<String> = arch
            .geometry()
            .iter()
            .filter(|pe| res.reaches(*pe))
            .map(|pe| pe.to_string())
            .collect();
        let _ = writeln!(s, "  {res} <- {}", reach.join(", "));
    }
    let _ = writeln!(
        s,
        "Figure 4: each PE's bus switch routes 2x16-bit operands out and a 32-bit product back;"
    );
    let _ = writeln!(
        s,
        "  switch fan-in = shr + shc = {} alternatives, selected by the configuration cache",
        arch.plan().switch_fan_in()
    );
    s
}

/// Figure 5 — critical-path comparison between a general and a pipelined
/// PE.
pub fn figure5() -> String {
    let delay = DelayModel::new();
    let base = presets::base_8x8();
    let rp = presets::rp_only(2);
    let b = delay.report(&base);
    let p = delay.report(&rp);
    let mut s = String::new();
    let _ = writeln!(s, "Figure 5: general vs pipelined PE critical path");
    let _ = writeln!(
        s,
        "  general PE : mux 1.3 + multiplier 19.7 (+2.1 result) + shift 2.5 = {:.1} ns -> {:.1} ns clock",
        b.pe_path_ns, b.clock_ns
    );
    let _ = writeln!(
        s,
        "  pipelined  : register splits the multiplier; ALU path dominates: {:.1} ns -> {:.1} ns clock",
        p.pe_path_ns, p.clock_ns
    );
    let _ = writeln!(
        s,
        "  multiplication becomes a two-cycle operation; one-cycle ops finish early (loop pipelining tolerates mixed latency)"
    );
    s
}

/// Figure 6 — the matrix multiplication rearranged for a 2-stage pipelined
/// shared multiplier (one per row): four multipliers replace eight.
pub fn figure6() -> String {
    let kernel = suite::matmul(4);
    let ctx = map(presets::fig1_4x4().base(), &kernel, &MapOptions::default())
        .expect("matmul(4) maps on the 4x4 array");
    let arch = presets::shared_multiplier("RSP-4x4", 4, 4, 1, 0, 2);
    let r = rearrange(&ctx, &arch, &Default::default()).expect("rearrangement succeeds");

    // Stage-aware rendering: a multiplication shows 1* at its issue cycle
    // and 2* in the following cycle (as printed in the paper's Fig. 6).
    let total = r.cycles.iter().map(|&c| c + 2).max().unwrap_or(0) as usize;
    let mut grid: Vec<Vec<String>> = vec![vec![String::new(); total]; 4];
    for inst in ctx.instances() {
        if inst.pe.row != 0 {
            continue; // lockstep: row 0 represents its column
        }
        let t = r.cycles[inst.id.index()] as usize;
        let col = inst.pe.col;
        if inst.op == OpKind::Mult {
            grid[col][t].push_str("1*");
            grid[col][t + 1].push_str("2*");
        } else {
            grid[col][t].push_str(inst.op.mnemonic());
        }
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 6: matrix multiplication with the multiplier pipelined (2 stages)"
    );
    let _ = writeln!(s, "  {} shared multipliers (one per row) suffice:", 4);
    let _ = write!(s, "{:>10} |", "cycle");
    for t in 1..=total {
        let _ = write!(s, " {t:>4} |");
    }
    s.push('\n');
    for (c, lane) in grid.iter().enumerate() {
        let _ = write!(s, "{:>10} |", format!("col#{}", c + 1));
        for cell in lane {
            let _ = write!(s, " {cell:>4} |");
        }
        s.push('\n');
    }
    let _ = writeln!(
        s,
        "RS stalls: {}, RP overhead: {} (total {} vs base {})",
        r.rs_stalls, r.rp_overhead, r.total_cycles, r.base_cycles
    );
    let _ = writeln!(
        s,
        "steady state is stall-free: the stretched initiation interval (4) makes every column\nissue its multiplication in a distinct cycle, so one 2-stage multiplier per row holds two\nmultiplications in flight (the paper's Fig. 6 window); the residual stalls above come from\nthe C-scaling tail of eq. (1) colliding with the last column's body, which the paper's\nfigure does not show"
    );
    let _ = writeln!(
        s,
        "paper: Fig. 2 needs 8 multipliers; with 2-stage pipelining 4 suffice because two\nmultiplications share one multiplier in different stages"
    );
    s
}

/// Figure 7 — the design space exploration flow, executed end to end on a
/// demonstration domain (H.263-like: FDCT + SAD + MVM).
pub fn figure7() -> String {
    let apps = vec![
        AppProfile::new(
            "H.263 encoder",
            vec![(suite::fdct(), 99), (suite::sad(), 396), (suite::mvm(), 50)],
        ),
        AppProfile::new("FFT filterbank", vec![(suite::fft_mult_loop(), 128)]),
    ];
    let report = run_flow(&apps, &FlowConfig::default()).expect("flow runs");
    let mut s = String::new();
    let _ = writeln!(s, "Figure 7: design space exploration flow (executed)");
    let _ = writeln!(s, "  [profiling] critical loops by weight:");
    for c in &report.critical_loops {
        let _ = writeln!(
            s,
            "    {:<14} weight {:.1}%",
            c.kernel.name(),
            100.0 * c.weight
        );
    }
    let _ = writeln!(
        s,
        "  [base architecture] {} ({} PEs, cache {})",
        report.base.geometry(),
        report.base.geometry().pe_count(),
        report.base.config_cache_depth()
    );
    let _ = writeln!(s, "  [pipeline mapping] initial contexts:");
    for (c, ctx) in report.critical_loops.iter().zip(&report.contexts) {
        let _ = writeln!(
            s,
            "    {:<14} {} cycles ({} instances)",
            c.kernel.name(),
            ctx.total_cycles(),
            ctx.instances().len()
        );
    }
    let _ = writeln!(
        s,
        "  [RSP exploration] {} feasible, Pareto frontier:",
        report.exploration.feasible.len()
    );
    for p in report.exploration.pareto_points() {
        let _ = writeln!(
            s,
            "    {:<22} area {:>8.0} slices, est. weighted ET {:>9.1} ns",
            p.arch.name(),
            p.area_slices,
            p.est_et_ns
        );
    }
    let _ = writeln!(s, "  [RSP mapping] chosen: {}", report.chosen.name());
    for p in &report.perf {
        let _ = writeln!(
            s,
            "    {:<14} {} cycles, {:>8.1} ns, DR {:>6.1}%, stalls {}",
            p.kernel, p.cycles, p.et_ns, p.dr_pct, p.rs_stalls
        );
    }
    let _ = writeln!(
        s,
        "  area {:.0} vs base {:.0} slices ({:.1}% smaller), weighted ET {:.1} vs {:.1} ns",
        report.area_slices,
        report.base_area_slices,
        100.0 * (1.0 - report.area_slices / report.base_area_slices),
        report.weighted_et_ns(),
        report.weighted_base_et_ns()
    );
    s
}

/// Figure 8 — the four RS/RSP sharing configurations.
pub fn figure8() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 8: four designs of RS/RSP architectures (8x8 array)"
    );
    for k in 1..=4 {
        let rs = presets::rs(k);
        let g = rs.plan().groups()[0];
        let _ = writeln!(
            s,
            "  #{k}: shr={} shc={} -> {} multipliers, switch fan-in {} (RS combinational, RSP 2-stage)",
            g.per_row(),
            g.per_col(),
            rs.shared_resources().len(),
            rs.plan().switch_fan_in(),
        );
    }
    s
}

/// Headline summary — the abstract's three claims, ours vs paper.
pub fn headline() -> String {
    let area = AreaModel::new();
    let delay = DelayModel::new();
    let best_area = (1..=4)
        .map(|k| area.report(&presets::rs(k)).reduction_pct())
        .fold(f64::MIN, f64::max);
    let best_delay = (1..=4)
        .map(|k| delay.report(&presets::rsp(k)).reduction_pct())
        .fold(f64::MIN, f64::max);
    let best_perf = perf_rows(&suite::sad())
        .iter()
        .map(|p| p.dr_pct)
        .fold(f64::MIN, f64::max);
    let mut s = String::new();
    let _ = writeln!(s, "Headline claims (ours vs paper):");
    let _ = writeln!(
        s,
        "  max area reduction   : {best_area:>6.1}%  vs {:>6.1}% (RS#1)",
        paper::HEADLINE_AREA_REDUCTION_PCT
    );
    let _ = writeln!(
        s,
        "  max delay reduction  : {best_delay:>6.1}%  vs {:>6.1}% (RSP#1; paper quotes vs the 25.6ns PE)",
        paper::HEADLINE_DELAY_REDUCTION_PCT
    );
    let _ = writeln!(
        s,
        "  max perf improvement : {best_perf:>6.1}%  vs {:>6.1}% (SAD on RSP#1)",
        paper::HEADLINE_PERF_IMPROVEMENT_PCT
    );
    s
}

/// Every exhibit in paper order (the `all` binary).
pub fn all_exhibits() -> String {
    [
        table1(),
        table2(),
        table3(),
        table4(),
        table5(),
        figure1(),
        figure2(),
        figure3(),
        figure5(),
        figure6(),
        figure7(),
        figure8(),
        headline(),
    ]
    .join("\n")
}

/// Estimation-vs-exact comparison across the suite (exhibits the
/// slack-aware admissible estimator — estimate ≤ exact, column-wise;
/// used by the `estimator` binary and ablations).
pub fn estimator_report() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Estimator (admissible DSE bound) vs exact rearrangement:"
    );
    let _ = writeln!(
        s,
        "{:<14} {:<7} {:>10} {:>8}",
        "kernel", "arch", "estimate", "exact"
    );
    for k in suite::all() {
        let ctx = context_for(&k);
        for arch in presets::table_architectures() {
            let est = estimate_stalls(&ctx, &k, &arch);
            let exact = rearrange(&ctx, &arch, &Default::default()).expect("rearranges");
            let _ = writeln!(
                s,
                "{:<14} {:<7} {:>10} {:>8}",
                k.name(),
                arch.name(),
                est.total_cycles,
                exact.total_cycles
            );
        }
    }
    s
}

/// All nine table architectures (re-export convenience for benches).
pub fn table_architectures() -> Vec<RspArchitecture> {
    presets::table_architectures()
}

/// Extension exhibit: energy per kernel across representative
/// architectures (the paper's §6 future-work conjecture, quantified by
/// `rsp-synth`'s activity-based model).
pub fn power() -> String {
    use rsp_core::{evaluate_energy, rearrange as re};
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Energy model (extension; synthetic coefficients, see rsp_synth::power):"
    );
    let _ = writeln!(
        s,
        "{:<14} {:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "kernel", "arch", "dyn(pJ)", "xfer(pJ)", "cfg(pJ)", "leak(pJ)", "total(pJ)", "vs base"
    );
    for k in suite::all() {
        let ctx = context_for(&k);
        let mut base_total = 0.0;
        for arch in [
            presets::base_8x8(),
            presets::rs1(),
            presets::rs2(),
            presets::rsp1(),
            presets::rsp2(),
        ] {
            let r = re(&ctx, &arch, &Default::default()).expect("rearranges");
            let e = evaluate_energy(&ctx, &arch, &r);
            if arch.is_base() {
                base_total = e.total_pj();
            }
            let _ = writeln!(
                s,
                "{:<14} {:<6} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>7.1}%",
                k.name(),
                arch.name(),
                e.dynamic_pj,
                e.transfer_pj,
                e.config_pj,
                e.static_pj,
                e.total_pj(),
                100.0 * (1.0 - e.total_pj() / base_total),
            );
        }
    }
    s
}

/// Extension exhibit: ablation sweeps over the template parameters the
/// paper's design space exposes (pipeline depth, array size, bus count,
/// RS/RP/RSP decomposition, mapping style).
pub fn ablation() -> String {
    use rsp_core::rearrange as re;
    let area = AreaModel::new();
    let delay = DelayModel::new();
    let mut s = String::new();

    // --- pipeline depth sweep (shr=2, shc=0) ----------------------------
    let _ = writeln!(s, "Ablation 1: pipeline depth at shr=2 (kernel: 2D-FDCT)");
    let _ = writeln!(
        s,
        "{:>7} {:>10} {:>9} {:>8} {:>8} {:>8} {:>10}",
        "stages", "slices", "clk(ns)", "cycles", "rp", "stalls", "ET(ns)"
    );
    let fdct = suite::fdct();
    let ctx = context_for(&fdct);
    for stages in 1..=4u8 {
        let arch = presets::shared_multiplier(format!("st{stages}"), 8, 8, 2, 0, stages);
        let a = area.report(&arch);
        let d = delay.report(&arch);
        let r = re(&ctx, &arch, &Default::default()).expect("rearranges");
        let _ = writeln!(
            s,
            "{:>7} {:>10.0} {:>9.2} {:>8} {:>8} {:>8} {:>10.1}",
            stages,
            a.synthesized_slices,
            d.clock_ns,
            r.total_cycles,
            r.rp_overhead,
            r.rs_stalls,
            r.total_cycles as f64 * d.clock_ns
        );
    }
    let _ = writeln!(
        s,
        "-> stage 2 captures nearly all the clock gain; deeper pipelines add latency for little"
    );

    // --- array size sweep ------------------------------------------------
    let _ = writeln!(
        s,
        "\nAblation 2: array size at RSP(shr=2, st=2) (kernel: SAD)"
    );
    let _ = writeln!(
        s,
        "{:>7} {:>10} {:>10} {:>9} {:>8} {:>10}",
        "array", "slices", "base", "areaR%", "cycles", "ET(ns)"
    );
    for n in [4usize, 8, 12, 16] {
        let arch = presets::shared_multiplier(format!("{n}x{n}"), n, n, 2, 0, 2);
        let sad = suite::sad();
        let Ok(ctx) = map(arch.base(), &sad, &MapOptions::default()) else {
            continue;
        };
        let a = area.report(&arch);
        let d = delay.report(&arch);
        let r = re(&ctx, &arch, &Default::default()).expect("rearranges");
        let _ = writeln!(
            s,
            "{:>7} {:>10.0} {:>10.0} {:>8.1}% {:>8} {:>10.1}",
            format!("{n}x{n}"),
            a.synthesized_slices,
            a.base_synthesized_slices,
            a.reduction_pct(),
            r.total_cycles,
            r.total_cycles as f64 * d.clock_ns
        );
    }
    let _ = writeln!(
        s,
        "-> the area saving ratio is geometry-independent; bigger arrays finish SAD faster"
    );

    // --- RS vs RP vs RSP decomposition ----------------------------------
    let _ = writeln!(s, "\nAblation 3: RS-only vs RP-only vs RSP at config #2");
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>9} {:>22}",
        "variant", "slices", "clk(ns)", "SAD ET(ns) / FDCT ET(ns)"
    );
    let sad = suite::sad();
    let sad_ctx = context_for(&sad);
    for (name, arch) in [
        ("base", presets::base_8x8()),
        ("RS-only", presets::rs2()),
        ("RP-only", presets::rp_only(2)),
        ("RSP", presets::rsp2()),
    ] {
        let a = area.report(&arch);
        let d = delay.report(&arch);
        let rs = re(&sad_ctx, &arch, &Default::default()).expect("rearranges");
        let rf = re(&ctx, &arch, &Default::default()).expect("rearranges");
        let _ = writeln!(
            s,
            "{:<10} {:>10.0} {:>9.2} {:>10.1} / {:>9.1}",
            name,
            a.synthesized_slices,
            d.clock_ns,
            rs.total_cycles as f64 * d.clock_ns,
            rf.total_cycles as f64 * d.clock_ns,
        );
    }
    let _ = writeln!(
        s,
        "-> RP alone wins time but grows area; RS alone wins area but loses time; RSP wins both"
    );

    // --- read-bus sensitivity --------------------------------------------
    let _ = writeln!(
        s,
        "\nAblation 4: read buses per row (kernel: 2D-FDCT, base arch)"
    );
    let _ = writeln!(s, "{:>6} {:>6} {:>8}", "buses", "II", "cycles");
    for buses in 1..=4usize {
        let base = rsp_arch::BaseArchitecture::new(
            rsp_arch::ArrayGeometry::new(8, 8),
            rsp_arch::PeDesign::full(),
            rsp_arch::BusSpec::new(buses, 1),
            512,
        );
        match map(&base, &fdct, &MapOptions::default()) {
            Ok(c) => {
                let _ = writeln!(
                    s,
                    "{:>6} {:>6} {:>8}",
                    buses,
                    c.initiation_interval(),
                    c.total_cycles()
                );
            }
            Err(e) => {
                let _ = writeln!(s, "{buses:>6}      infeasible: {e}");
            }
        }
    }
    let _ = writeln!(
        s,
        "-> memory bandwidth, not PE count, limits the dense kernels (ref. [7]'s motivation)"
    );

    // --- mapping style ----------------------------------------------------
    let _ = writeln!(
        s,
        "\nAblation 5: lockstep vs dataflow mapping (base cycles)"
    );
    let _ = writeln!(s, "{:<14} {:>9} {:>9}", "kernel", "lockstep", "dataflow");
    for k in [suite::hydro(), suite::iccg(), suite::fft_mult_loop()] {
        let mut row = vec![k.name().to_string()];
        for style in [MappingStyle::Lockstep, MappingStyle::Dataflow] {
            let c = map(
                presets::base_8x8().base(),
                &k,
                &MapOptions {
                    style: Some(style),
                    ..MapOptions::default()
                },
            );
            row.push(match c {
                Ok(c) => c.total_cycles().to_string(),
                Err(_) => "-".to_string(),
            });
        }
        let _ = writeln!(s, "{:<14} {:>9} {:>9}", row[0], row[1], row[2]);
    }
    let _ = writeln!(
        s,
        "-> small bodies fit either style; the suite's defaults follow the paper's stall classes"
    );
    s
}

/// Extension exhibit: functional-resource utilization — quantifies the
/// paper's §2 motivation ("critical functional resources may have low
/// utilization while occupying large area") and §5.3's "shared resources
/// of RSP architectures are more utilized".
pub fn utilization() -> String {
    use rsp_arch::FuKind;
    use rsp_core::{rearrange as re, utilization_of};
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Multiplier utilization (busy unit-cycles / unit-cycles):"
    );
    let _ = writeln!(
        s,
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "Base(64u)", "RS#1(8u)", "RS#2(16u)", "RSP#2(16u)"
    );
    for k in suite::all() {
        if k.total_mults() == 0 {
            continue;
        }
        let ctx = context_for(&k);
        let mut cells = Vec::new();
        for arch in [
            presets::base_8x8(),
            presets::rs1(),
            presets::rs2(),
            presets::rsp2(),
        ] {
            let r = re(&ctx, &arch, &Default::default()).expect("rearranges");
            let u = utilization_of(&ctx, &arch, &r)
                .of(FuKind::Multiplier)
                .expect("kernel multiplies");
            cells.push(format!("{:>9.1}%", 100.0 * u.utilization));
        }
        let _ = writeln!(
            s,
            "{:<14} {} {} {} {}",
            k.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    let _ = writeln!(
        s,
        "-> 64 private multipliers sit mostly idle; 8-16 shared ones do the same work\n   at several times the duty cycle, pipelining filling both stages (§2, §5.3)"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_exhibit_renders() {
        for (name, text) in [
            ("table1", table1()),
            ("table2", table2()),
            ("table3", table3()),
            ("table4", table4()),
            ("table5", table5()),
            ("figure1", figure1()),
            ("figure2", figure2()),
            ("figure3", figure3()),
            ("figure5", figure5()),
            ("figure6", figure6()),
            ("figure8", figure8()),
            ("headline", headline()),
        ] {
            assert!(text.lines().count() >= 3, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn figure2_shows_fig2_phases() {
        let f = figure2();
        assert!(f.contains("col#1"));
        assert!(f.contains("col#4"));
        assert!(f.contains("8 multipliers"));
    }

    #[test]
    fn figure6_shows_pipeline_stages() {
        let f = figure6();
        assert!(f.contains("1*"));
        assert!(f.contains("2*"));
        assert!(f.contains("steady state is stall-free"));
    }

    #[test]
    fn utilization_renders() {
        let u = utilization();
        assert!(u.contains("Multiplier utilization"));
        assert!(u.lines().count() > 8);
    }

    #[test]
    fn power_and_ablation_render() {
        let p = power();
        assert!(p.contains("total(pJ)"));
        assert!(p.lines().count() > 40);
        let a = ablation();
        for section in [
            "Ablation 1",
            "Ablation 2",
            "Ablation 3",
            "Ablation 4",
            "Ablation 5",
        ] {
            assert!(a.contains(section), "missing {section}");
        }
    }

    #[test]
    fn table2_mentions_every_architecture() {
        let t = table2();
        for name in ["Base", "RS#1", "RS#4", "RSP#1", "RSP#4"] {
            assert!(t.contains(name), "missing {name}");
        }
    }
}
