//! Before/after artifact comparison — `headline --cmp` (rebar-style).
//!
//! Renders a markdown diff of two benchmark artifacts (or two
//! directories of committed `BENCH_*.json` artifacts, paired by
//! filename). Timings are compared the same way the gate compares them
//! ([`crate::gate::check_with`]): **normalized by the same report's
//! `serial-reference` median/min**, so a diff between artifacts from
//! different hosts shows behavior changes, not host speed. A row is
//! called:
//!
//! * `anchor-drift` — a correctness anchor (feasible count, refill
//!   counters) changed: a behavior change, flagged before any timing
//!   verdict.
//! * `regressed` / `improved` — normalized median **and** best-of-N
//!   both moved past the tolerance in the same direction (the gate's
//!   median-AND-best rule, applied symmetrically).
//! * `within noise` — anything in between.
//! * `yardstick` — the `serial-reference` row itself (it defines the
//!   normalization, so its own normalized ratio is 1.0 by construction).
//! * `cross-host` — a parallel row compared across differing host core
//!   counts: its ratio to the serial reference legitimately scales with
//!   cores, so no timing verdict is offered (same convention as the
//!   gate: rows named `*1-thread*` stay verdict-gated everywhere).
//!
//! CI renders this diff of committed-vs-regenerated into the step
//! summary on every run — pass and fail — so the delta is visible
//! without downloading artifacts.

use crate::gate::{BenchArtifact, BenchReport, EngineRow};
use std::fmt::Write as _;
use std::path::Path;

/// How far past the committed normalized ratio (in either direction)
/// both statistics must move before `--cmp` calls a verdict.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

fn reference(report: &BenchReport) -> Option<(f64, f64)> {
    report
        .engines
        .iter()
        .find(|e| e.name == "serial-reference")
        .map(|e| (e.median_ns as f64, e.min_ns as f64))
}

fn verdict_for(
    name: &str,
    med_ratio: f64,
    min_ratio: f64,
    anchors_drifted: bool,
    threads_match: bool,
    tolerance: f64,
) -> &'static str {
    if anchors_drifted {
        "**anchor-drift**"
    } else if name == "serial-reference" {
        "yardstick"
    } else if !threads_match && !name.contains("1-thread") {
        "cross-host"
    } else if med_ratio > 1.0 + tolerance && min_ratio > 1.0 + tolerance {
        "**regressed**"
    } else if med_ratio < 1.0 - tolerance && min_ratio < 1.0 - tolerance {
        "improved"
    } else {
        "within noise"
    }
}

/// Renders the markdown diff of two artifacts at the gate's default
/// tolerance.
pub fn cmp_artifacts(before: &BenchArtifact, after: &BenchArtifact, tolerance: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "### {}", before.benchmark);
    if before.benchmark != after.benchmark {
        let _ = writeln!(
            s,
            "\n> benchmark id changed: `{}` -> `{}`",
            before.benchmark, after.benchmark
        );
        return s;
    }
    for old in &before.reports {
        let Some(new) = after.reports.iter().find(|r| r.space == old.space) else {
            let _ = writeln!(
                s,
                "\n> report `{}` missing from the after artifact",
                old.space
            );
            continue;
        };
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "**{}** ({} candidates, {} kernels, median of {})",
            old.space, new.candidates, new.kernels, new.samples
        );
        if new.selected_pe_count != old.selected_pe_count {
            let _ = writeln!(
                s,
                "\n> **anchor-drift**: selected base geometry {} -> {} PEs",
                old.selected_pe_count, new.selected_pe_count
            );
        }
        let threads_match = old.threads == new.threads;
        if !threads_match {
            let _ = writeln!(
                s,
                "\n> cross-host: before recorded {} threads, after {} — parallel rows \
                 get no timing verdict",
                old.threads, new.threads
            );
        }
        let (Some(old_ref), Some(new_ref)) = (reference(old), reference(new)) else {
            let _ = writeln!(
                s,
                "\n> report `{}` lacks a serial-reference yardstick",
                old.space
            );
            continue;
        };
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "| engine | before x-ref | after x-ref | Δ median | Δ best | verdict |"
        );
        let _ = writeln!(s, "|---|---|---|---|---|---|");
        for old_row in &old.engines {
            let Some(new_row) = new.engines.iter().find(|e| e.name == old_row.name) else {
                let _ = writeln!(
                    s,
                    "| {} | {:.3}x | — | — | — | **missing** |",
                    old_row.name,
                    old_row.median_ns as f64 / old_ref.0
                );
                continue;
            };
            let old_med = old_row.median_ns as f64 / old_ref.0;
            let new_med = new_row.median_ns as f64 / new_ref.0;
            let old_min = old_row.min_ns as f64 / old_ref.1;
            let new_min = new_row.min_ns as f64 / new_ref.1;
            let anchors_drifted = new_row.feasible != old_row.feasible
                || new_row.refill_segments != old_row.refill_segments
                || new_row.refill_stall_cycles != old_row.refill_stall_cycles;
            let verdict = verdict_for(
                &old_row.name,
                new_med / old_med,
                new_min / old_min,
                anchors_drifted,
                threads_match,
                tolerance,
            );
            let detail = if anchors_drifted {
                format!(" ({})", anchor_drift_detail(old_row, new_row))
            } else {
                String::new()
            };
            let _ = writeln!(
                s,
                "| {} | {:.3}x | {:.3}x | {:+.1} % | {:+.1} % | {}{} |",
                old_row.name,
                old_med,
                new_med,
                (new_med / old_med - 1.0) * 100.0,
                (new_min / old_min - 1.0) * 100.0,
                verdict,
                detail
            );
        }
        for new_row in &new.engines {
            if !old.engines.iter().any(|e| e.name == new_row.name) {
                let _ = writeln!(
                    s,
                    "| {} | — | {:.3}x | — | — | new |",
                    new_row.name,
                    new_row.median_ns as f64 / new_ref.0
                );
            }
        }
    }
    for new in &after.reports {
        if !before.reports.iter().any(|r| r.space == new.space) {
            let _ = writeln!(s, "\n> report `{}` is new in the after artifact", new.space);
        }
    }
    s
}

fn anchor_drift_detail(old: &EngineRow, new: &EngineRow) -> String {
    let mut parts = Vec::new();
    if new.feasible != old.feasible {
        parts.push(format!("feasible {} -> {}", old.feasible, new.feasible));
    }
    if new.refill_segments != old.refill_segments {
        parts.push(format!(
            "refill_segments {} -> {}",
            old.refill_segments, new.refill_segments
        ));
    }
    if new.refill_stall_cycles != old.refill_stall_cycles {
        parts.push(format!(
            "refill_stall_cycles {} -> {}",
            old.refill_stall_cycles, new.refill_stall_cycles
        ));
    }
    parts.join(", ")
}

fn load(path: &Path) -> Result<BenchArtifact, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read artifact {}: {e}", path.display()))?;
    serde_json::from_str(&raw)
        .map_err(|e| format!("{}: invalid benchmark artifact: {e}", path.display()))
}

/// Compares two artifact files, or two directories of `BENCH_*.json`
/// artifacts paired by filename. A file missing from the after side is
/// reported as a note, not an error, so the CI step-summary render
/// works even when the gate aborted before regenerating everything.
pub fn cmp_paths(before: &Path, after: &Path, tolerance: f64) -> Result<String, String> {
    // A missing after-directory is the "gate aborted before regenerating
    // anything" case: every artifact reports as not regenerated.
    if before.is_dir() != after.is_dir() && after.exists() {
        return Err(format!(
            "--cmp needs two artifact files or two directories, got {} and {}",
            before.display(),
            after.display()
        ));
    }
    if !before.is_dir() {
        return Ok(cmp_artifacts(&load(before)?, &load(after)?, tolerance));
    }
    let mut names: Vec<String> = std::fs::read_dir(before)
        .map_err(|e| format!("cannot read directory {}: {e}", before.display()))?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH_*.json artifacts in {}", before.display()));
    }
    let mut s = String::new();
    for name in names {
        let after_path = after.join(&name);
        if !after_path.is_file() {
            let _ = writeln!(
                s,
                "### {name}\n\n> not regenerated (missing from {})\n",
                after.display()
            );
            continue;
        }
        s.push_str(&cmp_artifacts(
            &load(&before.join(&name))?,
            &load(&after_path)?,
            tolerance,
        ));
        s.push('\n');
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, median_ns: u64, min_ns: u64, feasible: usize) -> EngineRow {
        EngineRow {
            name: name.into(),
            median_ns,
            min_ns,
            samples: 5,
            speedup_vs_reference: 1.0,
            feasible,
            candidates_seen: 48,
            candidates_pruned: 0,
            bound_tightness: 0.0,
            clock_bound_cuts: 0,
            rearrangements_skipped: 0,
            refill_segments: 0,
            refill_stall_cycles: 0,
        }
    }

    fn artifact(rows: Vec<EngineRow>, threads: usize) -> BenchArtifact {
        BenchArtifact {
            benchmark: "rsp/explore".into(),
            reports: vec![BenchReport {
                space: "extended".into(),
                candidates: 48,
                kernels: 9,
                threads,
                samples: 5,
                selected_pe_count: 0,
                engines: rows,
            }],
        }
    }

    #[test]
    fn improved_regressed_and_noise_verdicts() {
        let before = artifact(
            vec![
                row("serial-reference", 1_000_000, 900_000, 30),
                row("engine-1-thread", 500_000, 450_000, 30),
                row("engine-1-thread-pruned", 500_000, 450_000, 28),
                row("engine-parallel", 400_000, 350_000, 30),
            ],
            1,
        );
        // Same reference; one row 2x better, one 2x worse, one moved
        // only in median (noise by the median-AND-best rule).
        let after = artifact(
            vec![
                row("serial-reference", 1_000_000, 900_000, 30),
                row("engine-1-thread", 250_000, 225_000, 30),
                row("engine-1-thread-pruned", 1_000_000, 900_000, 28),
                row("engine-parallel", 480_000, 350_000, 30),
            ],
            1,
        );
        let out = cmp_artifacts(&before, &after, DEFAULT_TOLERANCE);
        let line = |name: &str| {
            out.lines()
                .find(|l| l.starts_with(&format!("| {name} ")))
                .unwrap_or_else(|| panic!("no table row for {name} in:\n{out}"))
                .to_string()
        };
        assert!(line("serial-reference").contains("yardstick"), "{out}");
        assert!(line("engine-1-thread").contains("improved"), "{out}");
        assert!(line("engine-1-thread").contains("-50.0 %"), "{out}");
        assert!(
            line("engine-1-thread-pruned").contains("**regressed**"),
            "{out}"
        );
        assert!(line("engine-parallel").contains("within noise"), "{out}");
    }

    #[test]
    fn anchor_drift_beats_timing_and_names_the_anchor() {
        let before = artifact(
            vec![
                row("serial-reference", 1_000_000, 900_000, 30),
                row("engine-1-thread", 500_000, 450_000, 30),
            ],
            1,
        );
        let mut after = before.clone();
        after.reports[0].engines[1].feasible = 29;
        after.reports[0].engines[1].median_ns = 250_000; // 2x faster — irrelevant
        let out = cmp_artifacts(&before, &after, DEFAULT_TOLERANCE);
        assert!(
            out.contains("**anchor-drift** (feasible 30 -> 29)"),
            "{out}"
        );
        assert!(!out.contains("improved"), "{out}");

        // Refill anchors drift the same way.
        let mut after = before.clone();
        after.reports[0].engines[1].refill_segments = 3;
        after.reports[0].engines[1].refill_stall_cycles = 120;
        let out = cmp_artifacts(&before, &after, DEFAULT_TOLERANCE);
        assert!(out.contains("refill_segments 0 -> 3"), "{out}");
        assert!(out.contains("refill_stall_cycles 0 -> 120"), "{out}");

        // Selected-geometry drift is a report-level note.
        let mut after = before.clone();
        after.reports[0].selected_pe_count = 36;
        let out = cmp_artifacts(&before, &after, DEFAULT_TOLERANCE);
        assert!(out.contains("selected base geometry 0 -> 36 PEs"), "{out}");
    }

    #[test]
    fn cross_host_parallel_rows_get_no_timing_verdict() {
        let before = artifact(
            vec![
                row("serial-reference", 1_000_000, 900_000, 30),
                row("engine-1-thread", 500_000, 450_000, 30),
                row("engine-parallel", 100_000, 90_000, 30),
            ],
            8,
        );
        let mut after = artifact(
            vec![
                row("serial-reference", 1_000_000, 900_000, 30),
                row("engine-1-thread", 2_000_000, 1_800_000, 30),
                row("engine-parallel", 1_000_000, 900_000, 30),
            ],
            1,
        );
        after.reports[0].threads = 1;
        let out = cmp_artifacts(&before, &after, DEFAULT_TOLERANCE);
        let line = |name: &str| {
            out.lines()
                .find(|l| l.starts_with(&format!("| {name} ")))
                .unwrap()
                .to_string()
        };
        // The 10x slower parallel row is host topology, not a verdict...
        assert!(line("engine-parallel").contains("cross-host"), "{out}");
        assert!(out.contains("parallel rows"), "{out}");
        // ...but the 1-thread row stays verdict-gated everywhere.
        assert!(line("engine-1-thread").contains("**regressed**"), "{out}");
    }

    #[test]
    fn structural_changes_are_reported_not_dropped() {
        let before = artifact(
            vec![
                row("serial-reference", 1_000_000, 900_000, 30),
                row("engine-retired", 500_000, 450_000, 30),
            ],
            1,
        );
        let mut after = artifact(vec![row("serial-reference", 1_000_000, 900_000, 30)], 1);
        after.reports[0]
            .engines
            .push(row("engine-new", 500_000, 450_000, 30));
        after.reports.push(BenchReport {
            space: "brand-new".into(),
            ..after.reports[0].clone()
        });
        let out = cmp_artifacts(&before, &after, DEFAULT_TOLERANCE);
        assert!(out.contains("**missing**"), "{out}");
        assert!(out.contains("| engine-new | — |"), "{out}");
        assert!(out.contains("report `brand-new` is new"), "{out}");

        let mut truncated = before.clone();
        truncated.reports.clear();
        let out = cmp_artifacts(&before, &truncated, DEFAULT_TOLERANCE);
        assert!(out.contains("report `extended` missing"), "{out}");
    }

    #[test]
    fn dir_mode_pairs_by_filename_and_tolerates_missing_after() {
        let base = std::env::temp_dir().join(format!("bench-cmp-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (b, a) = (base.join("before"), base.join("after"));
        std::fs::create_dir_all(&b).unwrap();
        std::fs::create_dir_all(&a).unwrap();
        let art = artifact(vec![row("serial-reference", 1_000_000, 900_000, 30)], 1);
        let json = serde_json::to_string_pretty(&art).unwrap();
        std::fs::write(b.join("BENCH_explore.json"), &json).unwrap();
        std::fs::write(b.join("BENCH_flow.json"), &json).unwrap();
        std::fs::write(a.join("BENCH_explore.json"), &json).unwrap();
        // BENCH_flow.json deliberately missing from the after dir.
        let out = cmp_paths(&b, &a, DEFAULT_TOLERANCE).unwrap();
        assert!(out.contains("### rsp/explore"), "{out}");
        assert!(out.contains("not regenerated"), "{out}");

        // A missing after-directory (gate aborted before regenerating)
        // still renders, with every artifact marked not regenerated.
        let out = cmp_paths(&b, &base.join("never-created"), DEFAULT_TOLERANCE).unwrap();
        assert_eq!(out.matches("not regenerated").count(), 2, "{out}");

        // File/dir mixups and empty before-dirs are errors.
        assert!(cmp_paths(&b, &b.join("BENCH_explore.json"), 0.15).is_err());
        let empty = base.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(cmp_paths(&empty, &a, 0.15).is_err());
        let _ = std::fs::remove_dir_all(&base);
    }
}
