//! Property tests for the mapper's structural invariants, parameterized
//! over the built-in suite and random geometries.

use proptest::prelude::*;
use rsp_arch::{ArrayGeometry, BaseArchitecture, BusSpec, OpKind, PeDesign};
use rsp_kernel::{suite, Kernel, MappingStyle};
use rsp_mapper::{check_buses, encode_context, map, validate_base_schedule, MapOptions};

fn base(rows: usize, cols: usize) -> BaseArchitecture {
    BaseArchitecture::new(
        ArrayGeometry::new(rows, cols),
        PeDesign::full(),
        BusSpec::paper_default(),
        4096,
    )
}

fn kernels() -> Vec<Kernel> {
    let mut v = suite::all();
    v.push(suite::matmul(4));
    v
}

/// Mapping is a pure function of `(base, kernel, options)`: repeated
/// calls — including calls racing on separate threads — produce
/// identical contexts. This is the property the flow's parallel
/// multi-geometry fan-out rests on: fanning `map` out over candidate
/// geometries cannot produce a different context than the serial oracle
/// obtains for the same geometry.
#[test]
fn mapping_is_deterministic_across_threads_and_geometries() {
    let geometries = [(4usize, 4usize), (6, 6), (8, 8)];
    for k in kernels() {
        let serial: Vec<Option<rsp_mapper::ConfigContext>> = geometries
            .iter()
            .map(|&(r, c)| map(&base(r, c), &k, &MapOptions::default()).ok())
            .collect();
        let threaded: Vec<Option<rsp_mapper::ConfigContext>> = std::thread::scope(|s| {
            let handles: Vec<_> = geometries
                .iter()
                .map(|&(r, c)| {
                    let k = &k;
                    s.spawn(move || map(&base(r, c), k, &MapOptions::default()).ok())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, threaded, "{}", k.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The packed bit-plane [`CycleDemand`] agrees cell-for-cell with a
    /// naive dense recount built straight from the instances: same
    /// non-empty cycles in order, same per-cycle totals, and the
    /// popcount row reduction, the per-cell lookup, and the row-major
    /// cell walk all conserve the recounted demand.
    #[test]
    fn cycle_demand_matches_naive_dense_recount(
        ki in 0usize..10,
        mult_only in any::<bool>(),
    ) {
        let k = &kernels()[ki];
        let Ok(ctx) = map(&base(8, 8), k, &MapOptions::default()) else {
            return Ok(());
        };
        let pred = |op: OpKind| !mult_only || op == OpKind::Mult;
        let demand = ctx.cycle_demand(pred);

        // Naive dense recount, straight from the instances.
        let (rows, cols) = (ctx.geometry().rows(), ctx.geometry().cols());
        let t = ctx.total_cycles() as usize;
        let mut dense = vec![0u32; t * rows * cols];
        for (inst, &cyc) in ctx.instances().iter().zip(ctx.cycles()) {
            if pred(inst.op) {
                dense[(cyc as usize * rows + inst.pe.row) * cols + inst.pe.col] += 1;
            }
        }

        // The non-empty cycles, in order, are exactly the recount's.
        let naive_cycles: Vec<u32> = (0..t)
            .filter(|&c| dense[c * rows * cols..(c + 1) * rows * cols].iter().any(|&d| d > 0))
            .map(|c| c as u32)
            .collect();
        prop_assert_eq!(demand.cycle_ids(), &naive_cycles[..]);
        prop_assert_eq!(demand.cycle_ids().len(), demand.cycle_totals().len());

        let mut grand_total = 0u32;
        for view in demand.cycles() {
            let at = |r: usize, c: usize| dense[(view.cycle() as usize * rows + r) * cols + c];

            // Per-cell lookup and popcount row reduction match the recount.
            let mut cycle_total = 0u32;
            for r in 0..rows {
                let naive_row: u32 = (0..cols).map(|c| at(r, c)).sum();
                prop_assert_eq!(view.row_count(r), naive_row);
                cycle_total += naive_row;
                for c in 0..cols {
                    prop_assert_eq!(view.count(r, c), at(r, c));
                }
            }
            prop_assert_eq!(view.total(), cycle_total);

            // The row-major cell walk visits every non-zero cell once,
            // in order, and conserves the total.
            let mut walked: Vec<(u16, u16, u32)> = Vec::new();
            view.for_each_cell(|r, c, n| walked.push((r, c, n)));
            prop_assert!(walked.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
            prop_assert_eq!(walked.iter().map(|&(.., n)| n).sum::<u32>(), cycle_total);
            for (r, c, n) in walked {
                prop_assert!(n > 0);
                prop_assert_eq!(n, at(r as usize, c as usize));
            }
            grand_total += cycle_total;
        }
        prop_assert_eq!(demand.total(), grand_total);
    }

    #[test]
    fn mapping_is_total_and_legal_on_any_geometry(
        rows in 2usize..=10,
        cols in 2usize..=10,
        ki in 0usize..10,
    ) {
        let k = &kernels()[ki];
        let Ok(ctx) = map(&base(rows, cols), k, &MapOptions::default()) else {
            return Ok(()); // infeasible (e.g. bus-bound dataflow on tiny rows)
        };
        prop_assert_eq!(ctx.instances().len(), k.total_ops());
        prop_assert!(validate_base_schedule(&ctx).is_ok());
        // Placement stays inside the array.
        for inst in ctx.instances() {
            prop_assert!(inst.pe.row < rows && inst.pe.col < cols);
        }
        // Demand totals are exact.
        prop_assert_eq!(ctx.mult_profile().total, k.total_mults());
    }

    #[test]
    fn lockstep_keeps_elements_on_one_pe(
        rows in 2usize..=8,
        cols in 2usize..=8,
        ki in 0usize..10,
    ) {
        let k = &kernels()[ki];
        if k.style() != MappingStyle::Lockstep {
            return Ok(());
        }
        let Ok(ctx) = map(&base(rows, cols), k, &MapOptions::default()) else {
            return Ok(());
        };
        use std::collections::HashMap;
        let mut pe_of_element: HashMap<u32, rsp_arch::PeId> = HashMap::new();
        for inst in ctx.instances() {
            let prev = pe_of_element.insert(inst.element, inst.pe);
            if let Some(p) = prev {
                prop_assert_eq!(p, inst.pe, "element {} hops PEs", inst.element);
            }
        }
    }

    #[test]
    fn dataflow_keeps_elements_in_one_row(
        rows in 2usize..=8,
        cols in 4usize..=10,
        ki in 0usize..10,
    ) {
        let k = &kernels()[ki];
        if k.style() != MappingStyle::Dataflow {
            return Ok(());
        }
        let Ok(ctx) = map(&base(rows, cols), k, &MapOptions::default()) else {
            return Ok(());
        };
        use std::collections::HashMap;
        let mut row_of_element: HashMap<u32, usize> = HashMap::new();
        for inst in ctx.instances() {
            let prev = row_of_element.insert(inst.element, inst.pe.row);
            if let Some(r) = prev {
                prop_assert_eq!(r, inst.pe.row, "element {} hops rows", inst.element);
            }
        }
        // Dataflow base schedules are strictly bus-legal.
        prop_assert!(check_buses(&ctx, ctx.cycles()).is_ok());
    }

    #[test]
    fn strict_bus_mapping_is_always_bus_legal(ki in 0usize..10) {
        let k = &kernels()[ki];
        let opts = MapOptions { strict_buses: true, ..MapOptions::default() };
        let Ok(ctx) = map(&base(8, 8), k, &opts) else { return Ok(()); };
        prop_assert!(check_buses(&ctx, ctx.cycles()).is_ok());
        prop_assert!(validate_base_schedule(&ctx).is_ok());
    }

    #[test]
    fn encoding_round_trips_program_order(ki in 0usize..10) {
        let k = &kernels()[ki];
        let arch = rsp_arch::presets::base_8x8();
        let Ok(ctx) = map(arch.base(), k, &MapOptions::default()) else {
            return Ok(());
        };
        let bindings = vec![None; ctx.instances().len()];
        let img = encode_context(&ctx, ctx.cycles(), &bindings, &arch).unwrap();
        prop_assert_eq!(img.depth() as u32, ctx.total_cycles());
        // Each instance decodes to its own opcode at its slot; idle slots
        // are NOPs; counts add up.
        let mut decoded_ops = 0usize;
        for pe in arch.geometry().iter() {
            for cyc in 0..img.depth() {
                if img.word(pe, cyc).op().is_some() {
                    decoded_ops += 1;
                }
            }
        }
        prop_assert_eq!(decoded_ops, ctx.instances().len());
        for inst in ctx.instances() {
            let w = img.word(inst.pe, ctx.cycle_of(inst.id) as usize);
            prop_assert_eq!(w.op(), Some(inst.op));
        }
    }

    #[test]
    fn stores_and_loads_hit_declared_arrays(ki in 0usize..10) {
        let k = &kernels()[ki];
        let Ok(ctx) = map(&base(8, 8), k, &MapOptions::default()) else {
            return Ok(());
        };
        for inst in ctx.instances() {
            for l in &inst.loads {
                let decl = &k.arrays()[l.array as usize];
                prop_assert!((l.addr as usize) < decl.len, "load oob in {}", decl.name);
            }
            if let Some(st) = inst.store {
                let decl = &k.arrays()[st.array as usize];
                prop_assert!((st.addr as usize) < decl.len, "store oob in {}", decl.name);
            }
            // Op kind consistent with memory accesses.
            match inst.op {
                OpKind::Load => prop_assert!(!inst.loads.is_empty()),
                OpKind::Store => prop_assert!(inst.store.is_some()),
                _ => {
                    prop_assert!(inst.loads.is_empty());
                    prop_assert!(inst.store.is_none());
                }
            }
        }
    }
}
