//! Schedule legality checking against base-architecture rules.

use crate::context::ConfigContext;
use crate::error::ScheduleViolation;
use std::collections::HashMap;

/// Checks a context's *base* schedule: every consumer issues at least one
/// cycle after each producer (unit latencies), and no PE issues two
/// operations in one cycle.
///
/// Bus capacities are *not* enforced here — the base mapper may rely on
/// operand reuse (ref. \[7\]); use [`check_buses`] for the strict view.
///
/// # Errors
///
/// The first [`ScheduleViolation`] found.
pub fn validate_base_schedule(ctx: &ConfigContext) -> Result<(), ScheduleViolation> {
    validate_schedule(ctx, ctx.cycles(), |_| 1)
}

/// Checks an arbitrary schedule for `ctx` with per-instance latencies
/// (`latency(i)` = cycles until instance `i`'s result is usable).
///
/// # Errors
///
/// The first [`ScheduleViolation`] found.
///
/// # Panics
///
/// Panics if `cycles` is not parallel to the context's instances.
pub fn validate_schedule<L: Fn(usize) -> u32>(
    ctx: &ConfigContext,
    cycles: &[u32],
    latency: L,
) -> Result<(), ScheduleViolation> {
    assert_eq!(cycles.len(), ctx.instances().len());
    let mut pe_busy: HashMap<(usize, usize, u32), ()> = HashMap::new();
    for inst in ctx.instances() {
        let cyc = cycles[inst.id.index()];
        for &p in &inst.preds {
            let pc = cycles[p.index()];
            if pc + latency(p.index()) > cyc {
                return Err(ScheduleViolation::DependenceViolated {
                    producer: p.index(),
                    consumer: inst.id.index(),
                    producer_cycle: pc,
                    consumer_cycle: cyc,
                });
            }
        }
        if pe_busy
            .insert((inst.pe.row, inst.pe.col, cyc), ())
            .is_some()
        {
            return Err(ScheduleViolation::PeConflict {
                pe: inst.pe,
                cycle: cyc,
            });
        }
    }
    Ok(())
}

/// Strictly checks row-bus capacities for an arbitrary schedule.
///
/// # Errors
///
/// The first [`ScheduleViolation::BusOverflow`] found.
pub fn check_buses(ctx: &ConfigContext, cycles: &[u32]) -> Result<(), ScheduleViolation> {
    assert_eq!(cycles.len(), ctx.instances().len());
    let read_cap = ctx.buses().read_buses();
    let write_cap = ctx.buses().write_buses();
    let mut reads: HashMap<(usize, u32), usize> = HashMap::new();
    let mut writes: HashMap<(usize, u32), usize> = HashMap::new();
    for inst in ctx.instances() {
        let cyc = cycles[inst.id.index()];
        if inst.bus_read_words() > 0 {
            let e = reads.entry((inst.pe.row, cyc)).or_default();
            *e += inst.bus_read_words();
            if *e > read_cap {
                return Err(ScheduleViolation::BusOverflow {
                    row: inst.pe.row,
                    cycle: cyc,
                    words: *e,
                    capacity: read_cap,
                });
            }
        }
        if inst.is_store() {
            let e = writes.entry((inst.pe.row, cyc)).or_default();
            *e += 1;
            if *e > write_cap {
                return Err(ScheduleViolation::BusOverflow {
                    row: inst.pe.row,
                    cycle: cyc,
                    words: *e,
                    capacity: write_cap,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapOptions};
    use rsp_arch::presets;
    use rsp_kernel::suite;

    #[test]
    fn tampered_schedule_detected() {
        let base = presets::base_8x8().base().clone();
        let ctx = map(&base, &suite::iccg(), &MapOptions::default()).unwrap();
        // Move a dependent instance onto its producer's cycle.
        let mut cycles = ctx.cycles().to_vec();
        let victim = ctx
            .instances()
            .iter()
            .find(|i| !i.preds.is_empty())
            .unwrap();
        cycles[victim.id.index()] = cycles[victim.preds[0].index()];
        assert!(matches!(
            validate_schedule(&ctx, &cycles, |_| 1),
            Err(ScheduleViolation::DependenceViolated { .. })
        ));
    }

    #[test]
    fn pe_conflict_detected() {
        let base = presets::base_8x8().base().clone();
        let ctx = map(&base, &suite::iccg(), &MapOptions::default()).unwrap();
        let mut cycles = ctx.cycles().to_vec();
        // Two instances on the same PE: element 0 nodes 0 and 2 (the two
        // loads) collapsed onto one cycle.
        let a = &ctx.instances()[0];
        let b = ctx
            .instances()
            .iter()
            .find(|i| i.pe == a.pe && i.id != a.id)
            .unwrap();
        cycles[b.id.index()] = cycles[a.id.index()];
        let r = validate_schedule(&ctx, &cycles, |_| 1);
        assert!(r.is_err());
    }

    #[test]
    fn latency_aware_validation() {
        let base = presets::base_8x8().base().clone();
        // Tri-diagonal stores the product one cycle after the multiply, so
        // a 2-cycle multiplier must make the base schedule illegal. (ICCG
        // would stay legal: a load separates its multiply from the
        // subtract — the slack the paper's RP rearrangement exploits.)
        let ctx = map(&base, &suite::tri_diagonal(), &MapOptions::default()).unwrap();
        let lat = |i: usize| {
            if ctx.instances()[i].op == rsp_arch::OpKind::Mult {
                2
            } else {
                1
            }
        };
        assert!(validate_schedule(&ctx, ctx.cycles(), lat).is_err());
    }

    #[test]
    fn bus_check_flags_soft_schedules() {
        let base = presets::base_8x8().base().clone();
        // matmul(8) soft-mapped oversubscribes the read buses by design
        // (co-phase dual loads, as in the paper's own Fig. 2).
        let ctx = map(&base, &suite::matmul(8), &MapOptions::default()).unwrap();
        assert!(check_buses(&ctx, ctx.cycles()).is_err());
        let strict = map(
            &base,
            &suite::matmul(8),
            &MapOptions {
                strict_buses: true,
                ..MapOptions::default()
            },
        )
        .unwrap();
        assert!(check_buses(&strict, strict.cycles()).is_ok());
    }
}
