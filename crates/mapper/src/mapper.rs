//! Mapper entry point.

use crate::context::ConfigContext;
use crate::dataflow::map_dataflow;
use crate::error::MapError;
use crate::lockstep::map_lockstep;
use rsp_arch::BaseArchitecture;
use rsp_kernel::{Kernel, MappingStyle};

/// Mapper options.
#[derive(Debug, Clone, Copy, Default)]
pub struct MapOptions {
    /// Enforce row-bus capacities in the base schedule by delaying group
    /// starts (lockstep only). The default relies on operand reuse /
    /// memory-operation sharing (ref. \[7\] of the paper) — the same
    /// idealization visible in the paper's own Fig. 2, whose cycle 4
    /// issues two dual loads per row against two read buses.
    pub strict_buses: bool,
    /// Override the kernel's preferred mapping style.
    pub style: Option<MappingStyle>,
}

/// Maps a kernel onto the base architecture, producing the initial
/// configuration contexts of the Fig. 7 flow.
///
/// # Errors
///
/// * [`MapError::MissingUnit`] — the PE design lacks a unit the kernel
///   needs.
/// * [`MapError::ConfigCacheExceeded`] — the schedule is longer than the
///   per-PE configuration cache.
/// * [`MapError::IiSearchFailed`] / [`MapError::BadDataflowKernel`] — see
///   the dataflow scheduler.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let base = presets::base_8x8();
/// let ctx = map(base.base(), &suite::mvm(), &MapOptions::default())?;
/// assert_eq!(ctx.instances().len(), suite::mvm().total_ops());
/// # Ok::<(), rsp_mapper::MapError>(())
/// ```
pub fn map(
    base: &BaseArchitecture,
    kernel: &Kernel,
    opts: &MapOptions,
) -> Result<ConfigContext, MapError> {
    // Every operation must run on the (full) base PE.
    for dfg in std::iter::once(kernel.body()).chain(kernel.tail()) {
        for (_, node) in dfg.iter() {
            if !base.pe().supports_locally(node.op()) {
                return Err(MapError::MissingUnit { op: node.op() });
            }
        }
    }

    let style = opts.style.unwrap_or(kernel.style());
    let ctx = match style {
        MappingStyle::Lockstep => map_lockstep(base, kernel, opts),
        MappingStyle::Dataflow => map_dataflow(base, kernel)?,
    };

    let needed = ctx.total_cycles();
    let available = base.config_cache_depth() as u32;
    if needed > available {
        return Err(MapError::ConfigCacheExceeded { needed, available });
    }
    debug_assert!(crate::validate::validate_base_schedule(&ctx).is_ok());
    Ok(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::{ArrayGeometry, BusSpec, FuKind, PeDesign};
    use rsp_kernel::suite;

    #[test]
    fn missing_unit_reported() {
        let base = BaseArchitecture::new(
            ArrayGeometry::new(4, 4),
            PeDesign::with_units([FuKind::Alu], 16), // no multiplier
            BusSpec::paper_default(),
            256,
        );
        let err = map(&base, &suite::mvm(), &MapOptions::default()).unwrap_err();
        assert_eq!(
            err,
            MapError::MissingUnit {
                op: rsp_arch::OpKind::Mult
            }
        );
    }

    #[test]
    fn cache_overflow_reported() {
        let base = BaseArchitecture::new(
            ArrayGeometry::new(8, 8),
            PeDesign::full(),
            BusSpec::paper_default(),
            4, // absurdly small cache
        );
        let err = map(&base, &suite::sad(), &MapOptions::default()).unwrap_err();
        assert!(matches!(err, MapError::ConfigCacheExceeded { .. }));
    }

    #[test]
    fn style_override_works() {
        let base = rsp_arch::presets::base_8x8().base().clone();
        // ICCG prefers lockstep; force dataflow.
        let ctx = map(
            &base,
            &suite::iccg(),
            &MapOptions {
                style: Some(MappingStyle::Dataflow),
                ..MapOptions::default()
            },
        )
        .unwrap();
        assert_eq!(ctx.style(), MappingStyle::Dataflow);
    }

    #[test]
    fn instance_counts_match_kernel() {
        let base = rsp_arch::presets::base_8x8().base().clone();
        for k in suite::all() {
            let ctx = map(&base, &k, &MapOptions::default()).unwrap();
            assert_eq!(ctx.instances().len(), k.total_ops(), "{}", k.name());
        }
    }
}
