//! Configuration-cache refill: splitting oversized schedules into
//! cache-sized segments.
//!
//! The paper's flow assumes every kernel's context stream fits the per-PE
//! configuration cache, which turns cache capacity into a feasibility
//! cliff: one context too many and the whole design point is rejected.
//! Related CGRA work (Cascade's end-to-end application pipelining
//! overheads; Kong et al.'s context-switch reload of PE configuration
//! state) instead treats configuration movement as a *cost*. This module
//! follows that lead:
//!
//! * [`split_schedule`] partitions a schedule into segments of at most
//!   `cache_depth` cycles, cutting only at **legal cut points** — cycle
//!   boundaries no operation is in flight across. An operation issued in
//!   one segment always retires (and its bus transfer completes) before
//!   the cut, so the array can stop, reload every PE's configuration
//!   cache, and resume: PE registers and memory persist, and the
//!   resumed segment observes exactly the state the unsplit schedule
//!   would have produced. A multi-cycle (pipelined shared-resource)
//!   operation therefore also never holds a shared-resource binding
//!   across a cut.
//! * [`RefillPlan`] records the segment boundaries plus the per-PE
//!   reload cost of each segment. The cost is derived from the
//!   [`ConfigImage`](crate::ConfigImage) encoding: a segment of `d`
//!   cycles occupies `d ×` [`CONFIG_WORD_BYTES`] bytes in every PE's
//!   cache, and the configuration bus delivers
//!   [`REFILL_BYTES_PER_CYCLE`] bytes per PE per stall cycle (all PE
//!   caches refill in parallel, each from its own cache port), so a
//!   refill stalls the array for `ceil(d × 8 / 8) = d` cycles.
//!   Segment 0 is the initial configuration load the unsplit model
//!   already assumes free, so only segments `1..` charge refill stalls.
//!
//! [`RefillPlan::stalled_schedule`] converts a compact (gap-free)
//! schedule into the executed timeline with the refill stalls
//! materialized as idle windows, which is what `rsp-sim` simulates.

use crate::context::ConfigContext;
use crate::encode::{encode_context, ConfigImage, ConfigWord, EncodeError};
use rsp_arch::SharedResourceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes of one configuration word (the [`crate::ConfigWord`] encoding).
pub const CONFIG_WORD_BYTES: usize = std::mem::size_of::<ConfigWord>();

/// Configuration-bus bandwidth per PE: bytes written into one PE's cache
/// per refill-stall cycle. One 64-bit context word per cycle — the same
/// width the cache's read port feeds the PE with during execution.
pub const REFILL_BYTES_PER_CYCLE: usize = 8;

/// Refill-stall cycles needed to load `depth` context words into every
/// PE's cache (loads proceed in parallel across PEs).
pub fn refill_cycles_for_depth(depth: u32) -> u32 {
    ((depth as usize * CONFIG_WORD_BYTES).div_ceil(REFILL_BYTES_PER_CYCLE)) as u32
}

/// One cache-sized segment of a split schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefillSegment {
    /// First schedule cycle of the segment (inclusive, compact timeline).
    pub start_cycle: u32,
    /// One past the last schedule cycle (exclusive, compact timeline).
    pub end_cycle: u32,
    /// Stall cycles charged to reload this segment's contexts before it
    /// executes (0 for segment 0 — the initial configuration load).
    pub refill_cycles: u32,
}

impl RefillSegment {
    /// Context words per PE this segment occupies.
    pub fn depth(&self) -> u32 {
        self.end_cycle - self.start_cycle
    }

    /// Bytes of this segment's context stream in one PE's cache.
    pub fn per_pe_bytes(&self) -> usize {
        self.depth() as usize * CONFIG_WORD_BYTES
    }
}

/// How a schedule maps onto the per-PE configuration caches: the ordered
/// cache-sized segments plus each segment's reload cost. Produced by
/// [`split_schedule`]; a schedule that fits the cache yields a
/// single-segment plan with zero refill stalls, so every schedule —
/// split or not — carries a plan and downstream passes need no special
/// cases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefillPlan {
    cache_depth: u32,
    segments: Vec<RefillSegment>,
}

impl RefillPlan {
    /// A plan for a schedule that fits the cache: one segment, no refill
    /// (the empty schedule gets an empty plan).
    pub fn single(total_cycles: u32, cache_depth: u32) -> Self {
        debug_assert!(total_cycles <= cache_depth);
        let segments = if total_cycles == 0 {
            Vec::new()
        } else {
            vec![RefillSegment {
                start_cycle: 0,
                end_cycle: total_cycles,
                refill_cycles: 0,
            }]
        };
        Self {
            cache_depth,
            segments,
        }
    }

    /// The cache depth the plan was split for.
    pub fn cache_depth(&self) -> u32 {
        self.cache_depth
    }

    /// The segments, schedule order.
    pub fn segments(&self) -> &[RefillSegment] {
        &self.segments
    }

    /// Whether the schedule was actually split (more than one segment).
    pub fn is_split(&self) -> bool {
        self.segments.len() > 1
    }

    /// Refill events: segments that charge a reload stall (all but the
    /// first).
    pub fn refill_count(&self) -> usize {
        self.segments.len().saturating_sub(1)
    }

    /// Total refill-stall cycles across all segments.
    pub fn total_refill_cycles(&self) -> u32 {
        self.segments.iter().map(|s| s.refill_cycles).sum()
    }

    /// Bytes reloaded into one PE's cache beyond the initial load.
    pub fn per_pe_refill_bytes(&self) -> usize {
        self.segments
            .iter()
            .skip(1)
            .map(RefillSegment::per_pe_bytes)
            .sum()
    }

    /// Maps a compact schedule cycle to its executed cycle: every
    /// segment is delayed by the cumulative refill stalls of itself and
    /// all earlier segments.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` lies beyond the planned schedule.
    pub fn stalled_cycle(&self, cycle: u32) -> u32 {
        let mut shift = 0u32;
        for s in &self.segments {
            shift += s.refill_cycles;
            if cycle < s.end_cycle {
                return cycle + shift;
            }
        }
        panic!("cycle {cycle} beyond the planned schedule");
    }

    /// The executed timeline of a compact schedule: refill stalls become
    /// idle windows between segments.
    pub fn stalled_schedule(&self, schedule: &[u32]) -> Vec<u32> {
        schedule.iter().map(|&c| self.stalled_cycle(c)).collect()
    }

    /// The refill-stall windows in the executed timeline, as
    /// `(first_stall_cycle, stall_cycles)` pairs — the cycles the array
    /// sits idle while the caches reload.
    pub fn stall_windows(&self) -> Vec<(u32, u32)> {
        let mut windows = Vec::new();
        let mut shift = 0u32;
        for s in &self.segments {
            if s.refill_cycles > 0 {
                windows.push((s.start_cycle + shift, s.refill_cycles));
            }
            shift += s.refill_cycles;
        }
        windows
    }

    /// Total executed cycles: the compact schedule length plus every
    /// refill stall.
    pub fn elapsed_cycles(&self) -> u32 {
        self.segments
            .last()
            .map_or(0, |s| s.end_cycle + self.total_refill_cycles())
    }
}

impl fmt::Display for RefillPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} segment(s), {} refill cycle(s), cache depth {}",
            self.segments.len(),
            self.total_refill_cycles(),
            self.cache_depth
        )
    }
}

/// Why a schedule could not be split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SplitError {
    /// No legal cut point exists within one cache window: some operation
    /// is in flight across every candidate boundary, so no prefix of at
    /// most `cache_depth` cycles can retire completely before a reload.
    NoLegalCut {
        /// First cycle of the segment that could not be closed.
        start_cycle: u32,
        /// The cache depth that bounded the window.
        cache_depth: u32,
    },
    /// The schedule slice is not parallel to the context's instances.
    ShapeMismatch,
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::NoLegalCut {
                start_cycle,
                cache_depth,
            } => write!(
                f,
                "no legal cut point within {cache_depth} cycles of cycle {start_cycle} \
                 (an operation is in flight across every boundary)"
            ),
            SplitError::ShapeMismatch => write!(f, "schedule not parallel to context"),
        }
    }
}

impl std::error::Error for SplitError {}

/// Splits `schedule` into cache-sized segments at legal cut points.
///
/// A boundary `t` (between cycles `t-1` and `t`) is **legal** when no
/// instance issued before `t` is still executing at `t`
/// (`schedule[i] < t < schedule[i] + latency(i)` for no `i`): nothing is
/// mid-pipeline, no bus transfer is outstanding, and no shared-resource
/// binding spans the cut. The splitter is greedy: each segment extends to
/// the **latest** legal boundary within `cache_depth` cycles of its
/// start, which maximizes segment 0 (whose load is free) and minimizes
/// the segment count.
///
/// `latency(i)` is the cycles instance `i` occupies its unit (pass
/// `arch.op_latency(...)` for a rearranged schedule, or `|_| 1` for a
/// base schedule).
///
/// # Errors
///
/// * [`SplitError::ShapeMismatch`] — `schedule` not parallel to `ctx`.
/// * [`SplitError::NoLegalCut`] — some window of `cache_depth` cycles
///   contains no legal boundary (only possible when pipeline latencies
///   tile an entire window, never for unit-latency schedules).
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, split_schedule, MapOptions};
///
/// let base = presets::base_8x8();
/// let ctx = map(base.base(), &suite::sad(), &MapOptions::default())?;
/// // Forced through an artificially small cache: every boundary of the
/// // unit-latency base schedule is legal, so segments pack exactly.
/// let plan = split_schedule(&ctx, ctx.cycles(), |_| 1, 16)?;
/// assert!(plan.is_split());
/// assert!(plan.segments().iter().all(|s| s.depth() <= 16));
/// assert_eq!(plan.elapsed_cycles(),
///            ctx.total_cycles() + plan.total_refill_cycles());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn split_schedule(
    ctx: &ConfigContext,
    schedule: &[u32],
    latency: impl Fn(usize) -> u32,
    cache_depth: u32,
) -> Result<RefillPlan, SplitError> {
    if schedule.len() != ctx.instances().len() {
        return Err(SplitError::ShapeMismatch);
    }
    assert!(cache_depth > 0, "cache depth must be positive");
    let total = schedule.iter().map(|&c| c + 1).max().unwrap_or(0);
    if total <= cache_depth {
        return Ok(RefillPlan::single(total, cache_depth));
    }

    let busy = busy_boundaries(schedule, latency, total);
    let mut segments = Vec::new();
    let mut start = 0u32;
    while start < total {
        let window_end = (start + cache_depth).min(total);
        let cut = (start + 1..=window_end).rev().find(|&t| !busy[t as usize]);
        let Some(cut) = cut else {
            return Err(SplitError::NoLegalCut {
                start_cycle: start,
                cache_depth,
            });
        };
        let depth = cut - start;
        segments.push(RefillSegment {
            start_cycle: start,
            end_cycle: cut,
            refill_cycles: if start == 0 {
                0
            } else {
                refill_cycles_for_depth(depth)
            },
        });
        start = cut;
    }
    Ok(RefillPlan {
        cache_depth,
        segments,
    })
}

/// `busy[t]` = some instance is in flight across boundary `t`
/// (issued `< t`, retires `> t`). Boundaries `0` and `total` are always
/// legal.
fn busy_boundaries(schedule: &[u32], latency: impl Fn(usize) -> u32, total: u32) -> Vec<bool> {
    let mut busy = vec![false; total as usize + 1];
    for (i, &c) in schedule.iter().enumerate() {
        let lat = latency(i).max(1);
        for t in c + 1..(c + lat).min(total) {
            busy[t as usize] = true;
        }
    }
    busy
}

/// The smallest cache depth [`split_schedule`] can split this schedule
/// for: the largest distance between consecutive legal cut boundaries.
/// Any `cache_depth ≥` this value succeeds; any smaller depth hits
/// [`SplitError::NoLegalCut`] in the widest boundary gap. For
/// unit-latency schedules every boundary is legal and the result is 1;
/// a schedule whose pipelined operations tile every interior boundary
/// returns its full length (splitting is impossible below that).
///
/// # Errors
///
/// [`SplitError::ShapeMismatch`] when `schedule` is not parallel to
/// `ctx`.
pub fn min_splittable_depth(
    ctx: &ConfigContext,
    schedule: &[u32],
    latency: impl Fn(usize) -> u32,
) -> Result<u32, SplitError> {
    if schedule.len() != ctx.instances().len() {
        return Err(SplitError::ShapeMismatch);
    }
    let total = schedule.iter().map(|&c| c + 1).max().unwrap_or(0);
    if total == 0 {
        return Ok(1);
    }
    let busy = busy_boundaries(schedule, latency, total);
    let mut max_gap = 0u32;
    let mut last = 0u32;
    for t in 1..=total {
        if !busy[t as usize] {
            max_gap = max_gap.max(t - last);
            last = t;
        }
    }
    Ok(max_gap.max(1))
}

/// Encodes each segment of a split schedule as its own per-PE
/// [`ConfigImage`] — the byte streams a refill actually loads. Segment
/// cycles are rebased to the segment start, so each image's depth equals
/// the segment's depth and a single-segment plan reproduces the unsplit
/// [`encode_context`] image byte for byte.
///
/// # Errors
///
/// Propagates [`EncodeError`] field-width violations from the encoder.
pub fn encode_segments(
    ctx: &ConfigContext,
    schedule: &[u32],
    bindings: &[Option<SharedResourceId>],
    arch: &rsp_arch::RspArchitecture,
    plan: &RefillPlan,
) -> Result<Vec<ConfigImage>, EncodeError> {
    if schedule.len() != ctx.instances().len() || bindings.len() != ctx.instances().len() {
        return Err(EncodeError::ShapeMismatch);
    }
    let mut images = Vec::with_capacity(plan.segments().len());
    for seg in plan.segments() {
        let mut seg_cycles = Vec::new();
        let mut seg_bindings = Vec::new();
        let mut keep: Vec<u32> = Vec::new();
        for (i, &c) in schedule.iter().enumerate() {
            if c >= seg.start_cycle && c < seg.end_cycle {
                seg_cycles.push(c - seg.start_cycle);
                seg_bindings.push(bindings[i]);
                keep.push(i as u32);
            }
        }
        // Rebuild a context view holding only this segment's instances?
        // Not needed: encode directly from the kept instances by reusing
        // the full context with a masked schedule would misplace words,
        // so encode via a dense buffer matching encode_context's layout.
        images.push(encode_segment(
            ctx,
            &keep,
            &seg_cycles,
            &seg_bindings,
            arch,
            seg.depth() as usize,
        )?);
    }
    Ok(images)
}

/// Encodes the instances named by `keep` (with segment-relative cycles)
/// into one image of `depth` contexts per PE, by delegating to
/// [`encode_context`] over a schedule that parks every other instance in
/// its own original slot of a scratch copy. To avoid duplicating the
/// word-encoding logic, this builds a full-length schedule where
/// non-segment instances are temporarily assigned distinct cycles beyond
/// `depth` and the resulting image is truncated back to `depth`.
fn encode_segment(
    ctx: &ConfigContext,
    keep: &[u32],
    seg_cycles: &[u32],
    seg_bindings: &[Option<SharedResourceId>],
    arch: &rsp_arch::RspArchitecture,
    depth: usize,
) -> Result<ConfigImage, EncodeError> {
    // Full-length scratch schedule: segment instances at their rebased
    // cycles, everything else pushed past the segment so the words land
    // outside the truncated window. Parking cycles must not collide on a
    // (PE, cycle) slot; reusing each instance's original cycle offset
    // past the window preserves the no-collision property of the source
    // schedule.
    let n = ctx.instances().len();
    let mut scratch = vec![0u32; n];
    let mut bindings = vec![None; n];
    let park_base = depth as u32;
    for (i, inst) in ctx.instances().iter().enumerate() {
        scratch[i] = park_base + ctx.cycle_of(inst.id);
    }
    for ((&i, &c), &b) in keep.iter().zip(seg_cycles).zip(seg_bindings) {
        scratch[i as usize] = c;
        bindings[i as usize] = b;
    }
    let full = encode_context(ctx, &scratch, &bindings, arch)?;
    Ok(full.truncated(depth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapOptions};
    use rsp_arch::presets;
    use rsp_kernel::suite;

    fn ctx_for(kernel: &rsp_kernel::Kernel) -> ConfigContext {
        map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap()
    }

    #[test]
    fn fitting_schedule_is_single_segment() {
        let ctx = ctx_for(&suite::mvm());
        let plan = split_schedule(&ctx, ctx.cycles(), |_| 1, 256).unwrap();
        assert!(!plan.is_split());
        assert_eq!(plan.refill_count(), 0);
        assert_eq!(plan.total_refill_cycles(), 0);
        assert_eq!(plan.elapsed_cycles(), ctx.total_cycles());
        assert_eq!(plan.stalled_schedule(ctx.cycles()), ctx.cycles());
    }

    #[test]
    fn split_segments_cover_schedule_and_respect_depth() {
        let ctx = ctx_for(&suite::sad());
        let depth = 8u32;
        let plan = split_schedule(&ctx, ctx.cycles(), |_| 1, depth).unwrap();
        assert!(plan.is_split());
        let segs = plan.segments();
        assert_eq!(segs[0].start_cycle, 0);
        assert_eq!(segs.last().unwrap().end_cycle, ctx.total_cycles());
        for w in segs.windows(2) {
            assert_eq!(w[0].end_cycle, w[1].start_cycle, "contiguous");
        }
        for (k, s) in segs.iter().enumerate() {
            assert!(s.depth() >= 1 && s.depth() <= depth);
            if k == 0 {
                assert_eq!(s.refill_cycles, 0, "initial load is free");
            } else {
                assert_eq!(s.refill_cycles, refill_cycles_for_depth(s.depth()));
            }
        }
    }

    #[test]
    fn refill_cost_derives_from_config_image_bytes() {
        // depth words x 8 bytes / 8 bytes-per-cycle = depth cycles.
        assert_eq!(refill_cycles_for_depth(17), 17);
        let seg = RefillSegment {
            start_cycle: 0,
            end_cycle: 10,
            refill_cycles: 0,
        };
        assert_eq!(seg.per_pe_bytes(), 10 * CONFIG_WORD_BYTES);
    }

    #[test]
    fn stalled_schedule_shifts_segments_by_cumulative_refill() {
        let ctx = ctx_for(&suite::sad());
        let plan = split_schedule(&ctx, ctx.cycles(), |_| 1, 16).unwrap();
        let stalled = plan.stalled_schedule(ctx.cycles());
        // Order-preserving and non-compressing.
        for (i, (&a, &b)) in ctx.cycles().iter().zip(&stalled).enumerate() {
            assert!(b >= a, "instance {i}");
        }
        let max = stalled.iter().map(|&c| c + 1).max().unwrap();
        assert_eq!(max, plan.elapsed_cycles());
        // Stall windows tile exactly the added cycles.
        let total: u32 = plan.stall_windows().iter().map(|&(_, l)| l).sum();
        assert_eq!(total, plan.total_refill_cycles());
    }

    #[test]
    fn cuts_never_cross_in_flight_operations() {
        // Give every instance a 3-cycle latency: boundaries inside any
        // op's flight window must be rejected as cut points.
        let ctx = ctx_for(&suite::mvm());
        let plan = split_schedule(&ctx, ctx.cycles(), |_| 3, 16).unwrap();
        for s in plan.segments().iter().skip(1) {
            let t = s.start_cycle;
            for (i, &c) in ctx.cycles().iter().enumerate() {
                let lat = 3u32;
                assert!(
                    !(c < t && c + lat > t),
                    "instance {i} in flight across cut at {t}"
                );
            }
        }
    }

    #[test]
    fn unsplittable_window_reported() {
        // A dataflow kernel saturates early cycles; with latency longer
        // than the cache window every boundary is busy.
        let ctx = ctx_for(&suite::matmul(8));
        let err = split_schedule(&ctx, ctx.cycles(), |_| 8, 4).unwrap_err();
        assert!(matches!(err, SplitError::NoLegalCut { .. }));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let ctx = ctx_for(&suite::mvm());
        let err = split_schedule(&ctx, &[0, 1], |_| 1, 256).unwrap_err();
        assert_eq!(err, SplitError::ShapeMismatch);
    }

    #[test]
    fn single_segment_encoding_is_byte_identical_to_unsplit() {
        let arch = presets::base_8x8();
        let ctx = ctx_for(&suite::mvm());
        let bindings = vec![None; ctx.instances().len()];
        let plan = split_schedule(&ctx, ctx.cycles(), |_| 1, 256).unwrap();
        assert!(!plan.is_split());
        let whole = encode_context(&ctx, ctx.cycles(), &bindings, &arch).unwrap();
        let segs = encode_segments(&ctx, ctx.cycles(), &bindings, &arch, &plan).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0], whole);
    }

    #[test]
    fn split_segment_words_match_unsplit_image() {
        // Every (PE, cycle) word of every segment equals the word at the
        // absolute cycle of the unsplit image — splitting reorders
        // nothing, it only repackages.
        let arch = presets::base_8x8();
        let ctx = ctx_for(&suite::sad());
        let bindings = vec![None; ctx.instances().len()];
        let plan = split_schedule(&ctx, ctx.cycles(), |_| 1, 16).unwrap();
        assert!(plan.is_split());
        let whole = encode_context(&ctx, ctx.cycles(), &bindings, &arch).unwrap();
        let segs = encode_segments(&ctx, ctx.cycles(), &bindings, &arch, &plan).unwrap();
        assert_eq!(segs.len(), plan.segments().len());
        let total_bytes: usize = segs.iter().map(ConfigImage::bytes).sum();
        assert_eq!(total_bytes, whole.bytes());
        for (seg, img) in plan.segments().iter().zip(&segs) {
            assert_eq!(img.depth() as u32, seg.depth());
            for pe in ctx.geometry().iter() {
                for c in 0..seg.depth() {
                    assert_eq!(
                        img.word(pe, c as usize),
                        whole.word(pe, (seg.start_cycle + c) as usize),
                        "{pe} cycle {c} of segment at {}",
                        seg.start_cycle
                    );
                }
            }
        }
    }
}
