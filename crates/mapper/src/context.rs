//! Configuration contexts: the scheduled operation instances of one kernel
//! on one array.
//!
//! A [`ConfigContext`] is the mapper's output and the unit the RSP flow
//! rearranges: every body/tail node of every element/step becomes one
//! [`OpInstance`] pinned to a PE, with a base schedule assigning each
//! instance a cycle. Data dependences are resolved to instance ids, and
//! memory accesses to concrete addresses, so downstream passes (RSP
//! rearrangement, simulation) never re-interpret the kernel.

use rsp_arch::{ArrayGeometry, BusSpec, OpKind, PeId};
use rsp_kernel::MappingStyle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an operation instance within its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

impl InstanceId {
    /// Position in [`ConfigContext::instances`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A value operand resolved to the instance graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrcOperand {
    /// Primary value of another instance.
    Inst(InstanceId),
    /// Secondary word of a dual-load instance.
    PairOf(InstanceId),
    /// Immediate from the configuration context.
    Const(i32),
    /// Loop-invariant parameter (index into the kernel's parameters).
    Param(u32),
}

/// A concrete memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Array index in the kernel's declarations.
    pub array: u32,
    /// Word address within the array.
    pub addr: u32,
}

/// One scheduled operation instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpInstance {
    /// This instance's id (equals its position).
    pub id: InstanceId,
    /// Element index in the kernel's iteration space.
    pub element: u32,
    /// Step index; tail instances carry `step == kernel.steps()`.
    pub step: u32,
    /// Node index within the body (or tail) DFG.
    pub node: u32,
    /// Whether the instance comes from the tail graph.
    pub is_tail: bool,
    /// Operation kind.
    pub op: OpKind,
    /// The PE executing this instance.
    pub pe: PeId,
    /// Value operands.
    pub operands: Vec<SrcOperand>,
    /// Words loaded in this cycle (one or two for loads, empty otherwise).
    pub loads: Vec<MemAccess>,
    /// Word stored (stores only).
    pub store: Option<MemAccess>,
    /// Deduplicated data predecessors.
    pub preds: Vec<InstanceId>,
}

impl OpInstance {
    /// Row-bus words this instance moves in its issue cycle.
    pub fn bus_read_words(&self) -> usize {
        self.loads.len()
    }

    /// Whether this instance writes memory.
    pub fn is_store(&self) -> bool {
        self.store.is_some()
    }
}

/// Word-packed per-cycle demand of a context for one operation class.
///
/// For each schedule cycle with at least one matching instance, the
/// `(row, col) → count` map is stored as a stack of **bit planes**: plane
/// `p` holds bit `p` of every cell's count, one `u64` word per 64
/// columns, rows contiguous within a plane. A cell's count is
/// `Σₚ 2ᵖ · bitₚ(row, col)`; with one operation per PE per cycle (the
/// mapper's normal output) a single plane suffices and the planes
/// dimension degenerates to a plain bitset.
///
/// This is the exploration-side replacement for rebuilding a dense
/// `cycles × rows × cols` histogram per candidate architecture: the
/// profile depends only on the context (not on the sharing plan), is
/// built once, and reductions over it are branch-free word operations —
/// a row's demand total is a popcount over `⌈cols/64⌉` words per plane
/// ([`CycleView::row_count`]), not a scan over sparse cells.
///
/// Unlike the sparse cell list this replaces, the packed form also keeps
/// each non-empty cycle's **schedule cycle index**
/// ([`CycleDemand::cycle_ids`]): the slack-aware stall bound in
/// `rsp_core::estimate` needs to know *when* demand occurs, not just how
/// much, to credit later idle capacity against earlier oversubscribed
/// cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleDemand {
    rows: usize,
    cols: usize,
    /// Words per row of one plane: `⌈cols / 64⌉`.
    words_per_row: usize,
    /// Bit planes per cycle: enough for the largest cell count (≥ 1
    /// whenever any cycle is non-empty).
    planes: usize,
    /// Schedule cycle index of each non-empty cycle, ascending.
    cycle_ids: Vec<u32>,
    /// Total demand of each non-empty cycle (parallel to `cycle_ids`).
    totals: Vec<u32>,
    /// Packed planes, laid out `[cycle][plane][row][word]`.
    bits: Vec<u64>,
}

impl CycleDemand {
    /// Array rows of the profiled context.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns of the profiled context.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether no instance matched the profiled class.
    pub fn is_empty(&self) -> bool {
        self.cycle_ids.is_empty()
    }

    /// Total matching instances across the whole schedule.
    pub fn total(&self) -> u32 {
        self.totals.iter().sum()
    }

    /// Schedule cycle indices of the non-empty cycles, ascending.
    pub fn cycle_ids(&self) -> &[u32] {
        &self.cycle_ids
    }

    /// Per-cycle totals of the non-empty cycles (parallel to
    /// [`CycleDemand::cycle_ids`]).
    pub fn cycle_totals(&self) -> &[u32] {
        &self.totals
    }

    /// Words of one cycle's packed planes.
    fn cycle_words(&self) -> usize {
        self.planes * self.rows * self.words_per_row
    }

    /// Iterates the non-empty cycles as [`CycleView`]s, in schedule
    /// order.
    pub fn cycles(&self) -> impl Iterator<Item = CycleView<'_>> {
        let stride = self.cycle_words();
        self.cycle_ids
            .iter()
            .zip(&self.totals)
            .enumerate()
            .map(move |(i, (&cycle, &total))| CycleView {
                demand: self,
                base: i * stride,
                cycle,
                total,
            })
    }
}

/// One non-empty cycle of a [`CycleDemand`]: a borrowed window over the
/// packed planes with branch-free reduction accessors.
#[derive(Debug, Clone, Copy)]
pub struct CycleView<'a> {
    demand: &'a CycleDemand,
    /// Word offset of this cycle's planes in `demand.bits`.
    base: usize,
    cycle: u32,
    total: u32,
}

impl CycleView<'_> {
    /// Schedule cycle index of this demand cycle.
    pub fn cycle(&self) -> u32 {
        self.cycle
    }

    /// Total demand issued in this cycle across the whole array.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Word offset of `row` within plane `p` of this cycle.
    fn row_base(&self, p: usize, row: usize) -> usize {
        self.base + (p * self.demand.rows + row) * self.demand.words_per_row
    }

    /// Demand total of one row: `Σₚ 2ᵖ · popcount(planeₚ[row])`. Pure
    /// word arithmetic — no per-cell branches, no scratch.
    pub fn row_count(&self, row: usize) -> u32 {
        let wpr = self.demand.words_per_row;
        let mut total = 0u32;
        for p in 0..self.demand.planes {
            let start = self.row_base(p, row);
            let ones: u32 = self.demand.bits[start..start + wpr]
                .iter()
                .map(|w| w.count_ones())
                .sum();
            total += ones << p;
        }
        total
    }

    /// Demand of one `(row, col)` cell.
    pub fn count(&self, row: usize, col: usize) -> u32 {
        let (word, bit) = (col / 64, col % 64);
        let mut count = 0u32;
        for p in 0..self.demand.planes {
            count |= (((self.demand.bits[self.row_base(p, row) + word] >> bit) & 1) as u32) << p;
        }
        count
    }

    /// Visits every non-zero `(row, col, count)` cell in row-major order
    /// — the same order the dense histogram sweep visits cells, so greedy
    /// bank absorption over this walk reproduces it exactly. Occupied
    /// columns are found by `trailing_zeros` over the OR of the planes'
    /// words, so cost scales with non-zero cells, not `rows × cols`.
    pub fn for_each_cell<F: FnMut(u16, u16, u32)>(&self, mut f: F) {
        let wpr = self.demand.words_per_row;
        for row in 0..self.demand.rows {
            for word in 0..wpr {
                let mut occupied = 0u64;
                for p in 0..self.demand.planes {
                    occupied |= self.demand.bits[self.row_base(p, row) + word];
                }
                while occupied != 0 {
                    let bit = occupied.trailing_zeros() as usize;
                    let col = word * 64 + bit;
                    f(row as u16, col as u16, self.count(row, col));
                    occupied &= occupied - 1;
                }
            }
        }
    }
}

/// Peak per-row and total demand profile of a context (used by the RSP
/// exploration's upper-bound estimate and by Table 3's `Mult No`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandProfile {
    /// Maximum operations of the profiled kind issued in any single cycle
    /// across the whole array.
    pub max_per_cycle: usize,
    /// Maximum issued in any single (row, cycle).
    pub max_per_row_cycle: usize,
    /// Maximum issued in any single (column, cycle).
    pub max_per_col_cycle: usize,
    /// Total instances of the profiled kind.
    pub total: usize,
}

/// The scheduled mapping of one kernel onto one array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigContext {
    kernel_name: String,
    geometry: ArrayGeometry,
    buses: BusSpec,
    style: MappingStyle,
    initiation_interval: u32,
    instances: Vec<OpInstance>,
    cycles: Vec<u32>,
    total_cycles: u32,
}

impl ConfigContext {
    pub(crate) fn new(
        kernel_name: String,
        geometry: ArrayGeometry,
        buses: BusSpec,
        style: MappingStyle,
        initiation_interval: u32,
        instances: Vec<OpInstance>,
        cycles: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(instances.len(), cycles.len());
        let total_cycles = cycles.iter().map(|&c| c + 1).max().unwrap_or(0);
        Self {
            kernel_name,
            geometry,
            buses,
            style,
            initiation_interval,
            instances,
            cycles,
            total_cycles,
        }
    }

    /// Name of the mapped kernel.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Geometry of the target array.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Row-bus provisioning of the target array.
    pub fn buses(&self) -> BusSpec {
        self.buses
    }

    /// Mapping style that produced this context.
    pub fn style(&self) -> MappingStyle {
        self.style
    }

    /// Initiation interval: cycles between successive iterations on the
    /// same resources (dataflow) or the body length (lockstep).
    pub fn initiation_interval(&self) -> u32 {
        self.initiation_interval
    }

    /// All instances, id order.
    pub fn instances(&self) -> &[OpInstance] {
        &self.instances
    }

    /// One instance.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn instance(&self, id: InstanceId) -> &OpInstance {
        &self.instances[id.index()]
    }

    /// The base-schedule cycle of an instance.
    pub fn cycle_of(&self, id: InstanceId) -> u32 {
        self.cycles[id.index()]
    }

    /// The base schedule as a slice parallel to [`ConfigContext::instances`].
    pub fn cycles(&self) -> &[u32] {
        &self.cycles
    }

    /// Total cycles of the base schedule.
    pub fn total_cycles(&self) -> u32 {
        self.total_cycles
    }

    /// Demand profile of operations executing on functional unit kinds
    /// selected by `pred` (e.g. multiplications).
    pub fn demand_profile<F: Fn(OpKind) -> bool>(&self, pred: F) -> DemandProfile {
        let rows = self.geometry.rows();
        let cols = self.geometry.cols();
        let t = self.total_cycles as usize;
        let mut per_cycle = vec![0usize; t];
        let mut per_row = vec![0usize; t * rows];
        let mut per_col = vec![0usize; t * cols];
        let mut total = 0;
        for (inst, &cyc) in self.instances.iter().zip(&self.cycles) {
            if pred(inst.op) {
                total += 1;
                let c = cyc as usize;
                per_cycle[c] += 1;
                per_row[c * rows + inst.pe.row] += 1;
                per_col[c * cols + inst.pe.col] += 1;
            }
        }
        DemandProfile {
            max_per_cycle: per_cycle.into_iter().max().unwrap_or(0),
            max_per_row_cycle: per_row.into_iter().max().unwrap_or(0),
            max_per_col_cycle: per_col.into_iter().max().unwrap_or(0),
            total,
        }
    }

    /// Demand profile of multiplications — Table 3's `Mult No` is
    /// `max_per_cycle`.
    pub fn mult_profile(&self) -> DemandProfile {
        self.demand_profile(|o| o == OpKind::Mult)
    }

    /// Packed per-cycle demand of operations selected by `pred` (e.g.
    /// all operations of one shared functional-unit kind). Storage scales
    /// with non-empty cycles (`⌈cols/64⌉ · rows · planes` words each),
    /// never with the full `cycles` dimension.
    pub fn cycle_demand<F: Fn(OpKind) -> bool>(&self, pred: F) -> CycleDemand {
        let mut points: Vec<(u32, u16, u16)> = self
            .instances
            .iter()
            .zip(&self.cycles)
            .filter(|(inst, _)| pred(inst.op))
            .map(|(inst, &cyc)| (cyc, inst.pe.row as u16, inst.pe.col as u16))
            .collect();
        points.sort_unstable();

        // Merge duplicate (cycle, row, col) points into counted cells and
        // collect per-cycle ids/totals.
        let mut cells: Vec<(u32, u16, u16, u32)> = Vec::new();
        let mut cycle_ids: Vec<u32> = Vec::new();
        let mut totals: Vec<u32> = Vec::new();
        for (cyc, row, col) in points {
            if cycle_ids.last() != Some(&cyc) {
                cycle_ids.push(cyc);
                totals.push(0);
            }
            *totals.last_mut().unwrap() += 1;
            match cells.last_mut() {
                Some(l) if (l.0, l.1, l.2) == (cyc, row, col) => l.3 += 1,
                _ => cells.push((cyc, row, col, 1)),
            }
        }

        let rows = self.geometry.rows();
        let cols = self.geometry.cols();
        let words_per_row = cols.div_ceil(64);
        let max_count = cells.iter().map(|&(.., n)| n).max().unwrap_or(0);
        let planes = (32 - max_count.leading_zeros()).max(1) as usize;
        let mut bits = vec![0u64; cycle_ids.len() * planes * rows * words_per_row];
        let mut cycle_index = 0usize;
        for (cyc, row, col, count) in cells {
            while cycle_ids[cycle_index] != cyc {
                cycle_index += 1;
            }
            let base = cycle_index * planes * rows * words_per_row;
            for p in 0..planes {
                if count >> p & 1 != 0 {
                    let idx = base + (p * rows + row as usize) * words_per_row + col as usize / 64;
                    bits[idx] |= 1u64 << (col % 64);
                }
            }
        }
        CycleDemand {
            rows,
            cols,
            words_per_row,
            planes,
            cycle_ids,
            totals,
            bits,
        }
    }

    /// Peak read-bus words on any (row, cycle) and peak store words on any
    /// (row, cycle): `(reads, writes)`. Values above the [`BusSpec`]
    /// capacities mean the schedule relies on operand-reuse/memory-sharing
    /// (ref. \[7\] of the paper) to fit the buses.
    pub fn bus_pressure(&self) -> (usize, usize) {
        let rows = self.geometry.rows();
        let t = self.total_cycles as usize;
        let mut reads = vec![0usize; t * rows];
        let mut writes = vec![0usize; t * rows];
        for (inst, &cyc) in self.instances.iter().zip(&self.cycles) {
            let idx = cyc as usize * rows + inst.pe.row;
            reads[idx] += inst.bus_read_words();
            writes[idx] += usize::from(inst.is_store());
        }
        (
            reads.into_iter().max().unwrap_or(0),
            writes.into_iter().max().unwrap_or(0),
        )
    }

    /// Renders a Fig. 2/6-style schedule table using an externally
    /// supplied schedule (pass [`ConfigContext::cycles`] for the base
    /// schedule, or a rearranged one).
    ///
    /// Lockstep contexts print one line per column (all PEs of a column
    /// execute identically); dataflow contexts print one line per PE.
    /// `annotate` receives each instance and may decorate its mnemonic
    /// (e.g. `1*`/`2*` for pipeline stages as in Fig. 6).
    pub fn render_schedule<F: Fn(&OpInstance) -> String>(
        &self,
        cycles: &[u32],
        annotate: F,
    ) -> String {
        assert_eq!(cycles.len(), self.instances.len());
        let total = cycles.iter().map(|&c| c + 1).max().unwrap_or(0) as usize;
        type LaneSelector = Box<dyn Fn(&OpInstance) -> bool>;
        let lanes: Vec<(String, LaneSelector)> = match self.style {
            MappingStyle::Lockstep => (0..self.geometry.cols())
                .map(|c| {
                    let name = format!("col#{}", c + 1);
                    let f: LaneSelector =
                        Box::new(move |i: &OpInstance| i.pe.col == c && i.pe.row == 0);
                    (name, f)
                })
                .collect(),
            MappingStyle::Dataflow => self
                .geometry
                .iter()
                .map(|pe| {
                    let name = format!("PE[{},{}]", pe.row, pe.col);
                    let f: LaneSelector = Box::new(move |i: &OpInstance| i.pe == pe);
                    (name, f)
                })
                .collect(),
        };

        let mut grid: Vec<Vec<String>> = vec![vec![String::new(); total]; lanes.len()];
        for (inst, &cyc) in self.instances.iter().zip(cycles) {
            for (li, (_, sel)) in lanes.iter().enumerate() {
                if sel(inst) {
                    let cell = &mut grid[li][cyc as usize];
                    if !cell.is_empty() {
                        cell.push('/');
                    }
                    cell.push_str(&annotate(inst));
                }
            }
        }

        let width = grid
            .iter()
            .flatten()
            .map(String::len)
            .chain(std::iter::once(4))
            .max()
            .unwrap();
        let mut out = String::new();
        out.push_str(&format!("{:>10} |", "cycle"));
        for t in 1..=total {
            out.push_str(&format!(" {t:>width$} |"));
        }
        out.push('\n');
        for (li, (name, _)) in lanes.iter().enumerate() {
            // Skip all-empty dataflow lanes to keep 8x8 printouts readable.
            if grid[li].iter().all(String::is_empty) {
                continue;
            }
            out.push_str(&format!("{name:>10} |"));
            for cell in &grid[li] {
                out.push_str(&format!(" {cell:>width$} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ConfigContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} ({} instances, {} cycles, {} style, II={})",
            self.kernel_name,
            self.geometry,
            self.instances.len(),
            self.total_cycles,
            self.style,
            self.initiation_interval
        )
    }
}
