//! Configuration contexts: the scheduled operation instances of one kernel
//! on one array.
//!
//! A [`ConfigContext`] is the mapper's output and the unit the RSP flow
//! rearranges: every body/tail node of every element/step becomes one
//! [`OpInstance`] pinned to a PE, with a base schedule assigning each
//! instance a cycle. Data dependences are resolved to instance ids, and
//! memory accesses to concrete addresses, so downstream passes (RSP
//! rearrangement, simulation) never re-interpret the kernel.

use rsp_arch::{ArrayGeometry, BusSpec, OpKind, PeId};
use rsp_kernel::MappingStyle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an operation instance within its context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

impl InstanceId {
    /// Position in [`ConfigContext::instances`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A value operand resolved to the instance graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrcOperand {
    /// Primary value of another instance.
    Inst(InstanceId),
    /// Secondary word of a dual-load instance.
    PairOf(InstanceId),
    /// Immediate from the configuration context.
    Const(i32),
    /// Loop-invariant parameter (index into the kernel's parameters).
    Param(u32),
}

/// A concrete memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Array index in the kernel's declarations.
    pub array: u32,
    /// Word address within the array.
    pub addr: u32,
}

/// One scheduled operation instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpInstance {
    /// This instance's id (equals its position).
    pub id: InstanceId,
    /// Element index in the kernel's iteration space.
    pub element: u32,
    /// Step index; tail instances carry `step == kernel.steps()`.
    pub step: u32,
    /// Node index within the body (or tail) DFG.
    pub node: u32,
    /// Whether the instance comes from the tail graph.
    pub is_tail: bool,
    /// Operation kind.
    pub op: OpKind,
    /// The PE executing this instance.
    pub pe: PeId,
    /// Value operands.
    pub operands: Vec<SrcOperand>,
    /// Words loaded in this cycle (one or two for loads, empty otherwise).
    pub loads: Vec<MemAccess>,
    /// Word stored (stores only).
    pub store: Option<MemAccess>,
    /// Deduplicated data predecessors.
    pub preds: Vec<InstanceId>,
}

impl OpInstance {
    /// Row-bus words this instance moves in its issue cycle.
    pub fn bus_read_words(&self) -> usize {
        self.loads.len()
    }

    /// Whether this instance writes memory.
    pub fn is_store(&self) -> bool {
        self.store.is_some()
    }
}

/// One non-empty `(row, col)` cell of a schedule cycle's demand for a
/// functional-unit kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandCell {
    /// PE row of the demanding instances.
    pub row: u16,
    /// PE column of the demanding instances.
    pub col: u16,
    /// Instances issued from this PE in this cycle.
    pub count: u32,
}

/// Sparse per-cycle demand of a context for one operation class: for each
/// schedule cycle with at least one matching instance, the non-zero
/// `(row, col, count)` cells in row-major order.
///
/// This is the exploration-side replacement for rebuilding a dense
/// `cycles × rows × cols` histogram per candidate architecture: the
/// profile depends only on the context (not on the sharing plan), is
/// built once, and each candidate then reduces it in
/// O(non-zero cells) instead of O(cycles × rows × cols).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleDemand {
    rows: usize,
    cols: usize,
    /// CSR offsets into `cells`, one entry per non-empty cycle plus a
    /// terminator.
    starts: Vec<u32>,
    cells: Vec<DemandCell>,
    /// Total demand of each non-empty cycle (parallel to `starts[..n-1]`).
    totals: Vec<u32>,
}

impl CycleDemand {
    /// Array rows of the profiled context.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns of the profiled context.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether no instance matched the profiled class.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total matching instances across the whole schedule.
    pub fn total(&self) -> u32 {
        self.totals.iter().sum()
    }

    /// Iterates the non-empty cycles as `(cells, cycle_total)` pairs, in
    /// schedule order. Cells within a cycle are in row-major order.
    pub fn cycles(&self) -> impl Iterator<Item = (&[DemandCell], u32)> {
        self.starts
            .windows(2)
            .zip(&self.totals)
            .map(|(w, &t)| (&self.cells[w[0] as usize..w[1] as usize], t))
    }

    /// Per-cycle totals of the non-empty cycles.
    pub fn cycle_totals(&self) -> &[u32] {
        &self.totals
    }

    /// Aggregates one cycle's cells (as yielded by
    /// [`CycleDemand::cycles`]) into per-row `(row, total)` pairs, in row
    /// order. Cells within a cycle are row-major, so rows group
    /// contiguously and the aggregation is a zero-allocation scan.
    ///
    /// This is the accessor behind the exploration engine's per-row
    /// residual lower bound: a row demanding `total` operations can draw
    /// at most `min(total, shr)` from its row bank, which is strictly
    /// tighter than crediting the full `shr` to every touched row.
    pub fn row_totals(cells: &[DemandCell]) -> RowTotals<'_> {
        RowTotals { cells }
    }

    /// Aggregates one cycle's cells into per-column `(col, total)` pairs,
    /// sorted by column, written into `out` (cleared first; its capacity
    /// is reused across calls). Columns repeat across rows within a
    /// cycle, so — unlike [`CycleDemand::row_totals`] — this needs a
    /// sort-and-merge over a caller-provided scratch buffer.
    pub fn col_totals(cells: &[DemandCell], out: &mut Vec<(u16, u32)>) {
        out.clear();
        for cell in cells {
            out.push((cell.col, cell.count));
        }
        out.sort_unstable_by_key(|&(col, _)| col);
        out.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
    }
}

/// Iterator over per-row `(row, total)` aggregates of one cycle's demand
/// cells. Created by [`CycleDemand::row_totals`].
#[derive(Debug, Clone)]
pub struct RowTotals<'a> {
    cells: &'a [DemandCell],
}

impl Iterator for RowTotals<'_> {
    type Item = (u16, u32);

    fn next(&mut self) -> Option<(u16, u32)> {
        let first = *self.cells.first()?;
        let run = self.cells.iter().take_while(|c| c.row == first.row).count();
        let total = self.cells[..run].iter().map(|c| c.count).sum();
        self.cells = &self.cells[run..];
        Some((first.row, total))
    }
}

/// Peak per-row and total demand profile of a context (used by the RSP
/// exploration's upper-bound estimate and by Table 3's `Mult No`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandProfile {
    /// Maximum operations of the profiled kind issued in any single cycle
    /// across the whole array.
    pub max_per_cycle: usize,
    /// Maximum issued in any single (row, cycle).
    pub max_per_row_cycle: usize,
    /// Maximum issued in any single (column, cycle).
    pub max_per_col_cycle: usize,
    /// Total instances of the profiled kind.
    pub total: usize,
}

/// The scheduled mapping of one kernel onto one array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigContext {
    kernel_name: String,
    geometry: ArrayGeometry,
    buses: BusSpec,
    style: MappingStyle,
    initiation_interval: u32,
    instances: Vec<OpInstance>,
    cycles: Vec<u32>,
    total_cycles: u32,
}

impl ConfigContext {
    pub(crate) fn new(
        kernel_name: String,
        geometry: ArrayGeometry,
        buses: BusSpec,
        style: MappingStyle,
        initiation_interval: u32,
        instances: Vec<OpInstance>,
        cycles: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(instances.len(), cycles.len());
        let total_cycles = cycles.iter().map(|&c| c + 1).max().unwrap_or(0);
        Self {
            kernel_name,
            geometry,
            buses,
            style,
            initiation_interval,
            instances,
            cycles,
            total_cycles,
        }
    }

    /// Name of the mapped kernel.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Geometry of the target array.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Row-bus provisioning of the target array.
    pub fn buses(&self) -> BusSpec {
        self.buses
    }

    /// Mapping style that produced this context.
    pub fn style(&self) -> MappingStyle {
        self.style
    }

    /// Initiation interval: cycles between successive iterations on the
    /// same resources (dataflow) or the body length (lockstep).
    pub fn initiation_interval(&self) -> u32 {
        self.initiation_interval
    }

    /// All instances, id order.
    pub fn instances(&self) -> &[OpInstance] {
        &self.instances
    }

    /// One instance.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn instance(&self, id: InstanceId) -> &OpInstance {
        &self.instances[id.index()]
    }

    /// The base-schedule cycle of an instance.
    pub fn cycle_of(&self, id: InstanceId) -> u32 {
        self.cycles[id.index()]
    }

    /// The base schedule as a slice parallel to [`ConfigContext::instances`].
    pub fn cycles(&self) -> &[u32] {
        &self.cycles
    }

    /// Total cycles of the base schedule.
    pub fn total_cycles(&self) -> u32 {
        self.total_cycles
    }

    /// Demand profile of operations executing on functional unit kinds
    /// selected by `pred` (e.g. multiplications).
    pub fn demand_profile<F: Fn(OpKind) -> bool>(&self, pred: F) -> DemandProfile {
        let rows = self.geometry.rows();
        let cols = self.geometry.cols();
        let t = self.total_cycles as usize;
        let mut per_cycle = vec![0usize; t];
        let mut per_row = vec![0usize; t * rows];
        let mut per_col = vec![0usize; t * cols];
        let mut total = 0;
        for (inst, &cyc) in self.instances.iter().zip(&self.cycles) {
            if pred(inst.op) {
                total += 1;
                let c = cyc as usize;
                per_cycle[c] += 1;
                per_row[c * rows + inst.pe.row] += 1;
                per_col[c * cols + inst.pe.col] += 1;
            }
        }
        DemandProfile {
            max_per_cycle: per_cycle.into_iter().max().unwrap_or(0),
            max_per_row_cycle: per_row.into_iter().max().unwrap_or(0),
            max_per_col_cycle: per_col.into_iter().max().unwrap_or(0),
            total,
        }
    }

    /// Demand profile of multiplications — Table 3's `Mult No` is
    /// `max_per_cycle`.
    pub fn mult_profile(&self) -> DemandProfile {
        self.demand_profile(|o| o == OpKind::Mult)
    }

    /// Sparse per-cycle demand of operations selected by `pred` (e.g. all
    /// operations of one shared functional-unit kind). Allocation scales
    /// with the number of matching instances, never with
    /// `cycles × rows × cols`.
    pub fn cycle_demand<F: Fn(OpKind) -> bool>(&self, pred: F) -> CycleDemand {
        let mut points: Vec<(u32, u16, u16)> = self
            .instances
            .iter()
            .zip(&self.cycles)
            .filter(|(inst, _)| pred(inst.op))
            .map(|(inst, &cyc)| (cyc, inst.pe.row as u16, inst.pe.col as u16))
            .collect();
        // Row-major order within each cycle mirrors the dense histogram
        // sweep, so greedy bank-absorption over these cells reproduces it
        // exactly.
        points.sort_unstable();

        let mut starts = vec![0u32];
        let mut cells: Vec<DemandCell> = Vec::new();
        let mut totals: Vec<u32> = Vec::new();
        let mut current_cycle = None;
        for (cyc, row, col) in points {
            if current_cycle != Some(cyc) {
                if current_cycle.is_some() {
                    starts.push(cells.len() as u32);
                }
                current_cycle = Some(cyc);
                totals.push(0);
            }
            *totals.last_mut().unwrap() += 1;
            let cycle_start = starts.last().map_or(0, |&s| s as usize);
            let merged = cycle_start < cells.len()
                && cells.last().is_some_and(|l| l.row == row && l.col == col);
            if merged {
                cells.last_mut().unwrap().count += 1;
            } else {
                cells.push(DemandCell { row, col, count: 1 });
            }
        }
        if current_cycle.is_some() {
            starts.push(cells.len() as u32);
        }
        CycleDemand {
            rows: self.geometry.rows(),
            cols: self.geometry.cols(),
            starts,
            cells,
            totals,
        }
    }

    /// Peak read-bus words on any (row, cycle) and peak store words on any
    /// (row, cycle): `(reads, writes)`. Values above the [`BusSpec`]
    /// capacities mean the schedule relies on operand-reuse/memory-sharing
    /// (ref. \[7\] of the paper) to fit the buses.
    pub fn bus_pressure(&self) -> (usize, usize) {
        let rows = self.geometry.rows();
        let t = self.total_cycles as usize;
        let mut reads = vec![0usize; t * rows];
        let mut writes = vec![0usize; t * rows];
        for (inst, &cyc) in self.instances.iter().zip(&self.cycles) {
            let idx = cyc as usize * rows + inst.pe.row;
            reads[idx] += inst.bus_read_words();
            writes[idx] += usize::from(inst.is_store());
        }
        (
            reads.into_iter().max().unwrap_or(0),
            writes.into_iter().max().unwrap_or(0),
        )
    }

    /// Renders a Fig. 2/6-style schedule table using an externally
    /// supplied schedule (pass [`ConfigContext::cycles`] for the base
    /// schedule, or a rearranged one).
    ///
    /// Lockstep contexts print one line per column (all PEs of a column
    /// execute identically); dataflow contexts print one line per PE.
    /// `annotate` receives each instance and may decorate its mnemonic
    /// (e.g. `1*`/`2*` for pipeline stages as in Fig. 6).
    pub fn render_schedule<F: Fn(&OpInstance) -> String>(
        &self,
        cycles: &[u32],
        annotate: F,
    ) -> String {
        assert_eq!(cycles.len(), self.instances.len());
        let total = cycles.iter().map(|&c| c + 1).max().unwrap_or(0) as usize;
        type LaneSelector = Box<dyn Fn(&OpInstance) -> bool>;
        let lanes: Vec<(String, LaneSelector)> = match self.style {
            MappingStyle::Lockstep => (0..self.geometry.cols())
                .map(|c| {
                    let name = format!("col#{}", c + 1);
                    let f: LaneSelector =
                        Box::new(move |i: &OpInstance| i.pe.col == c && i.pe.row == 0);
                    (name, f)
                })
                .collect(),
            MappingStyle::Dataflow => self
                .geometry
                .iter()
                .map(|pe| {
                    let name = format!("PE[{},{}]", pe.row, pe.col);
                    let f: LaneSelector = Box::new(move |i: &OpInstance| i.pe == pe);
                    (name, f)
                })
                .collect(),
        };

        let mut grid: Vec<Vec<String>> = vec![vec![String::new(); total]; lanes.len()];
        for (inst, &cyc) in self.instances.iter().zip(cycles) {
            for (li, (_, sel)) in lanes.iter().enumerate() {
                if sel(inst) {
                    let cell = &mut grid[li][cyc as usize];
                    if !cell.is_empty() {
                        cell.push('/');
                    }
                    cell.push_str(&annotate(inst));
                }
            }
        }

        let width = grid
            .iter()
            .flatten()
            .map(String::len)
            .chain(std::iter::once(4))
            .max()
            .unwrap();
        let mut out = String::new();
        out.push_str(&format!("{:>10} |", "cycle"));
        for t in 1..=total {
            out.push_str(&format!(" {t:>width$} |"));
        }
        out.push('\n');
        for (li, (name, _)) in lanes.iter().enumerate() {
            // Skip all-empty dataflow lanes to keep 8x8 printouts readable.
            if grid[li].iter().all(String::is_empty) {
                continue;
            }
            out.push_str(&format!("{name:>10} |"));
            for cell in &grid[li] {
                out.push_str(&format!(" {cell:>width$} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ConfigContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} ({} instances, {} cycles, {} style, II={})",
            self.kernel_name,
            self.geometry,
            self.instances.len(),
            self.total_cycles,
            self.style,
            self.initiation_interval
        )
    }
}
