//! # rsp-mapper — loop-pipelining mapper for the RSP CGRA template
//!
//! Rebuilds the mapping layer the paper takes from refs. \[7\]/\[8\]
//! (Lee/Choi/Dutt): kernels become *configuration contexts* — per-PE,
//! per-cycle operation assignments — under loop-pipelined execution.
//!
//! Two placement policies cover the paper's kernel suite:
//!
//! * [`MappingStyle::Lockstep`](rsp_kernel::MappingStyle) — one element per
//!   PE, columns staggered by one cycle: reproduces Fig. 2 cycle-for-cycle
//!   on the matrix-multiplication kernel.
//! * [`MappingStyle::Dataflow`](rsp_kernel::MappingStyle) — one element per
//!   row, modulo-scheduled over the row's PEs: used by the
//!   multiplication-dense kernels that exhibit RS stalls in Tables 4/5.
//!
//! The output [`ConfigContext`] carries resolved operands, concrete memory
//! addresses and the dependence graph, ready for RSP rearrangement
//! (`rsp-core`) and cycle-accurate simulation (`rsp-sim`).
//!
//! # Configuration-cache refill
//!
//! Schedules deeper than the per-PE configuration cache are no longer a
//! feasibility cliff: [`split_schedule`] partitions any schedule into
//! cache-sized segments at legal cut points (no operation in flight — and
//! therefore no bus transfer or shared-resource binding — across a cut)
//! and returns a [`RefillPlan`] with the per-PE reload cost of every
//! segment, derived from the [`ConfigImage`] encoding: a segment of `d`
//! contexts occupies `d × 8` bytes per PE and reloads at 8 bytes per PE
//! per stall cycle, so its refill stalls the array `d` cycles. The first
//! segment's load is the initial configuration load the unsplit model
//! already assumes, so only later segments charge stalls. See the
//! [`refill`](split_schedule) module docs for the full model.
//!
//! # Examples
//!
//! ```
//! use rsp_arch::presets;
//! use rsp_kernel::suite;
//! use rsp_mapper::{map, MapOptions};
//!
//! let base = presets::fig1_4x4();
//! let ctx = map(base.base(), &suite::matmul(4), &MapOptions::default())?;
//! // Fig. 2: two columns multiply simultaneously at the peak.
//! assert_eq!(ctx.mult_profile().max_per_cycle, 8);
//! # Ok::<(), rsp_mapper::MapError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod build;
mod context;
mod dataflow;
mod encode;
mod error;
mod lockstep;
mod mapper;
mod refill;
mod validate;

pub use context::{
    ConfigContext, CycleDemand, CycleView, DemandProfile, InstanceId, MemAccess, OpInstance,
    SrcOperand,
};
pub use encode::{encode_context, ConfigImage, ConfigWord, EncodeError};
pub use error::{MapError, ScheduleViolation};
pub use mapper::{map, MapOptions};
pub use refill::{
    encode_segments, min_splittable_depth, refill_cycles_for_depth, split_schedule, RefillPlan,
    RefillSegment, SplitError, CONFIG_WORD_BYTES, REFILL_BYTES_PER_CYCLE,
};
pub use validate::{check_buses, validate_base_schedule, validate_schedule};
