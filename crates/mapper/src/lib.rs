//! # rsp-mapper — loop-pipelining mapper for the RSP CGRA template
//!
//! Rebuilds the mapping layer the paper takes from refs. \[7\]/\[8\]
//! (Lee/Choi/Dutt): kernels become *configuration contexts* — per-PE,
//! per-cycle operation assignments — under loop-pipelined execution.
//!
//! Two placement policies cover the paper's kernel suite:
//!
//! * [`MappingStyle::Lockstep`](rsp_kernel::MappingStyle) — one element per
//!   PE, columns staggered by one cycle: reproduces Fig. 2 cycle-for-cycle
//!   on the matrix-multiplication kernel.
//! * [`MappingStyle::Dataflow`](rsp_kernel::MappingStyle) — one element per
//!   row, modulo-scheduled over the row's PEs: used by the
//!   multiplication-dense kernels that exhibit RS stalls in Tables 4/5.
//!
//! The output [`ConfigContext`] carries resolved operands, concrete memory
//! addresses and the dependence graph, ready for RSP rearrangement
//! (`rsp-core`) and cycle-accurate simulation (`rsp-sim`).
//!
//! # Examples
//!
//! ```
//! use rsp_arch::presets;
//! use rsp_kernel::suite;
//! use rsp_mapper::{map, MapOptions};
//!
//! let base = presets::fig1_4x4();
//! let ctx = map(base.base(), &suite::matmul(4), &MapOptions::default())?;
//! // Fig. 2: two columns multiply simultaneously at the peak.
//! assert_eq!(ctx.mult_profile().max_per_cycle, 8);
//! # Ok::<(), rsp_mapper::MapError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod build;
mod context;
mod dataflow;
mod encode;
mod error;
mod lockstep;
mod mapper;
mod validate;

pub use context::{
    ConfigContext, CycleDemand, DemandCell, DemandProfile, InstanceId, MemAccess, OpInstance,
    RowTotals, SrcOperand,
};
pub use encode::{encode_context, ConfigImage, ConfigWord, EncodeError};
pub use error::{MapError, ScheduleViolation};
pub use mapper::{map, MapOptions};
pub use validate::{check_buses, validate_base_schedule, validate_schedule};
