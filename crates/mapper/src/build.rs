//! Shared instance-graph construction.
//!
//! Both mapping policies lay instances out in the same canonical id order
//! (all steps of element 0, its tail, then element 1, …) so downstream
//! passes can index instances arithmetically regardless of policy.

use crate::context::{InstanceId, MemAccess, OpInstance, SrcOperand};
use rsp_arch::PeId;
use rsp_kernel::{Dfg, Kernel, Operand};

/// Canonical instance-id layout of a kernel's instance graph.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IdLayout {
    body_len: usize,
    tail_len: usize,
    steps: usize,
}

impl IdLayout {
    pub(crate) fn of(kernel: &Kernel) -> Self {
        Self {
            body_len: kernel.body().len(),
            tail_len: kernel.tail().map_or(0, Dfg::len),
            steps: kernel.steps(),
        }
    }

    /// Instances per element.
    pub(crate) fn block(&self) -> usize {
        self.steps * self.body_len + self.tail_len
    }

    pub(crate) fn body_id(&self, element: usize, step: usize, node: usize) -> InstanceId {
        InstanceId((element * self.block() + step * self.body_len + node) as u32)
    }

    pub(crate) fn tail_id(&self, element: usize, node: usize) -> InstanceId {
        InstanceId((element * self.block() + self.steps * self.body_len + node) as u32)
    }
}

/// Builds the full instance graph with a per-(element, step, node)
/// placement function. Returns instances in canonical id order.
pub(crate) fn build_instances<P>(kernel: &Kernel, place: P) -> Vec<OpInstance>
where
    P: Fn(usize, usize, usize, bool) -> PeId,
{
    let layout = IdLayout::of(kernel);
    let d = kernel.elem_divisor();
    let mut out = Vec::with_capacity(kernel.elements() * layout.block());

    for e in 0..kernel.elements() {
        for s in 0..kernel.steps() {
            for (nid, node) in kernel.body().iter() {
                let id = layout.body_id(e, s, nid.index());
                debug_assert_eq!(id.index(), out.len());
                out.push(make_instance(
                    kernel,
                    &layout,
                    e,
                    s,
                    nid.index(),
                    node,
                    false,
                    id,
                    place(e, s, nid.index(), false),
                    d,
                ));
            }
        }
        if let Some(tail) = kernel.tail() {
            for (nid, node) in tail.iter() {
                let id = layout.tail_id(e, nid.index());
                debug_assert_eq!(id.index(), out.len());
                out.push(make_instance(
                    kernel,
                    &layout,
                    e,
                    kernel.steps(),
                    nid.index(),
                    node,
                    true,
                    id,
                    place(e, kernel.steps(), nid.index(), true),
                    d,
                ));
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn make_instance(
    kernel: &Kernel,
    layout: &IdLayout,
    e: usize,
    s: usize,
    node_idx: usize,
    node: &rsp_kernel::Node,
    is_tail: bool,
    id: InstanceId,
    pe: PeId,
    d: usize,
) -> OpInstance {
    let addr_step = if is_tail { kernel.steps() - 1 } else { s };
    let mut operands = Vec::with_capacity(node.operands().len());
    let mut preds = Vec::new();

    for op in node.operands() {
        let src = match *op {
            Operand::Node(p) => {
                let pid = if is_tail {
                    layout.tail_id(e, p.index())
                } else {
                    layout.body_id(e, s, p.index())
                };
                preds.push(pid);
                SrcOperand::Inst(pid)
            }
            Operand::Pair(p) => {
                let pid = if is_tail {
                    layout.tail_id(e, p.index())
                } else {
                    layout.body_id(e, s, p.index())
                };
                preds.push(pid);
                SrcOperand::PairOf(pid)
            }
            Operand::Const(c) => SrcOperand::Const(c),
            Operand::Param(p) => SrcOperand::Param(p.index() as u32),
            Operand::Accum { node: n, init } => {
                if s == 0 {
                    SrcOperand::Const(init)
                } else {
                    let pid = layout.body_id(e, s - 1, n.index());
                    preds.push(pid);
                    SrcOperand::Inst(pid)
                }
            }
            Operand::Carry(c) => {
                let pid = layout.body_id(e, kernel.steps() - 1, c.index());
                preds.push(pid);
                SrcOperand::Inst(pid)
            }
        };
        operands.push(src);
    }
    preds.sort_unstable();
    preds.dedup();

    let mut loads = Vec::new();
    let mut store = None;
    if node.op() == rsp_arch::OpKind::Load {
        for a in [node.addr(), node.addr2()].into_iter().flatten() {
            loads.push(MemAccess {
                array: a.array.index() as u32,
                addr: a.eval(e, addr_step, d) as u32,
            });
        }
    } else if node.op() == rsp_arch::OpKind::Store {
        let a = node.addr().expect("validated store has addr");
        store = Some(MemAccess {
            array: a.array.index() as u32,
            addr: a.eval(e, addr_step, d) as u32,
        });
    }

    OpInstance {
        id,
        element: e as u32,
        step: s as u32,
        node: node_idx as u32,
        is_tail,
        op: node.op(),
        pe,
        operands,
        loads,
        store,
        preds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_kernel::suite;

    #[test]
    fn canonical_layout_is_dense() {
        let k = suite::matmul(3);
        let layout = IdLayout::of(&k);
        assert_eq!(layout.block(), 3 * 3 + 2);
        let insts = build_instances(&k, |_, _, _, _| PeId::new(0, 0));
        assert_eq!(insts.len(), k.elements() * layout.block());
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(inst.id.index(), i);
        }
    }

    #[test]
    fn accum_step0_is_const_later_steps_link() {
        let k = suite::matmul(2);
        let insts = build_instances(&k, |_, _, _, _| PeId::new(0, 0));
        // Body node 2 is the accumulating add.
        let acc0 = &insts[2];
        assert!(matches!(acc0.operands[1], SrcOperand::Const(0)));
        let acc1 = &insts[2 + 3];
        match acc1.operands[1] {
            SrcOperand::Inst(p) => assert_eq!(p.index(), 2),
            ref o => panic!("expected accumulator link, got {o:?}"),
        }
    }

    #[test]
    fn carry_links_to_last_step() {
        let k = suite::matmul(2);
        let insts = build_instances(&k, |_, _, _, _| PeId::new(0, 0));
        // Tail node 0 (the C-scale mult) carries from the last-step acc.
        let tail_mult = &insts[2 * 3]; // element 0: steps 0..1 (6 insts), tail at 6
        assert!(tail_mult.is_tail);
        match tail_mult.operands[0] {
            SrcOperand::Inst(p) => assert_eq!(p.index(), 3 + 2), // step 1, node 2
            ref o => panic!("expected carry link, got {o:?}"),
        }
    }

    #[test]
    fn loads_carry_concrete_addresses() {
        let k = suite::matmul(4);
        let insts = build_instances(&k, |_, _, _, _| PeId::new(0, 0));
        // Element 5 = Z(1,1); step 2 loads X[1,2] (addr 6) and Y[2,1] (addr 9).
        let layout = IdLayout::of(&k);
        let l = &insts[layout.body_id(5, 2, 0).index()];
        assert_eq!(l.loads.len(), 2);
        assert_eq!(l.loads[0].addr, 6);
        assert_eq!(l.loads[1].addr, 9);
    }

    #[test]
    fn stores_carry_concrete_addresses() {
        let k = suite::matmul(4);
        let insts = build_instances(&k, |_, _, _, _| PeId::new(0, 0));
        let layout = IdLayout::of(&k);
        let st = &insts[layout.tail_id(7, 1).index()];
        assert!(st.is_store());
        assert_eq!(st.store.unwrap().addr, 7);
    }
}
