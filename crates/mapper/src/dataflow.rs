//! Row-dataflow mapping: one element per row, operations spread over the
//! row's PEs, iterations modulo-pipelined.
//!
//! Used for bodies too large or too multiplication-dense for a single PE
//! (Hydro, State, 2D-FDCT, FFT). The body is modulo-scheduled once against
//! the row's resources — `cols` PE issue slots per cycle, the row's read
//! and write buses — at the smallest feasible initiation interval (II);
//! every row then runs `elements / rows` iterations with period II.
//!
//! Because several operations of one iteration execute in the same cycle
//! on different PEs of a row, multiplications *do* stack within a row —
//! which is exactly what makes these kernels contend for shared
//! multipliers (the RS#1/RSP#1 stall columns of Tables 4/5).

use crate::build::build_instances;
use crate::context::ConfigContext;
use crate::error::MapError;
use rsp_arch::{BaseArchitecture, OpKind, PeId};
use rsp_kernel::{Kernel, MappingStyle};

/// Multiplication-spread target per modulo slot: schedule at most this
/// many multiplications into one `(row, cycle mod II)` slot while slots
/// below the target remain (see `schedule_row`).
const MULT_SLOT_TARGET: usize = 2;

/// Modulo schedule of one body on one row.
#[derive(Debug, Clone)]
struct RowSchedule {
    ii: u32,
    col_of: Vec<usize>,
    time_of: Vec<u32>,
}

pub(crate) fn map_dataflow(
    base: &BaseArchitecture,
    kernel: &Kernel,
) -> Result<ConfigContext, MapError> {
    if kernel.steps() != 1 || kernel.tail().is_some() {
        return Err(MapError::BadDataflowKernel);
    }
    let geom = base.geometry();
    let (rows, cols) = (geom.rows(), geom.cols());
    let sched = schedule_row(kernel, cols, base)?;

    let place = |e: usize, _s: usize, n: usize, _tail: bool| -> PeId {
        PeId::new(e % rows, sched.col_of[n])
    };
    let instances = build_instances(kernel, place);

    // Rows are staggered by their index modulo II (the loop-pipelining
    // stagger of Fig. 2 applied to rows): without it, every row issues its
    // multiplication phases in the same cycle and any spill beyond the row
    // banks floods the column banks of the same columns simultaneously.
    let mut cycles = vec![0u32; instances.len()];
    for inst in &instances {
        let e = inst.element as usize;
        let round = e / rows;
        let stagger = (e % rows) as u32 % sched.ii;
        cycles[inst.id.index()] =
            round as u32 * sched.ii + stagger + sched.time_of[inst.node as usize];
    }

    Ok(ConfigContext::new(
        kernel.name().to_string(),
        geom,
        base.buses(),
        MappingStyle::Dataflow,
        sched.ii,
        instances,
        cycles,
    ))
}

/// Iterative modulo scheduling of the body onto one row: for each
/// candidate II, place nodes ASAP into `(column, cycle mod II)` slots
/// subject to bus capacities; bump II on failure.
fn schedule_row(
    kernel: &Kernel,
    cols: usize,
    base: &BaseArchitecture,
) -> Result<RowSchedule, MapError> {
    let body = kernel.body();
    let read_cap = base.buses().read_buses();
    let write_cap = base.buses().write_buses();

    let total_reads: usize = body
        .nodes()
        .iter()
        .filter(|n| n.op() == OpKind::Load)
        .map(rsp_kernel::Node::bus_words)
        .sum();
    let total_writes = body.count_op(|o| o == OpKind::Store);

    let ii_min = (body.len().div_ceil(cols))
        .max(total_reads.div_ceil(read_cap))
        .max(total_writes.div_ceil(write_cap))
        .max(1) as u32;
    let ii_max = (body.len() as u32 + 4).max(ii_min + 8);

    'ii: for ii in ii_min..=ii_max {
        let iu = ii as usize;
        let mut pe_slot = vec![false; cols * iu];
        let mut reads = vec![0usize; iu];
        let mut writes = vec![0usize; iu];
        let mut mults = vec![0usize; iu];
        let mut col_of = vec![0usize; body.len()];
        let mut time_of = vec![0u32; body.len()];

        for (nid, node) in body.iter() {
            let k = nid.index();
            let earliest: u32 = node
                .operands()
                .iter()
                .filter_map(|o| match o {
                    rsp_kernel::Operand::Node(p) | rsp_kernel::Operand::Pair(p) => {
                        Some(time_of[p.index()] + 1)
                    }
                    _ => None,
                })
                .max()
                .unwrap_or(0);

            let words = if node.op() == OpKind::Load {
                node.bus_words()
            } else {
                0
            };
            let stores = usize::from(node.op() == OpKind::Store);

            // Feasible (time, column) placements inside one II window.
            let mut feasible: Vec<(u32, usize)> = Vec::new();
            for t in earliest..earliest + ii {
                let slot = (t % ii) as usize;
                if reads[slot] + words > read_cap || writes[slot] + stores > write_cap {
                    continue;
                }
                if let Some(col) = (0..cols).find(|&c| !pe_slot[c * iu + slot]) {
                    feasible.push((t, col));
                }
            }
            // Multiplications prefer the earliest slot still below the
            // spread target, falling back to the least-loaded slot. Tables
            // 4/5 show the paper's mapper achieves exactly this balance:
            // at most two multiplications per row and cycle (RS#2 runs
            // every kernel stall-free) but more than one (RS#1 stalls on
            // the multiplication-dense kernels).
            let choice = if node.op() == OpKind::Mult {
                feasible
                    .iter()
                    .copied()
                    .find(|&(t, _)| mults[(t % ii) as usize] < MULT_SLOT_TARGET)
                    .or_else(|| {
                        feasible
                            .iter()
                            .copied()
                            .min_by_key(|&(t, _)| (mults[(t % ii) as usize], t))
                    })
            } else {
                feasible.first().copied()
            };
            match choice {
                Some((t, col)) => {
                    let slot = (t % ii) as usize;
                    pe_slot[col * iu + slot] = true;
                    reads[slot] += words;
                    writes[slot] += stores;
                    mults[slot] += usize::from(node.op() == OpKind::Mult);
                    col_of[k] = col;
                    time_of[k] = t;
                }
                None => continue 'ii,
            }
        }
        return Ok(RowSchedule {
            ii,
            col_of,
            time_of,
        });
    }
    Err(MapError::IiSearchFailed { max_ii: ii_max })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapOptions};
    use crate::validate::validate_base_schedule;
    use rsp_arch::presets;
    use rsp_kernel::suite;

    fn base_8x8() -> BaseArchitecture {
        presets::base_8x8().base().clone()
    }

    #[test]
    fn dataflow_schedules_are_base_legal() {
        let base = base_8x8();
        for k in [
            suite::hydro(),
            suite::state(),
            suite::fdct(),
            suite::fft_mult_loop(),
        ] {
            let ctx = map(&base, &k, &MapOptions::default()).unwrap();
            validate_base_schedule(&ctx).unwrap_or_else(|v| panic!("{}: {v}", k.name()));
        }
    }

    #[test]
    fn dataflow_respects_row_buses_in_base_schedule() {
        let base = base_8x8();
        for k in [
            suite::hydro(),
            suite::state(),
            suite::fdct(),
            suite::fft_mult_loop(),
        ] {
            let ctx = map(&base, &k, &MapOptions::default()).unwrap();
            let (r, w) = ctx.bus_pressure();
            assert!(r <= 2, "{}: {r} read words", k.name());
            assert!(w <= 1, "{}: {w} write words", k.name());
        }
    }

    #[test]
    fn mult_dense_kernels_stack_mults_per_row() {
        // The property behind the RS#1 stalls of Tables 4/5.
        let base = base_8x8();
        for k in [
            suite::hydro(),
            suite::state(),
            suite::fdct(),
            suite::fft_mult_loop(),
        ] {
            let ctx = map(&base, &k, &MapOptions::default()).unwrap();
            assert!(
                ctx.mult_profile().max_per_row_cycle >= 2,
                "{} never stacks multiplications",
                k.name()
            );
        }
    }

    #[test]
    fn cycle_counts_near_paper() {
        let base = base_8x8();
        let expect = [
            (suite::hydro(), 15u32, 8u32),
            (suite::state(), 20, 10),
            (suite::fdct(), 32, 14),
            (suite::fft_mult_loop(), 23, 10),
        ];
        for (k, paper, tol) in expect {
            let ctx = map(&base, &k, &MapOptions::default()).unwrap();
            let c = ctx.total_cycles();
            assert!(
                c.abs_diff(paper) <= tol,
                "{}: {c} cycles vs paper {paper}",
                k.name()
            );
        }
    }

    #[test]
    fn ii_reflects_resource_bounds() {
        let base = base_8x8();
        // FDCT: 8 stores / 1 write bus -> II >= 8.
        let ctx = map(&base, &suite::fdct(), &MapOptions::default()).unwrap();
        assert!(ctx.initiation_interval() >= 8);
        // Hydro: 3 read words / 2 buses -> II >= 2.
        let ctx = map(&base, &suite::hydro(), &MapOptions::default()).unwrap();
        assert!(ctx.initiation_interval() >= 2);
    }

    #[test]
    fn rounds_reuse_rows() {
        let base = base_8x8();
        let ctx = map(&base, &suite::hydro(), &MapOptions::default()).unwrap();
        // 32 elements on 8 rows: elements e and e+8 share a row, one II apart.
        let find = |e: u32| {
            ctx.instances()
                .iter()
                .find(|i| i.element == e && i.node == 0)
                .unwrap()
        };
        let (a, b) = (find(0), find(8));
        assert_eq!(a.pe.row, b.pe.row);
        assert_eq!(
            ctx.cycle_of(b.id) - ctx.cycle_of(a.id),
            ctx.initiation_interval()
        );
    }

    #[test]
    fn multi_step_kernel_rejected() {
        let base = base_8x8();
        let err = map_dataflow(&base, &suite::matmul(4)).unwrap_err();
        assert_eq!(err, MapError::BadDataflowKernel);
    }
}
