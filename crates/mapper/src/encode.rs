//! Binary encoding of configuration contexts — the per-PE configuration
//! cache image.
//!
//! §3.1 of the paper: *"The dynamic mapping of a multiplier to a PE is
//! determined in compile time and the information is annotated to the
//! configuration instructions. In run-time, the mapping control signal
//! from the configuration cache is fed to the Bus switch."*
//!
//! This module makes that concrete: every (PE, cycle) slot of a schedule
//! becomes one 64-bit configuration word carrying the opcode, two operand
//! selects, an immediate, the memory address pair, and the bus-switch
//! routing annotation. [`ConfigImage`] is what would be loaded into the
//! per-PE configuration caches; its size is the context-memory cost of a
//! kernel and must fit [`rsp_arch::BaseArchitecture::config_cache_depth`].
//!
//! # Word layout (64 bits)
//!
//! ```text
//!  63..59  opcode            (5 bits, OpKind discriminant + 1; 0 = NOP slot)
//!  58..56  switch select     (3 bits: 0 = local unit, 1.. = routing alternative)
//!  55..48  operand A select  (8 bits, see OperandSel)
//!  47..40  operand B select  (8 bits)
//!  39..24  immediate         (16 bits, signed)
//!  23..12  address 0         (12 bits)
//!  11..0   address 1         (12 bits, dual loads)
//! ```
//!
//! Operand selects encode the source class in the top two bits
//! (0 = none/register result, 1 = forwarded register of a producer,
//! 2 = pair register, 3 = parameter) and a 6-bit index.

use crate::context::{ConfigContext, SrcOperand};
use rsp_arch::{OpKind, PeId, SharedResourceId};
use serde::{Deserialize, Serialize};

/// One 64-bit configuration word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfigWord(pub u64);

impl ConfigWord {
    const NOP: ConfigWord = ConfigWord(0);

    fn opcode_bits(op: OpKind) -> u64 {
        // Stable discriminants: position in OpKind::ALL + 1 (0 keeps NOP).
        OpKind::ALL.iter().position(|&o| o == op).unwrap() as u64 + 1
    }

    fn op_from_bits(bits: u64) -> Option<OpKind> {
        if bits == 0 {
            None
        } else {
            OpKind::ALL.get(bits as usize - 1).copied()
        }
    }

    /// The encoded operation, `None` for an idle (NOP) slot.
    pub fn op(self) -> Option<OpKind> {
        Self::op_from_bits((self.0 >> 59) & 0x1F)
    }

    /// The bus-switch routing annotation: `None` for local execution,
    /// `Some(alternative)` for the 0-based routing alternative of the PE's
    /// switch (row bank entries first, then column bank — the order of
    /// [`rsp_arch::SharingPlan::reachable_from`]).
    pub fn switch_select(self) -> Option<u8> {
        let v = ((self.0 >> 56) & 0x7) as u8;
        if v == 0 {
            None
        } else {
            Some(v - 1)
        }
    }

    /// The signed 16-bit immediate.
    pub fn immediate(self) -> i16 {
        ((self.0 >> 24) & 0xFFFF) as u16 as i16
    }

    /// The two 12-bit memory addresses.
    pub fn addresses(self) -> (u16, u16) {
        (((self.0 >> 12) & 0xFFF) as u16, (self.0 & 0xFFF) as u16)
    }

    /// Operand selects (class, index) for A and B.
    pub fn operand_sels(self) -> ((u8, u8), (u8, u8)) {
        let a = ((self.0 >> 48) & 0xFF) as u8;
        let b = ((self.0 >> 40) & 0xFF) as u8;
        ((a >> 6, a & 0x3F), (b >> 6, b & 0x3F))
    }
}

/// Errors raised while encoding a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeError {
    /// An address does not fit the 12-bit field.
    AddressTooWide {
        /// The offending address.
        addr: u32,
    },
    /// An immediate does not fit the 16-bit field.
    ImmediateTooWide {
        /// The offending constant.
        value: i32,
    },
    /// A bus-switch select exceeds the 3-bit field (fan-in > 7).
    SwitchSelectTooWide {
        /// The offending routing alternative.
        select: usize,
    },
    /// The schedule length does not match the context.
    ShapeMismatch,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::AddressTooWide { addr } => {
                write!(f, "address {addr} exceeds the 12-bit field")
            }
            EncodeError::ImmediateTooWide { value } => {
                write!(f, "immediate {value} exceeds the 16-bit field")
            }
            EncodeError::SwitchSelectTooWide { select } => {
                write!(f, "switch select {select} exceeds the 3-bit field")
            }
            EncodeError::ShapeMismatch => write!(f, "schedule not parallel to context"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// The configuration caches of a whole array for one kernel: one stream of
/// [`ConfigWord`]s per PE, all of equal depth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigImage {
    rows: usize,
    cols: usize,
    depth: usize,
    words: Vec<ConfigWord>, // (row * cols + col) * depth + cycle
}

impl ConfigImage {
    /// Contexts per PE (the schedule length).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total size in bytes across all PE caches.
    pub fn bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<ConfigWord>()
    }

    /// The word for one PE at one cycle.
    ///
    /// # Panics
    ///
    /// Panics if the PE or cycle is out of range.
    pub fn word(&self, pe: PeId, cycle: usize) -> ConfigWord {
        assert!(
            cycle < self.depth,
            "cycle {cycle} beyond depth {}",
            self.depth
        );
        self.words[(pe.row * self.cols + pe.col) * self.depth + cycle]
    }

    /// A copy keeping only the first `depth` contexts of every PE's
    /// stream (used by segment encoding, where instances outside the
    /// segment are parked beyond the window).
    pub(crate) fn truncated(&self, depth: usize) -> ConfigImage {
        assert!(depth <= self.depth);
        let mut words = Vec::with_capacity(self.rows * self.cols * depth);
        for pe in 0..self.rows * self.cols {
            let start = pe * self.depth;
            words.extend_from_slice(&self.words[start..start + depth]);
        }
        ConfigImage {
            rows: self.rows,
            cols: self.cols,
            depth,
            words,
        }
    }

    /// Fraction of non-NOP slots (configuration-cache utilization).
    pub fn utilization(&self) -> f64 {
        let busy = self.words.iter().filter(|w| w.op().is_some()).count();
        busy as f64 / self.words.len() as f64
    }
}

fn operand_sel(op: &SrcOperand) -> (u8, u8) {
    match op {
        SrcOperand::Inst(p) => (1, (p.0 % 64) as u8),
        SrcOperand::PairOf(p) => (2, (p.0 % 64) as u8),
        SrcOperand::Const(_) => (0, 0x3F), // value lives in the immediate
        SrcOperand::Param(p) => (3, (*p % 64) as u8),
    }
}

/// Encodes a scheduled context (plus optional shared-resource bindings)
/// into the per-PE configuration caches.
///
/// The bus-switch select annotated into each word is the position of the
/// bound resource in the PE's routing-alternative order
/// ([`rsp_arch::RspArchitecture::candidates`]: row bank first, then
/// column bank) — exactly "the information annotated to the configuration
/// instructions" of the paper's §3.1.
///
/// # Errors
///
/// Field-width violations are reported per [`EncodeError`]; they indicate
/// a kernel outside the 12-bit address / 16-bit immediate template limits.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_kernel::suite;
/// use rsp_mapper::{encode_context, map, MapOptions};
///
/// let base = presets::base_8x8();
/// let ctx = map(base.base(), &suite::mvm(), &MapOptions::default())?;
/// let bindings = vec![None; ctx.instances().len()];
/// let image = encode_context(&ctx, ctx.cycles(), &bindings, &base)?;
/// assert_eq!(image.depth() as u32, ctx.total_cycles());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode_context(
    ctx: &ConfigContext,
    schedule: &[u32],
    bindings: &[Option<SharedResourceId>],
    arch: &rsp_arch::RspArchitecture,
) -> Result<ConfigImage, EncodeError> {
    if schedule.len() != ctx.instances().len() || bindings.len() != ctx.instances().len() {
        return Err(EncodeError::ShapeMismatch);
    }
    let rows = ctx.geometry().rows();
    let cols = ctx.geometry().cols();
    let depth = schedule.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut words = vec![ConfigWord::NOP; rows * cols * depth];

    for (i, inst) in ctx.instances().iter().enumerate() {
        let op_bits = ConfigWord::opcode_bits(inst.op);

        let select = match bindings[i] {
            None => 0u64,
            Some(res) => {
                let alt = arch
                    .candidates(inst.pe, inst.op)
                    .iter()
                    .position(|r| *r == res)
                    .ok_or(EncodeError::SwitchSelectTooWide { select: usize::MAX })?;
                if alt + 1 > 7 {
                    return Err(EncodeError::SwitchSelectTooWide { select: alt });
                }
                alt as u64 + 1
            }
        };

        let mut imm: i32 = 0;
        for o in &inst.operands {
            if let SrcOperand::Const(c) = o {
                imm = *c;
            }
        }
        if imm < i16::MIN as i32 || imm > i16::MAX as i32 {
            return Err(EncodeError::ImmediateTooWide { value: imm });
        }

        let (a0, a1) = match inst.op {
            OpKind::Load => {
                let lo = inst.loads[0].addr;
                let hi = inst.loads.get(1).map(|a| a.addr).unwrap_or(0);
                (lo, hi)
            }
            OpKind::Store => (inst.store.expect("store has address").addr, 0),
            _ => (0, 0),
        };
        for a in [a0, a1] {
            if a > 0xFFF {
                return Err(EncodeError::AddressTooWide { addr: a });
            }
        }

        let (sa_raw, sb_raw) = {
            let a = inst.operands.first().map(operand_sel).unwrap_or((0, 0));
            let b = inst.operands.get(1).map(operand_sel).unwrap_or((0, 0));
            (
                ((a.0 as u64) << 6) | a.1 as u64,
                ((b.0 as u64) << 6) | b.1 as u64,
            )
        };

        let word = (op_bits << 59)
            | (select << 56)
            | (sa_raw << 48)
            | (sb_raw << 40)
            | (((imm as u16) as u64) << 24)
            | ((a0 as u64) << 12)
            | (a1 as u64);

        let cyc = schedule[i] as usize;
        let slot = (inst.pe.row * cols + inst.pe.col) * depth + cyc;
        words[slot] = ConfigWord(word);
    }

    Ok(ConfigImage {
        rows,
        cols,
        depth,
        words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapOptions};
    use rsp_arch::presets;
    use rsp_kernel::suite;

    fn encoded(kernel: &rsp_kernel::Kernel) -> (ConfigContext, ConfigImage) {
        let base = presets::base_8x8();
        let ctx = map(base.base(), kernel, &MapOptions::default()).unwrap();
        let bindings = vec![None; ctx.instances().len()];
        let img = encode_context(&ctx, ctx.cycles(), &bindings, &base).unwrap();
        (ctx, img)
    }

    #[test]
    fn every_instance_round_trips_opcode_and_addresses() {
        for k in suite::all() {
            let (ctx, img) = encoded(&k);
            for (i, inst) in ctx.instances().iter().enumerate() {
                let w = img.word(inst.pe, ctx.cycles()[i] as usize);
                assert_eq!(w.op(), Some(inst.op), "{} instance {i}", k.name());
                if inst.op == OpKind::Load {
                    let (a0, a1) = w.addresses();
                    assert_eq!(a0 as u32, inst.loads[0].addr);
                    if let Some(second) = inst.loads.get(1) {
                        assert_eq!(a1 as u32, second.addr);
                    }
                }
                assert_eq!(w.switch_select(), None);
            }
        }
    }

    #[test]
    fn idle_slots_are_nops_and_utilization_is_sane() {
        let (ctx, img) = encoded(&suite::mvm());
        assert_eq!(img.depth() as u32, ctx.total_cycles());
        let util = img.utilization();
        assert!(util > 0.0 && util < 1.0, "utilization {util}");
        // 64 PEs x depth x 8 bytes.
        assert_eq!(img.bytes(), 64 * img.depth() * 8);
    }

    #[test]
    fn immediates_round_trip() {
        let (ctx, img) = encoded(&suite::sad());
        // The SAD accumulator's first step adds the init constant 0;
        // every encoded immediate must read back as written.
        for (i, inst) in ctx.instances().iter().enumerate() {
            let w = img.word(inst.pe, ctx.cycles()[i] as usize);
            for o in &inst.operands {
                if let SrcOperand::Const(c) = o {
                    assert_eq!(w.immediate() as i32, *c);
                }
            }
        }
    }

    #[test]
    fn bindings_annotate_switch_selects() {
        let k = suite::mvm();
        let arch = presets::rs2();
        let ctx = map(arch.base(), &k, &MapOptions::default()).unwrap();
        // Bind every mult to row bank 1 (a valid RS#2-style binding).
        let bindings: Vec<_> = ctx
            .instances()
            .iter()
            .map(|i| {
                (i.op == OpKind::Mult).then_some(SharedResourceId::Row {
                    kind: rsp_arch::FuKind::Multiplier,
                    row: i.pe.row,
                    index: 1,
                })
            })
            .collect();
        let img = encode_context(&ctx, ctx.cycles(), &bindings, &arch).unwrap();
        for (i, inst) in ctx.instances().iter().enumerate() {
            let w = img.word(inst.pe, ctx.cycles()[i] as usize);
            if inst.op == OpKind::Mult {
                assert_eq!(w.switch_select(), Some(1));
            } else {
                assert_eq!(w.switch_select(), None);
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let ctx = map(
            presets::base_8x8().base(),
            &suite::mvm(),
            &MapOptions::default(),
        )
        .unwrap();
        let err = encode_context(&ctx, &[0, 1], &[None, None], &presets::base_8x8()).unwrap_err();
        assert_eq!(err, EncodeError::ShapeMismatch);
    }

    #[test]
    fn operand_selects_distinguish_classes() {
        let (ctx, img) = encoded(&suite::inner_product());
        // The mult reads (Inst, PairOf); classes 1 and 2.
        let mult = ctx
            .instances()
            .iter()
            .find(|i| i.op == OpKind::Mult)
            .unwrap();
        let w = img.word(mult.pe, ctx.cycles()[mult.id.index()] as usize);
        let ((ca, _), (cb, _)) = w.operand_sels();
        assert_eq!(ca, 1);
        assert_eq!(cb, 2);
    }
}
