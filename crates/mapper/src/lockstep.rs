//! Column-lockstep mapping — the discipline of the paper's Fig. 2.
//!
//! Elements are grouped `rows` at a time into *column groups*; group `g`
//! occupies all PEs of column `g mod cols` (one element per row) and every
//! PE of the group executes the body in lockstep, one operation per cycle.
//! Consecutive groups start one cycle apart (the loop-pipelining stagger
//! visible in Fig. 2), and a column accepts its next group after
//! `max(busy, cols)` cycles so that single-multiplication kernels never
//! pile two multiplication phases onto one row — the behaviour Tables 4/5
//! show as zero RS stalls for ICCG, Tri-diagonal, Inner product, MVM and
//! SAD.

use crate::build::{build_instances, IdLayout};
use crate::context::ConfigContext;
use crate::mapper::MapOptions;
use rsp_arch::{BaseArchitecture, PeId};
use rsp_kernel::Kernel;

pub(crate) fn map_lockstep(
    base: &BaseArchitecture,
    kernel: &Kernel,
    opts: &MapOptions,
) -> ConfigContext {
    let geom = base.geometry();
    let (rows, cols) = (geom.rows(), geom.cols());
    let layout = IdLayout::of(kernel);
    let body_len = kernel.body().len();
    let busy = layout.block() as u32; // steps * body + tail
    let groups = kernel.elements().div_ceil(rows);

    // Group start cycles: stagger 1 between columns, `max(busy, cols)`
    // between rounds on the same column.
    let spacing = busy.max(cols as u32);
    let mut starts = Vec::with_capacity(groups);
    for g in 0..groups {
        let naive = (g % cols) as u32 + (g / cols) as u32 * spacing;
        starts.push(naive);
    }

    if opts.strict_buses {
        adjust_starts_for_buses(kernel, base, &mut starts, rows, cols, busy);
    }

    let place = |e: usize, _s: usize, _n: usize, _tail: bool| -> PeId {
        let g = e / rows;
        PeId::new(e % rows, g % cols)
    };
    let instances = build_instances(kernel, place);

    let mut cycles = vec![0u32; instances.len()];
    for inst in &instances {
        let e = inst.element as usize;
        let g = e / rows;
        let offset = if inst.is_tail {
            (kernel.steps() * body_len) as u32 + inst.node
        } else {
            inst.step * body_len as u32 + inst.node
        };
        cycles[inst.id.index()] = starts[g] + offset;
    }

    ConfigContext::new(
        kernel.name().to_string(),
        geom,
        base.buses(),
        rsp_kernel::MappingStyle::Lockstep,
        body_len as u32,
        instances,
        cycles,
    )
}

/// Greedy start adjustment: delay each group until its loads/stores fit
/// the row buses given all earlier groups (strict bus mode).
fn adjust_starts_for_buses(
    kernel: &Kernel,
    base: &BaseArchitecture,
    starts: &mut [u32],
    rows: usize,
    cols: usize,
    busy: u32,
) {
    let read_cap = base.buses().read_buses();
    let write_cap = base.buses().write_buses();
    // Per-offset bus words of one element's timeline (identical for all
    // elements of a group and — per row — for all groups).
    let mut read_words = vec![0usize; busy as usize];
    let mut write_words = vec![0usize; busy as usize];
    let body_len = kernel.body().len();
    for (nid, node) in kernel.body().iter() {
        for s in 0..kernel.steps() {
            let off = s * body_len + nid.index();
            read_words[off] +=
                node.bus_words().min(2) * usize::from(node.op() == rsp_arch::OpKind::Load);
            write_words[off] += usize::from(node.op() == rsp_arch::OpKind::Store);
        }
    }
    if let Some(tail) = kernel.tail() {
        for (nid, node) in tail.iter() {
            let off = kernel.steps() * body_len + nid.index();
            read_words[off] += node.bus_words() * usize::from(node.op() == rsp_arch::OpKind::Load);
            write_words[off] += usize::from(node.op() == rsp_arch::OpKind::Store);
        }
    }

    // Every group loads on all its rows simultaneously, so one row's
    // timeline represents the group. Track usage per cycle.
    let mut used_read: Vec<usize> = Vec::new();
    let mut used_write: Vec<usize> = Vec::new();
    let mut last_in_col = vec![0u32; cols];
    let _ = rows;
    for (g, start) in starts.iter_mut().enumerate() {
        let col = g % cols;
        let mut t = if g < cols {
            *start
        } else {
            (*start).max(last_in_col[col] + busy)
        };
        'search: loop {
            for off in 0..busy as usize {
                let cyc = t as usize + off;
                if used_read.len() <= cyc {
                    used_read.resize(cyc + 1, 0);
                    used_write.resize(cyc + 1, 0);
                }
                if used_read[cyc] + read_words[off] > read_cap
                    || used_write[cyc] + write_words[off] > write_cap
                {
                    t += 1;
                    continue 'search;
                }
            }
            break;
        }
        for off in 0..busy as usize {
            let cyc = t as usize + off;
            used_read[cyc] += read_words[off];
            used_write[cyc] += write_words[off];
        }
        last_in_col[col] = t;
        *start = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{map, MapOptions};
    use crate::validate::validate_base_schedule;
    use rsp_arch::presets;
    use rsp_kernel::suite;

    fn base_8x8() -> BaseArchitecture {
        presets::base_8x8().base().clone()
    }

    #[test]
    fn matmul4_reproduces_fig2_phases() {
        // On the 4x4 array of Fig. 1: column 1 loads at cycle 1 (0-based
        // 0), multiplies at cycle 2, adds at cycle 3; its second
        // multiplication and column 4's first both land on cycle 5
        // (0-based 4) — the condition that makes Fig. 3 provision two
        // multipliers per row.
        let base = presets::fig1_4x4().base().clone();
        let ctx = map(&base, &suite::matmul(4), &MapOptions::default()).unwrap();

        let find = |e: u32, s: u32, node: u32| {
            ctx.instances()
                .iter()
                .find(|i| i.element == e && i.step == s && i.node == node && !i.is_tail)
                .map(|i| ctx.cycle_of(i.id))
                .unwrap()
        };
        // Element 0 = Z(0,0), column 0.
        assert_eq!(find(0, 0, 0), 0); // Ld
        assert_eq!(find(0, 0, 1), 1); // *
        assert_eq!(find(0, 0, 2), 2); // +
        assert_eq!(find(0, 1, 1), 4); // second *
                                      // Element 12 = Z(3,0) is in group 3 -> column 3; first * at cycle 4.
        assert_eq!(find(12, 0, 1), 4);
        // Peak: two mult-phase columns x 4 rows = 8 simultaneous mults.
        assert_eq!(ctx.mult_profile().max_per_cycle, 8);
        assert_eq!(ctx.mult_profile().max_per_row_cycle, 2);
    }

    #[test]
    fn lockstep_schedules_are_base_legal() {
        let base = base_8x8();
        for k in [
            suite::iccg(),
            suite::tri_diagonal(),
            suite::inner_product(),
            suite::sad(),
            suite::mvm(),
            suite::matmul(8),
        ] {
            let ctx = map(&base, &k, &MapOptions::default()).unwrap();
            validate_base_schedule(&ctx).unwrap_or_else(|v| panic!("{}: {v}", k.name()));
        }
    }

    #[test]
    fn single_mult_kernels_never_stack_mults_per_row() {
        // The property behind the zero RS#1 stalls of Tables 4/5.
        let base = base_8x8();
        for k in [
            suite::iccg(),
            suite::tri_diagonal(),
            suite::inner_product(),
            suite::mvm(),
        ] {
            let ctx = map(&base, &k, &MapOptions::default()).unwrap();
            assert_eq!(
                ctx.mult_profile().max_per_row_cycle,
                1,
                "{} stacks multiplications",
                k.name()
            );
        }
    }

    #[test]
    fn inner_product_cycle_count_near_paper() {
        let base = base_8x8();
        let ctx = map(&base, &suite::inner_product(), &MapOptions::default()).unwrap();
        // Paper: 21 cycles on the base architecture; expect the same order.
        let c = ctx.total_cycles();
        assert!((15..=25).contains(&c), "inner product cycles {c}");
    }

    #[test]
    fn strict_buses_never_exceeds_capacity() {
        let base = base_8x8();
        for k in [suite::inner_product(), suite::sad(), suite::matmul(8)] {
            let ctx = map(
                &base,
                &k,
                &MapOptions {
                    strict_buses: true,
                    ..MapOptions::default()
                },
            )
            .unwrap();
            let (r, w) = ctx.bus_pressure();
            assert!(r <= 2, "{}: read words {r}", k.name());
            assert!(w <= 1, "{}: write words {w}", k.name());
            validate_base_schedule(&ctx).unwrap();
        }
    }

    #[test]
    fn strict_buses_is_no_faster() {
        let base = base_8x8();
        for k in [suite::inner_product(), suite::matmul(8)] {
            let soft = map(&base, &k, &MapOptions::default()).unwrap();
            let strict = map(
                &base,
                &k,
                &MapOptions {
                    strict_buses: true,
                    ..MapOptions::default()
                },
            )
            .unwrap();
            assert!(strict.total_cycles() >= soft.total_cycles());
        }
    }

    #[test]
    fn sad_has_zero_mult_demand() {
        let base = base_8x8();
        let ctx = map(&base, &suite::sad(), &MapOptions::default()).unwrap();
        assert_eq!(ctx.mult_profile().total, 0);
    }

    #[test]
    fn mvm_uses_all_columns() {
        let base = base_8x8();
        let ctx = map(&base, &suite::mvm(), &MapOptions::default()).unwrap();
        let cols_used: std::collections::BTreeSet<usize> =
            ctx.instances().iter().map(|i| i.pe.col).collect();
        assert_eq!(cols_used.len(), 8);
    }
}
