//! Error types for mapping and schedule validation.

use rsp_arch::{OpKind, PeId};
use std::error::Error;
use std::fmt;

/// Errors raised while mapping a kernel onto an array.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// The base PE design cannot execute an operation the kernel needs.
    MissingUnit {
        /// The unsupported operation.
        op: OpKind,
    },
    /// The schedule needs more contexts than the per-PE configuration
    /// cache holds.
    ConfigCacheExceeded {
        /// Contexts required by the schedule.
        needed: u32,
        /// Cache capacity.
        available: u32,
    },
    /// The dataflow modulo scheduler found no feasible initiation interval
    /// within its search bound.
    IiSearchFailed {
        /// Last initiation interval tried.
        max_ii: u32,
    },
    /// A dataflow-style kernel violated the single-step/no-accumulator
    /// shape (should have been caught by kernel validation).
    BadDataflowKernel,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::MissingUnit { op } => {
                write!(f, "the PE design cannot execute `{op}`")
            }
            MapError::ConfigCacheExceeded { needed, available } => write!(
                f,
                "schedule needs {needed} contexts but the configuration cache holds {available}"
            ),
            MapError::IiSearchFailed { max_ii } => {
                write!(f, "no feasible initiation interval up to {max_ii}")
            }
            MapError::BadDataflowKernel => {
                write!(
                    f,
                    "dataflow mapping requires a single-step kernel without tail"
                )
            }
        }
    }
}

impl Error for MapError {}

/// First violation found when checking a schedule against base-architecture
/// legality rules.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// A consumer issues before its producer's result is ready.
    DependenceViolated {
        /// Producer instance index.
        producer: usize,
        /// Consumer instance index.
        consumer: usize,
        /// Producer's cycle.
        producer_cycle: u32,
        /// Consumer's cycle.
        consumer_cycle: u32,
    },
    /// Two instances share one PE in one cycle.
    PeConflict {
        /// The PE.
        pe: PeId,
        /// The cycle.
        cycle: u32,
    },
    /// Read- or write-bus words exceed a row's capacity in some cycle
    /// (only reported by the strict checker).
    BusOverflow {
        /// The row.
        row: usize,
        /// The cycle.
        cycle: u32,
        /// Words requested.
        words: usize,
        /// Bus capacity.
        capacity: usize,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::DependenceViolated {
                producer,
                consumer,
                producer_cycle,
                consumer_cycle,
            } => write!(
                f,
                "instance {consumer} at cycle {consumer_cycle} uses instance {producer} scheduled at cycle {producer_cycle}"
            ),
            ScheduleViolation::PeConflict { pe, cycle } => {
                write!(f, "two instances on {pe} in cycle {cycle}")
            }
            ScheduleViolation::BusOverflow {
                row,
                cycle,
                words,
                capacity,
            } => write!(
                f,
                "row {row} moves {words} bus words in cycle {cycle}, capacity {capacity}"
            ),
        }
    }
}

impl Error for ScheduleViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        let errs: [&dyn fmt::Display; 4] = [
            &MapError::MissingUnit { op: OpKind::Mult },
            &MapError::ConfigCacheExceeded {
                needed: 300,
                available: 256,
            },
            &MapError::IiSearchFailed { max_ii: 64 },
            &MapError::BadDataflowKernel,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
        let v = ScheduleViolation::PeConflict {
            pe: PeId::new(0, 0),
            cycle: 3,
        };
        assert!(v.to_string().contains("cycle 3"));
    }
}
