//! Session state, split from the engine — the unified request layer.
//!
//! A [`Session`] owns everything that outlives one query: the memoized
//! synthesis reports ([`ModelCache`], keyed by `(geometry, plan)`), the
//! per-kernel demand profiles ([`ProfileCache`], keyed by kernel hash),
//! the mapped initial contexts, and the option defaults that every
//! request inherits. The engine entry points ([`explore_with`],
//! [`run_flow`]) stay pure functions of their inputs; a session merely
//! *assembles* their option structs — one [`SessionBuilder`] replaces
//! the hand-built `ExploreOptions` + `FlowConfig` + [`ExploreControl`]
//! pattern at call sites — and threads its shared caches through them,
//! so repeated or concurrent requests never re-synthesize a plan or
//! re-profile a kernel they have seen.
//!
//! Results are unaffected: cached reports and profiles are pure
//! functions of their keys, so a session-backed query is bit-identical
//! to a cold one (property-tested below and in `crates/serve`). The CLI
//! issues one request per process; `rsp-serve` keeps one session for
//! the process lifetime and answers map/explore/flow requests from many
//! clients against it.
//!
//! # Examples
//!
//! ```
//! use rsp_core::{DesignSpace, ExploreControl, Session};
//! use rsp_kernel::suite;
//!
//! let session = Session::builder().build();
//! let base = session.base(8, 8);
//! let kernels = [suite::fdct(), suite::sad()];
//! let weights = [1.0, 1.0];
//!
//! // First request synthesizes; an overlapping second request reuses
//! // every report (`session.stats().model_hits` grows).
//! for _ in 0..2 {
//!     let result = session.explore(
//!         &base,
//!         &kernels,
//!         &weights,
//!         &DesignSpace::paper(),
//!         ExploreControl::default(),
//!     )?;
//!     assert!(result.best_point().arch.plan().has_pipelining());
//! }
//! assert!(session.stats().model_hits > 0);
//! # Ok::<(), rsp_core::RspError>(())
//! ```

use crate::control::ExploreControl;
use crate::error::RspError;
use crate::estimate::{BoundKind, ClockBound, ContextProfile};
use crate::explore::{
    explore_with, Constraints, DesignSpace, Exploration, ExploreOptions, Objective, PruneStrategy,
};
use crate::flow::{run_flow, AppProfile, FlowConfig, FlowReport};
use crate::rearrange::RearrangeOptions;
use rsp_arch::{ArrayGeometry, BaseArchitecture, BusSpec, FuKind, PeDesign};
use rsp_kernel::Kernel;
use rsp_mapper::{map, ConfigContext, MapOptions};
use rsp_obs::Recorder;
use rsp_synth::ModelCache;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hashes `Debug` output directly into a [`DefaultHasher`] without
/// materializing the string. `Debug` for the hashed types is derived
/// (and floats print shortest-round-trip), so equal values hash equal
/// and distinct values collide with probability ~2⁻⁶⁴ — the usual
/// memoization trade.
struct HashWriter<'a>(&'a mut DefaultHasher);

impl std::fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

fn fingerprint(parts: std::fmt::Arguments<'_>) -> u64 {
    // `DefaultHasher::new()` is keyed deterministically (unlike
    // `RandomState`), so fingerprints are stable within a build.
    let mut h = DefaultHasher::new();
    let _ = HashWriter(&mut h).write_fmt(parts);
    h.finish()
}

/// Thread-safe memo of [`ContextProfile`]s keyed by kernel hash (the
/// kernel, its mapped context, and the shared kinds being profiled).
/// Profiling is a pure function of that key, so sharing one cache
/// across requests — [`ExploreOptions::profiles`] /
/// [`FlowConfig::profiles`], wired automatically by [`Session`] —
/// changes nothing but the work performed.
#[derive(Debug, Default)]
pub struct ProfileCache {
    memo: Mutex<HashMap<u64, Arc<ContextProfile>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The profile for `(ctx, kernel, kinds)`, built at most once.
    pub fn get_or_build(
        &self,
        ctx: &ConfigContext,
        kernel: &Kernel,
        kinds: &[FuKind],
    ) -> Arc<ContextProfile> {
        let key = fingerprint(format_args!("{ctx:?}\u{1}{kernel:?}\u{1}{kinds:?}"));
        if let Some(hit) = self.memo.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Built outside the lock: profiling is the expensive part and a
        // racing duplicate build is pure, so last-write-wins is harmless.
        let profile = Arc::new(ContextProfile::new(ctx, kernel, kinds));
        self.memo
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&profile));
        profile
    }

    /// Distinct `(context, kernel, kinds)` triples profiled so far.
    pub fn len(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Whether nothing has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to profile.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Builder for a [`Session`]: every knob the old hand-assembled
/// `ExploreOptions` / [`FlowConfig`] pattern exposed, with the same
/// defaults, set once and inherited by every request.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    parallelism: Option<usize>,
    prune: PruneStrategy,
    bound: BoundKind,
    clock_bound: ClockBound,
    constraints: Constraints,
    objective: Objective,
    coverage: f64,
    geometries: Vec<(usize, usize)>,
    config_cache_depth: usize,
    map_options: MapOptions,
    rearrange_options: RearrangeOptions,
    recorder: Arc<dyn Recorder>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        let flow = FlowConfig::default();
        Self {
            parallelism: flow.parallelism,
            prune: flow.prune,
            bound: flow.bound,
            clock_bound: flow.clock_bound,
            constraints: flow.constraints,
            objective: flow.objective,
            coverage: flow.coverage,
            geometries: flow.geometries,
            config_cache_depth: flow.config_cache_depth,
            map_options: flow.map_options,
            rearrange_options: flow.rearrange_options,
            recorder: flow.recorder,
        }
    }
}

impl SessionBuilder {
    /// Starts from the engine defaults ([`FlowConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker threads per request (`None` = all cores, `Some(1)` =
    /// serial; results are identical either way).
    pub fn parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Pruning aggressiveness (see [`PruneStrategy`]).
    pub fn prune(mut self, prune: PruneStrategy) -> Self {
        self.prune = prune;
        self
    }

    /// Lower-bound strength pruning works with (see [`BoundKind`]).
    pub fn bound(mut self, bound: BoundKind) -> Self {
        self.bound = bound;
        self
    }

    /// Stage-floor clock cut before delay synthesis (see [`ClockBound`]).
    pub fn clock_bound(mut self, clock_bound: ClockBound) -> Self {
        self.clock_bound = clock_bound;
        self
    }

    /// Feasibility constraints.
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Selection objective.
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Profiling coverage for flow requests ([`FlowConfig::coverage`]).
    pub fn coverage(mut self, coverage: f64) -> Self {
        self.coverage = coverage;
        self
    }

    /// Candidate base geometries for flow requests.
    pub fn geometries(mut self, geometries: Vec<(usize, usize)>) -> Self {
        self.geometries = geometries;
        self
    }

    /// Per-PE configuration-cache depth of session-built bases.
    pub fn config_cache_depth(mut self, depth: usize) -> Self {
        self.config_cache_depth = depth;
        self
    }

    /// Mapper options for session-built contexts.
    pub fn map_options(mut self, map_options: MapOptions) -> Self {
        self.map_options = map_options;
        self
    }

    /// Rearrangement options for flow requests.
    pub fn rearrange_options(mut self, rearrange_options: RearrangeOptions) -> Self {
        self.rearrange_options = rearrange_options;
        self
    }

    /// Recorder every request of this session reports to (defaults to
    /// [`rsp_obs::global`]; purely observational — see `rsp_obs` docs).
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Builds the session with fresh (empty) caches.
    pub fn build(self) -> Session {
        Session {
            config: self,
            models: Arc::new(ModelCache::new()),
            profiles: Arc::new(ProfileCache::new()),
            contexts: Mutex::new(HashMap::new()),
            context_hits: AtomicU64::new(0),
            context_misses: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }
}

/// Cache observability snapshot ([`Session::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Distinct plans with full synthesis reports ([`ModelCache::len`]).
    pub model_reports: usize,
    /// Synthesis-memo hits ([`ModelCache::hits`]).
    pub model_hits: u64,
    /// Synthesis-memo misses ([`ModelCache::misses`]).
    pub model_misses: u64,
    /// Distinct kernel profiles cached ([`ProfileCache::len`]).
    pub profile_entries: usize,
    /// Profile-memo hits.
    pub profile_hits: u64,
    /// Profile-memo misses.
    pub profile_misses: u64,
    /// Distinct mapped contexts cached by [`Session::map`].
    pub mapped_contexts: usize,
    /// Context-memo hits ([`Session::map`] answered from the memo).
    pub context_hits: u64,
    /// Context-memo misses ([`Session::map`] had to run the mapper).
    pub context_misses: u64,
    /// Requests answered through this session's typed entry points
    /// ([`Session::map`], [`Session::explore`], [`Session::flow`]).
    pub requests: u64,
}

/// Long-lived engine state shared by every request: option defaults
/// plus the synthesis, profile, and mapping caches. See the module docs
/// for the session/engine split; construct via [`Session::builder`].
///
/// `Session` is `Send + Sync`: concurrent requests share the caches and
/// observe bit-identical results to serial runs.
#[derive(Debug)]
pub struct Session {
    config: SessionBuilder,
    models: Arc<ModelCache>,
    profiles: Arc<ProfileCache>,
    contexts: Mutex<HashMap<u64, Arc<ConfigContext>>>,
    context_hits: AtomicU64,
    context_misses: AtomicU64,
    requests: AtomicU64,
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    /// Starts building a session from the engine defaults.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// The shared synthesis memo every request of this session uses.
    pub fn model_cache(&self) -> Arc<ModelCache> {
        Arc::clone(&self.models)
    }

    /// The shared kernel-profile memo.
    pub fn profile_cache(&self) -> Arc<ProfileCache> {
        Arc::clone(&self.profiles)
    }

    /// Cache counters — the observable proof of cross-request sharing.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            model_reports: self.models.len(),
            model_hits: self.models.hits(),
            model_misses: self.models.misses(),
            profile_entries: self.profiles.len(),
            profile_hits: self.profiles.hits(),
            profile_misses: self.profiles.misses(),
            mapped_contexts: self.contexts.lock().unwrap().len(),
            context_hits: self.context_hits.load(Ordering::Relaxed),
            context_misses: self.context_misses.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
        }
    }

    /// The recorder this session's requests report to.
    pub fn recorder(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.config.recorder)
    }

    /// A base architecture with the session's configuration-cache depth
    /// (paper PE design and bus spec).
    pub fn base(&self, rows: usize, cols: usize) -> BaseArchitecture {
        BaseArchitecture::new(
            ArrayGeometry::new(rows, cols),
            PeDesign::full(),
            BusSpec::paper_default(),
            self.config_cache_depth(),
        )
    }

    /// The session's configuration-cache depth.
    pub fn config_cache_depth(&self) -> usize {
        self.config.config_cache_depth
    }

    /// [`ExploreOptions`] assembled from the session defaults with the
    /// shared caches attached — the unified replacement for hand-built
    /// option structs. `control` carries the per-request deadline /
    /// candidate budget / cancel flag.
    pub fn explore_options(&self, control: ExploreControl) -> ExploreOptions {
        ExploreOptions {
            parallelism: self.config.parallelism,
            prune: self.config.prune,
            bound: self.config.bound,
            clock_bound: self.config.clock_bound,
            constraints: self.config.constraints,
            objective: self.config.objective,
            cache: Some(Arc::clone(&self.models)),
            profiles: Some(Arc::clone(&self.profiles)),
            control,
            recorder: Arc::clone(&self.config.recorder),
        }
    }

    /// [`FlowConfig`] assembled from the session defaults with the
    /// shared caches attached; `control` is per-request.
    pub fn flow_config(&self, space: DesignSpace, control: ExploreControl) -> FlowConfig {
        FlowConfig {
            coverage: self.config.coverage,
            geometries: self.config.geometries.clone(),
            config_cache_depth: self.config.config_cache_depth,
            space,
            constraints: self.config.constraints,
            objective: self.config.objective,
            map_options: self.config.map_options,
            rearrange_options: self.config.rearrange_options,
            parallelism: self.config.parallelism,
            prune: self.config.prune,
            bound: self.config.bound,
            clock_bound: self.config.clock_bound,
            cache: Some(Arc::clone(&self.models)),
            profiles: Some(Arc::clone(&self.profiles)),
            control,
            recorder: Arc::clone(&self.config.recorder),
        }
    }

    /// Maps `kernel` onto `base` with the session's mapper options,
    /// memoized: repeated requests for the same `(base, kernel)` reuse
    /// the context (mapping is deterministic, so reuse is exact).
    ///
    /// # Errors
    ///
    /// [`RspError::Map`] when the kernel does not fit the base array.
    pub fn map(
        &self,
        base: &BaseArchitecture,
        kernel: &Kernel,
    ) -> Result<Arc<ConfigContext>, RspError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let key = fingerprint(format_args!(
            "{base:?}\u{1}{kernel:?}\u{1}{:?}",
            self.config.map_options
        ));
        if let Some(hit) = self.contexts.lock().unwrap().get(&key) {
            self.context_hits.fetch_add(1, Ordering::Relaxed);
            rsp_obs::count(&*self.config.recorder, "session", "context_hit", 1);
            return Ok(Arc::clone(hit));
        }
        // A racing duplicate build counts as a miss too: hits + misses
        // always equals `map` calls exactly (see the concurrency test).
        self.context_misses.fetch_add(1, Ordering::Relaxed);
        rsp_obs::count(&*self.config.recorder, "session", "context_miss", 1);
        let ctx = Arc::new(map(base, kernel, &self.config.map_options).map_err(RspError::Map)?);
        self.contexts
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&ctx));
        Ok(ctx)
    }

    /// Explores `space` for `kernels` (with weights) over `base`: maps
    /// each kernel through the session's context memo, then runs
    /// [`explore_with`] under [`Session::explore_options`]. Bit-identical
    /// to a cold [`explore_with`] call with default options.
    ///
    /// # Errors
    ///
    /// Mapping errors ([`RspError::Map`]) and exploration errors
    /// ([`RspError::NoFeasibleDesign`]) are propagated.
    pub fn explore(
        &self,
        base: &BaseArchitecture,
        kernels: &[Kernel],
        weights: &[f64],
        space: &DesignSpace,
        control: ExploreControl,
    ) -> Result<Exploration, RspError> {
        let contexts: Vec<ConfigContext> = kernels
            .iter()
            .map(|k| self.map(base, k).map(|ctx| (*ctx).clone()))
            .collect::<Result<_, _>>()?;
        self.requests.fetch_add(1, Ordering::Relaxed);
        explore_with(
            base,
            kernels,
            &contexts,
            weights,
            space,
            &self.explore_options(control),
        )
    }

    /// Runs the full Fig. 7 flow over `apps` under the session defaults
    /// and shared caches. Bit-identical to a cold [`run_flow`] call.
    ///
    /// # Errors
    ///
    /// Propagates [`run_flow`]'s errors.
    pub fn flow(
        &self,
        apps: &[AppProfile],
        space: DesignSpace,
        control: ExploreControl,
    ) -> Result<FlowReport, RspError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        run_flow(apps, &self.flow_config(space, control))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_kernel::suite;

    fn kernels_and_weights() -> (Vec<Kernel>, Vec<f64>) {
        let kernels = vec![suite::fdct(), suite::sad(), suite::inner_product()];
        let weights = vec![1.0; kernels.len()];
        (kernels, weights)
    }

    #[test]
    fn builder_defaults_mirror_engine_defaults() {
        let session = Session::builder().build();
        let opts = session.explore_options(ExploreControl::default());
        let defaults = ExploreOptions::default();
        assert_eq!(opts.parallelism, defaults.parallelism);
        assert_eq!(opts.prune, defaults.prune);
        assert_eq!(opts.bound, defaults.bound);
        assert_eq!(opts.clock_bound, defaults.clock_bound);
        assert_eq!(opts.constraints, defaults.constraints);
        assert_eq!(opts.objective, defaults.objective);
        // The one deliberate difference: the session's caches ride along.
        assert!(opts.cache.is_some());
        assert!(opts.profiles.is_some());

        let cfg = session.flow_config(DesignSpace::paper(), ExploreControl::default());
        let flow_defaults = FlowConfig::default();
        assert_eq!(cfg.coverage, flow_defaults.coverage);
        assert_eq!(cfg.geometries, flow_defaults.geometries);
        assert_eq!(cfg.config_cache_depth, flow_defaults.config_cache_depth);
    }

    #[test]
    fn session_explore_is_bit_identical_to_cold_engine() {
        let session = Session::builder().build();
        let base = session.base(8, 8);
        let (kernels, weights) = kernels_and_weights();
        let space = DesignSpace::paper();

        let cold_contexts: Vec<ConfigContext> = kernels
            .iter()
            .map(|k| map(&base, k, &MapOptions::default()).unwrap())
            .collect();
        let cold = explore_with(
            &base,
            &kernels,
            &cold_contexts,
            &weights,
            &space,
            &ExploreOptions::default(),
        )
        .unwrap();

        for _ in 0..2 {
            let warm = session
                .explore(&base, &kernels, &weights, &space, ExploreControl::default())
                .unwrap();
            assert_eq!(warm.feasible.len(), cold.feasible.len());
            assert_eq!(warm.pareto, cold.pareto);
            assert_eq!(warm.best, cold.best);
            for (a, b) in warm.feasible.iter().zip(&cold.feasible) {
                assert_eq!(a.arch.name(), b.arch.name());
                assert_eq!(a.area_slices.to_bits(), b.area_slices.to_bits());
                assert_eq!(a.est_et_ns.to_bits(), b.est_et_ns.to_bits());
            }
        }
    }

    #[test]
    fn repeated_requests_hit_every_cache() {
        let session = Session::builder().build();
        let base = session.base(8, 8);
        let (kernels, weights) = kernels_and_weights();
        let space = DesignSpace::paper();
        session
            .explore(&base, &kernels, &weights, &space, ExploreControl::default())
            .unwrap();
        let first = session.stats();
        assert!(first.model_reports > 0);
        assert_eq!(first.profile_entries, kernels.len());
        assert_eq!(first.mapped_contexts, kernels.len());

        session
            .explore(&base, &kernels, &weights, &space, ExploreControl::default())
            .unwrap();
        let second = session.stats();
        // Nothing new was synthesized, mapped, or profiled...
        assert_eq!(second.model_reports, first.model_reports);
        assert_eq!(second.model_misses, first.model_misses);
        assert_eq!(second.profile_entries, first.profile_entries);
        assert_eq!(second.profile_misses, first.profile_misses);
        assert_eq!(second.mapped_contexts, first.mapped_contexts);
        assert_eq!(second.context_misses, first.context_misses);
        // ...because the memos answered instead.
        assert_eq!(
            second.context_hits,
            first.context_hits + kernels.len() as u64
        );
        assert!(second.model_hits > first.model_hits);
        assert_eq!(
            second.profile_hits,
            first.profile_hits + kernels.len() as u64
        );
        assert!(second.requests > first.requests);
    }

    #[test]
    fn session_flow_is_bit_identical_to_cold_flow() {
        let apps = vec![AppProfile::new(
            "session-test",
            vec![(suite::fdct(), 99), (suite::sad(), 396)],
        )];
        let cold = run_flow(&apps, &FlowConfig::default()).unwrap();
        let session = Session::builder().build();
        for _ in 0..2 {
            let warm = session
                .flow(&apps, DesignSpace::paper(), ExploreControl::default())
                .unwrap();
            assert_eq!(warm.chosen.name(), cold.chosen.name());
            assert_eq!(warm.area_slices.to_bits(), cold.area_slices.to_bits());
            assert_eq!(
                warm.weighted_et_ns().to_bits(),
                cold.weighted_et_ns().to_bits()
            );
        }
        assert!(session.stats().model_hits > 0);
    }

    #[test]
    fn profile_cache_distinguishes_kernels_and_kinds() {
        let session = Session::builder().build();
        let base = session.base(8, 8);
        let cache = session.profile_cache();
        let ctx_fdct = session.map(&base, &suite::fdct()).unwrap();
        let ctx_sad = session.map(&base, &suite::sad()).unwrap();
        cache.get_or_build(&ctx_fdct, &suite::fdct(), &[FuKind::Multiplier]);
        cache.get_or_build(&ctx_sad, &suite::sad(), &[FuKind::Multiplier]);
        cache.get_or_build(
            &ctx_fdct,
            &suite::fdct(),
            &[FuKind::Multiplier, FuKind::Alu],
        );
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        cache.get_or_build(&ctx_fdct, &suite::fdct(), &[FuKind::Multiplier]);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn map_memo_reuses_contexts_per_base() {
        let session = Session::builder().build();
        let base8 = session.base(8, 8);
        let base4 = session.base(4, 4);
        let a = session.map(&base8, &suite::sad()).unwrap();
        let b = session.map(&base8, &suite::sad()).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // A different base is a different key.
        let c = session.map(&base4, &suite::sad()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(session.stats().mapped_contexts, 2);
        assert_eq!(session.stats().context_hits, 1);
        assert_eq!(session.stats().context_misses, 2);
    }
}
