//! RSP design-space exploration (§4).
//!
//! Enumerates RSP parameter combinations — shared resource types, pipeline
//! depths, `shr`, `shc`, heterogeneous mixes — over a base architecture;
//! estimates hardware cost with eq. (2) and performance with the
//! admissible slack-aware stall estimate (see [`crate::estimate`]);
//! rejects points violating the cost/performance constraints; keeps the
//! Pareto frontier; and selects an optimum under a configurable
//! objective.
//!
//! # Engine architecture
//!
//! [`explore_with`] is a parallel, allocation-free engine; [`explore`] is
//! a thin compatibility wrapper over it, and [`explore_reference`] keeps
//! the original textbook serial implementation as the oracle the engine
//! is property-tested against (and the baseline the tracked
//! `BENCH_explore.json` measures speedups from). The engine differs from
//! the reference in *mechanics only* — its results are bit-identical:
//!
//! * **Shared base, no deep clones** — candidates hold the base array
//!   behind one `Arc` ([`rsp_arch::RspArchitecture::base_arc`]) instead
//!   of cloning geometry + PE + bus tables per plan.
//! * **Memoized synthesis** — area/clock reports come from a
//!   [`rsp_synth::ModelCache`] keyed by `(geometry, plan)`, i.e. by
//!   `(kind, shr, shc, stages)` for single-group spaces. Pass one cache
//!   via [`ExploreOptions::cache`] to share it across repeated
//!   explorations, which then never re-synthesize a plan they have seen.
//! * **Profiled demand, suffix tables** — each kernel's per-cycle
//!   demand for every shared kind in the space is profiled once into a
//!   word-packed bit-plane [`rsp_mapper::CycleDemand`] with precomputed
//!   slack suffix tables; a candidate's RS estimate is an
//!   O(non-empty cycles) sweep over those tables
//!   ([`crate::ContextProfile`]). Nothing of size
//!   `cycles × rows × cols` is ever allocated.
//! * **Deterministic parallel fan-out** — candidates are processed in
//!   fixed-size chunks ([`CHUNK`]); each chunk fans out over the rayon
//!   pool and results are merged back **in enumeration order**, so the
//!   feasible set, Pareto frontier, and selected optimum are identical
//!   for any thread count, including `parallelism = Some(1)`.
//! * **Admissible pruning, bound-as-estimate reuse** — before full
//!   estimation, a candidate's weighted execution time is bounded from
//!   below by the slack-aware suffix floor
//!   ([`crate::ContextProfile::rs_stalls_lower_bound`]); the bound's
//!   strength is selectable via [`ExploreOptions::bound`]
//!   ([`BoundKind::PerRowResidual`], the default, adds the per-row and
//!   per-column residual terms and is bit-identical to the full
//!   estimate's exec floor — so for survivors the engine *adopts* the
//!   bound as the estimate instead of recomputing it, and pruning
//!   bookkeeping costs nothing extra even on spaces too small to prune).
//!   [`PruneStrategy::LowerBound`] (the default) skips candidates whose
//!   *lower bound* already violates `max_slowdown` — such candidates are
//!   provably rejected by the reference too (the bound is term-wise
//!   monotone under IEEE-754 rounding), so pruning never changes the
//!   result. [`PruneStrategy::Dominated`] additionally skips candidates
//!   whose lower bound is already strictly dominated by an accepted
//!   point; these can never join the Pareto frontier or be selected, but
//!   they do silently vanish from [`Exploration::feasible`] — hence
//!   opt-in.
//! * **Area-ordered enumeration** — under [`PruneStrategy::Dominated`]
//!   candidates are enumerated in ascending synthesized-area order
//!   (areas come from the memoized [`ModelCache`] area-only fast path),
//!   so small, strong designs populate the frontier first and the
//!   dominated test starts cutting almost immediately instead of after
//!   most of the space has been estimated. The ordering pre-pass
//!   constructs each candidate's [`RspArchitecture`] exactly once and
//!   carries it (with its area report) through to estimation — the
//!   stream sorts *indices*, so no candidate is rebuilt downstream.
//! * **Pre-synthesis clock cut** — before a candidate's delay is
//!   synthesized, its execution time is floored using the admissible
//!   stage-structure clock bound ([`ClockBound::StageFloor`], served by
//!   the `ModelCache::clock_floor` fast path) times the admissible
//!   cycle lower bound. A candidate whose *floored* time already
//!   violates `max_slowdown` is cut without ever paying for delay
//!   synthesis — the cheapest possible rejection, counted separately in
//!   [`PruneStats::clock_bound_cuts`]. Result-preserving for the same
//!   reason the lower-bound prune is: `est_et ≥ lb_et ≥ lb_floor_et`
//!   term-wise under IEEE-754 rounding.
//! * **Streaming frontier** — feasible points stream into a
//!   [`crate::ParetoFrontier`], which both answers the dominated-pruning
//!   queries in O(log frontier) and emits the final Pareto set
//!   incrementally. Its emission is proven (and property-tested)
//!   bit-identical to the batch [`pareto_indices`] sweep the reference
//!   performs — frontier *equality*, not merely equivalence — including
//!   the sweep's `1e-12` epsilon and NaN handling.
//! * **Anytime operation** — the sweep honours an
//!   [`ExploreControl`] (wall-clock deadline, candidate budget, external
//!   cancel flag), checked cooperatively before each candidate is pulled
//!   from the stream. A stopped run returns the prefix evaluated so far,
//!   tagged [`Exploration::completeness`]; see [`crate::control`] for
//!   the truncation-soundness argument. A truncated run can be
//!   serialized with [`Exploration::checkpoint`] and continued with
//!   [`explore_resume`] to the bit-identical complete result.
//! * **Panic isolation** — each candidate's parallel evaluation runs
//!   under `catch_unwind`; a candidate whose synthesis or estimation
//!   panics is counted in [`PruneStats::faulted`] and skipped instead of
//!   poisoning the whole sweep. Surviving results are unaffected: a
//!   faulted candidate contributes nothing, exactly as if it had been
//!   rejected.
//!
//! Pruning efficacy is observable: [`Exploration::stats`] reports
//! candidates seen/pruned and the measured mean tightness of the lower
//! bound against the full estimate ([`PruneStats`]).

use crate::control::{Completeness, ControlClock, ExploreControl, TruncationReason};
use crate::error::RspError;
use crate::estimate::{
    estimate_stalls_dense, refill_stall_estimate, BoundKind, ClockBound, ContextProfile,
};
use crate::frontier::{pareto_indices_of, ParetoFrontier};
use rayon::prelude::*;
use rsp_arch::{BaseArchitecture, FuKind, RspArchitecture, SharedGroup, SharingPlan};
use rsp_kernel::Kernel;
use rsp_mapper::ConfigContext;
use rsp_obs::{Recorder, Span, Value};
use rsp_synth::{AreaModel, AreaReport, DelayModel, ModelCache};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// One kind's parameter ranges inside a heterogeneous sharing mix (see
/// [`DesignSpace::mixes`]): every `(stages, shr, shc)` combination of the
/// axis, plus the implicit "don't share this kind" option.
#[derive(Debug, Clone)]
pub struct MixAxis {
    /// The shared resource kind this axis varies.
    pub kind: FuKind,
    /// Candidate pipeline depths (1 = RS only; ≥2 = RSP).
    pub stages: Vec<u8>,
    /// Candidate `shr` values (shared resources per row).
    pub shr: Vec<usize>,
    /// Candidate `shc` values (shared resources per column).
    pub shc: Vec<usize>,
}

/// The RSP parameter ranges to enumerate.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// Candidate shared resource kinds (the paper shares the multiplier).
    /// Combined with `stages`/`shr`/`shc` into single-group plans.
    pub shared_kinds: Vec<FuKind>,
    /// Candidate pipeline depths (1 = RS only; ≥2 = RSP).
    pub stages: Vec<u8>,
    /// Candidate `shr` values (shared resources per row).
    pub shr: Vec<usize>,
    /// Candidate `shc` values (shared resources per column).
    pub shc: Vec<usize>,
    /// Heterogeneous mixes: each mix is a set of per-kind axes whose
    /// cross product (including each axis's "unshared" option, minus the
    /// all-unshared plan) is enumerated as multi-group plans on top of
    /// the single-kind grid above. Empty for the single-kind spaces.
    pub mixes: Vec<Vec<MixAxis>>,
}

impl DesignSpace {
    /// The paper's evaluated space: multiplier sharing with the four
    /// Fig. 8 configurations, combinational or 2-stage.
    pub fn paper() -> Self {
        Self {
            shared_kinds: vec![FuKind::Multiplier],
            stages: vec![1, 2],
            shr: vec![1, 2],
            shc: vec![0, 1, 2],
            mixes: vec![],
        }
    }

    /// A wider space for ablation studies.
    pub fn extended() -> Self {
        Self {
            shared_kinds: vec![FuKind::Multiplier],
            stages: vec![1, 2, 3, 4],
            shr: vec![1, 2, 3],
            shc: vec![0, 1, 2, 3],
            mixes: vec![],
        }
    }

    /// A deep space stressing the engine: every sharable kind, pipeline
    /// depths up to the template's maximum of 8, and wide bank ranges —
    /// the SHP-style deep-pipelining sweep the 12-point paper grid only
    /// hints at. Enumerates lazily under the result-preserving prune
    /// strategies; [`PruneStrategy::Dominated`] materializes the plan
    /// list once to sort candidates by synthesized area.
    pub fn deep() -> Self {
        Self {
            shared_kinds: vec![FuKind::Multiplier, FuKind::Alu, FuKind::Shifter],
            stages: vec![1, 2, 3, 4, 5, 6, 7, 8],
            shr: vec![1, 2, 3, 4],
            shc: vec![0, 1, 2, 3, 4],
            mixes: vec![],
        }
    }

    /// The `deep × 100`-class space (ROADMAP item 2): one heterogeneous
    /// mix over all three sharable kinds, enumerating every combination
    /// of multiplier, ALU, and shifter sharing — including leaving any
    /// subset unshared — as multi-group plans. 11 024 candidates
    /// (49 × 25 × 9 − 1), ~23× [`deep`](Self::deep) and ~900× the
    /// 12-point paper grid. Built to stress the admissible slack-aware
    /// bound: most mixes share the near-saturated ALU or shifter and are
    /// provably hopeless from their lower bound alone, so the pruned
    /// engine should skip well over half the space while staying
    /// frontier-bit-identical to the unpruned sweep.
    pub fn deep100() -> Self {
        Self {
            shared_kinds: vec![],
            stages: vec![],
            shr: vec![],
            shc: vec![],
            mixes: vec![vec![
                MixAxis {
                    kind: FuKind::Multiplier,
                    stages: vec![1, 2, 3, 4],
                    shr: vec![1, 2, 3, 4],
                    shc: vec![0, 1, 2],
                },
                MixAxis {
                    kind: FuKind::Alu,
                    stages: vec![1, 2],
                    shr: vec![1, 2, 3, 4],
                    shc: vec![0, 1, 2],
                },
                MixAxis {
                    kind: FuKind::Shifter,
                    stages: vec![1, 2],
                    shr: vec![1, 2],
                    shc: vec![0, 1],
                },
            ]],
        }
    }

    /// Every shared kind any plan of this space can contain: the
    /// single-kind grid's kinds plus every mix axis's kind, first-seen
    /// order, deduplicated. This is the kind set kernel profiles must
    /// cover so any enumerated plan can be bounded and estimated.
    pub fn kinds_used(&self) -> Vec<FuKind> {
        let mut kinds: Vec<FuKind> = Vec::new();
        let axis_kinds = self.mixes.iter().flatten().map(|a| a.kind);
        for kind in self.shared_kinds.iter().copied().chain(axis_kinds) {
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
        kinds
    }

    /// Lazily enumerates every sharing plan in the space: the
    /// single-kind grid (one shared group per plan), then each mix's
    /// cross product as multi-group plans. Invalid parameter
    /// combinations (e.g. pipeline stages on a non-pipelinable kind, or
    /// a kind repeated within one mix) are skipped.
    pub fn plans(&self) -> impl Iterator<Item = SharingPlan> + '_ {
        let grid = self.shared_kinds.iter().flat_map(move |&kind| {
            self.stages.iter().flat_map(move |&stages| {
                self.shr.iter().flat_map(move |&shr| {
                    self.shc.iter().filter_map(move |&shc| {
                        if shr == 0 && shc == 0 {
                            return None;
                        }
                        let g = SharedGroup::new(kind, shr, shc, stages).ok()?;
                        // Single-group plans never collide.
                        Some(SharingPlan::none().with_group(g).expect("single group"))
                    })
                })
            })
        });
        let mixed = self.mixes.iter().flat_map(|mix| {
            // Per-axis options: slot 0 is "unshared", the rest are the
            // axis's valid (stages, shr, shc) groups. The tiny option
            // tables are materialized up front; the (possibly huge)
            // cross product stays a lazy mixed-radix index walk.
            let axes: Vec<Vec<Option<SharedGroup>>> = mix
                .iter()
                .map(|axis| {
                    let mut options = vec![None];
                    for &stages in &axis.stages {
                        for &shr in &axis.shr {
                            for &shc in &axis.shc {
                                if shr == 0 && shc == 0 {
                                    continue;
                                }
                                if let Ok(g) = SharedGroup::new(axis.kind, shr, shc, stages) {
                                    options.push(Some(g));
                                }
                            }
                        }
                    }
                    options
                })
                .collect();
            let total: usize = axes.iter().map(Vec::len).product();
            // Index 0 decodes to every axis unshared (the base plan);
            // every index ≥ 1 yields at least one shared group.
            (1..total).filter_map(move |index| {
                let mut plan = SharingPlan::none();
                let mut rest = index;
                for options in &axes {
                    let pick = rest % options.len();
                    rest /= options.len();
                    if let Some(g) = options[pick] {
                        plan = plan.with_group(g).ok()?;
                    }
                }
                Some(plan)
            })
        });
        grid.chain(mixed)
    }
}

/// Constraints applied before Pareto filtering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Require eq. (2): `HWcost < n·m·PE` (reject designs costlier than
    /// the base array).
    pub enforce_cost_bound: bool,
    /// Reject designs whose estimated weighted execution time exceeds
    /// `max_slowdown ×` the base architecture's (e.g. 1.5 = at most 50 %
    /// slower).
    pub max_slowdown: f64,
}

impl Default for Constraints {
    fn default() -> Self {
        Self {
            enforce_cost_bound: true,
            max_slowdown: 1.5,
        }
    }
}

/// Selection objective among Pareto points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize `area × weighted execution time` (the balanced choice).
    AreaDelayProduct,
    /// Minimize weighted execution time.
    ExecutionTime,
    /// Minimize area.
    Area,
}

/// How aggressively [`explore_with`] may skip full estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PruneStrategy {
    /// Estimate every candidate (maximum-fidelity baseline behaviour).
    None,
    /// Skip candidates whose admissible execution-time lower bound
    /// already violates `max_slowdown`. Provably result-preserving:
    /// every skipped candidate would have been rejected anyway.
    #[default]
    LowerBound,
    /// Additionally skip candidates whose `(area, lower-bound time)` is
    /// strictly dominated by an already-accepted point. Such candidates
    /// can never enter the Pareto frontier or be selected as `best`, but
    /// they are dropped from [`Exploration::feasible`] — opt in when only
    /// the frontier matters.
    Dominated,
}

/// Options for [`explore_with`].
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Worker threads for candidate evaluation. `None` uses every
    /// available core; `Some(1)` runs in-thread. Results are identical
    /// either way.
    pub parallelism: Option<usize>,
    /// Pruning aggressiveness (default [`PruneStrategy::LowerBound`]).
    pub prune: PruneStrategy,
    /// Strength of the admissible execution-time lower bound pruning
    /// works with (default [`BoundKind::PerRowResidual`], the tighter
    /// one). Either kind is result-preserving; the knob exists so the
    /// aggregate bound stays measurable as a baseline.
    pub bound: BoundKind,
    /// Whether to consult the admissible stage-structure clock floor
    /// before delay synthesis (default [`ClockBound::StageFloor`]).
    /// Candidates whose floored execution time already violates
    /// `max_slowdown` are cut without synthesizing their clock; both
    /// settings are result-preserving, the knob keeps the no-floor
    /// baseline measurable. Only consulted when `prune` is not
    /// [`PruneStrategy::None`].
    pub clock_bound: ClockBound,
    /// Feasibility constraints.
    pub constraints: Constraints,
    /// Selection objective.
    pub objective: Objective,
    /// Synthesis-report memo to use. Pass one shared [`ModelCache`] when
    /// exploring overlapping spaces repeatedly (every plan is synthesized
    /// exactly once across all runs that share it); `None` builds a
    /// run-local cache, which still deduplicates the base plan and any
    /// plans repeated within the space.
    pub cache: Option<Arc<ModelCache>>,
    /// Kernel-profile memo to use. Pass one shared
    /// [`ProfileCache`](crate::ProfileCache) when exploring the same
    /// kernels repeatedly (each `(context, kernel)` pair is profiled
    /// exactly once across all runs that share it); `None` profiles
    /// fresh per run. Profiling is pure, so results are unaffected.
    pub profiles: Option<Arc<crate::ProfileCache>>,
    /// Run budget and cooperative cancellation (default: unlimited).
    /// When a deadline, candidate budget, or external cancel stops the
    /// sweep early, the result is an anytime prefix tagged
    /// [`Exploration::completeness`]; see [`crate::control`].
    pub control: ExploreControl,
    /// Recorder phase spans and prune decisions are reported to.
    /// Defaults to [`rsp_obs::global`] **at construction time** (install
    /// a global before building options to observe this run). Purely
    /// observational: results are bit-identical whatever is attached,
    /// and the default [`rsp_obs::NullRecorder`] skips even clock reads.
    pub recorder: Arc<dyn Recorder>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            parallelism: None,
            prune: PruneStrategy::default(),
            bound: BoundKind::default(),
            clock_bound: ClockBound::default(),
            constraints: Constraints::default(),
            objective: Objective::AreaDelayProduct,
            cache: None,
            profiles: None,
            control: ExploreControl::default(),
            recorder: rsp_obs::global(),
        }
    }
}

/// Pruning efficacy counters of one exploration (see
/// [`Exploration::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Candidate plans enumerated from the design space (including ones
    /// later rejected by constraints).
    pub candidates_seen: usize,
    /// Candidates whose full estimation was skipped — by the lower-bound
    /// slowdown test or, under [`PruneStrategy::Dominated`], the
    /// dominated-candidate test.
    pub candidates_pruned: usize,
    /// Mean of `lower_bound_et / estimated_et` over the candidates that
    /// *were* fully estimated (1.0 = the bound is exact; 0.0 when
    /// pruning was disabled, so no bounds were computed).
    pub bound_tightness: f64,
    /// Subset of `candidates_pruned` cut by the stage-structure clock
    /// floor ([`ClockBound::StageFloor`]) *before* delay synthesis —
    /// these candidates never reached the `ModelCache` delay path at
    /// all.
    pub clock_bound_cuts: usize,
    /// Candidates whose evaluation panicked (isolated by
    /// `catch_unwind`) and were skipped instead of aborting the sweep.
    pub faulted: usize,
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The candidate architecture.
    pub arch: RspArchitecture,
    /// Synthesized area (slices).
    pub area_slices: f64,
    /// Clock period (ns).
    pub clock_ns: f64,
    /// Estimated cycles per kernel (the admissible slack-aware
    /// estimate; never exceeds the exact rearranged schedule's elapsed
    /// cycles), kernel order of the exploration input.
    pub est_cycles: Vec<u32>,
    /// Weighted estimated execution time (ns).
    pub est_et_ns: f64,
    /// Whether eq. (2)'s cost bound holds.
    pub cost_bound_ok: bool,
}

/// Exploration output.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every candidate that passed the constraints.
    pub feasible: Vec<DesignPoint>,
    /// Indices into `feasible` forming the (area, time) Pareto frontier,
    /// sorted by area.
    pub pareto: Vec<usize>,
    /// Index into `feasible` of the selected optimum. `usize::MAX` when
    /// a truncated run has no feasible point yet — use
    /// [`try_best_point`](Self::try_best_point) when the run may have
    /// been truncated.
    pub best: usize,
    /// Weighted estimated execution time of the base architecture (ns).
    pub base_et_ns: f64,
    /// Candidates whose full estimation was skipped by pruning
    /// (equals `stats.candidates_pruned`; kept as a convenience).
    pub pruned: usize,
    /// Pruning efficacy counters.
    pub stats: PruneStats,
    /// Whether the whole candidate stream was processed, or the sweep
    /// stopped early under its [`ExploreControl`].
    pub completeness: Completeness,
    /// `(Σ lb_et/est_et, count)` accumulator behind
    /// `stats.bound_tightness`, kept exactly so checkpoints restore the
    /// bit-identical accumulator state.
    pub(crate) tightness: (f64, usize),
    /// Fingerprint of the options/space this result was computed under,
    /// embedded in checkpoints and validated by [`explore_resume`].
    pub(crate) fingerprint: EngineFingerprint,
}

impl Exploration {
    /// The selected design point.
    ///
    /// # Panics
    ///
    /// When a truncated run found no feasible point yet (`best` is
    /// `usize::MAX`); use [`try_best_point`](Self::try_best_point) then.
    pub fn best_point(&self) -> &DesignPoint {
        &self.feasible[self.best]
    }

    /// The selected design point, or `None` when a truncated run has no
    /// feasible point yet.
    pub fn try_best_point(&self) -> Option<&DesignPoint> {
        self.feasible.get(self.best)
    }

    /// The Pareto-frontier points, smallest area first.
    pub fn pareto_points(&self) -> impl Iterator<Item = &DesignPoint> {
        self.pareto.iter().map(|&i| &self.feasible[i])
    }

    /// Serializes this result's resumable state: the evaluated feasible
    /// prefix (plans plus their estimates), the enumeration cursor, the
    /// pruning counters, and a fingerprint of the options/space. Feed it
    /// to [`explore_resume`] — with the same inputs and options — to
    /// continue a truncated run to the bit-identical complete result.
    ///
    /// All recorded floats are finite in practice and survive a
    /// `serde_json` round trip bit-exactly (shortest-round-trip float
    /// formatting).
    pub fn checkpoint(&self) -> ExploreCheckpoint {
        ExploreCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: self.fingerprint,
            cursor: self.stats.candidates_seen,
            base_et_ns: self.base_et_ns,
            candidates_pruned: self.stats.candidates_pruned,
            clock_bound_cuts: self.stats.clock_bound_cuts,
            faulted: self.stats.faulted,
            tightness_sum: self.tightness.0,
            tightness_count: self.tightness.1,
            points: self
                .feasible
                .iter()
                .map(|p| CheckpointPoint {
                    name: p.arch.name().to_string(),
                    plan: p.arch.plan().clone(),
                    area_slices: p.area_slices,
                    clock_ns: p.clock_ns,
                    est_cycles: p.est_cycles.clone(),
                    est_et_ns: p.est_et_ns,
                    cost_bound_ok: p.cost_bound_ok,
                })
                .collect(),
        }
    }
}

/// Checkpoint schema version, bumped on incompatible layout changes.
const CHECKPOINT_VERSION: u32 = 1;

/// Fingerprint of everything that shapes candidate enumeration and
/// evaluation. A checkpoint embeds one; [`explore_resume`] refuses to
/// continue under options or a space that fingerprint differently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct EngineFingerprint {
    pub(crate) prune: PruneStrategy,
    pub(crate) bound: BoundKind,
    pub(crate) clock_bound: ClockBound,
    pub(crate) objective: Objective,
    pub(crate) constraints: Constraints,
    pub(crate) candidates_total: usize,
}

impl EngineFingerprint {
    fn of(options: &ExploreOptions, candidates_total: usize) -> Self {
        Self {
            prune: options.prune,
            bound: options.bound,
            clock_bound: options.clock_bound,
            objective: options.objective,
            constraints: options.constraints,
            candidates_total,
        }
    }
}

/// One feasible point recorded in a checkpoint: the plan (the
/// architecture is rebuilt on resume) plus its evaluated estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckpointPoint {
    name: String,
    plan: SharingPlan,
    area_slices: f64,
    clock_ns: f64,
    est_cycles: Vec<u32>,
    est_et_ns: f64,
    cost_bound_ok: bool,
}

/// A serializable snapshot of a (possibly truncated) exploration:
/// the feasible prefix, the enumeration cursor, and an options
/// fingerprint. Produced by [`Exploration::checkpoint`], consumed by
/// [`explore_resume`]. Serializes with serde like the BENCH artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExploreCheckpoint {
    version: u32,
    fingerprint: EngineFingerprint,
    cursor: usize,
    base_et_ns: f64,
    candidates_pruned: usize,
    clock_bound_cuts: usize,
    faulted: usize,
    tightness_sum: f64,
    tightness_count: usize,
    points: Vec<CheckpointPoint>,
}

impl ExploreCheckpoint {
    /// Candidates already processed (the enumeration cursor a resumed
    /// run continues from).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Total candidates in the recorded design space.
    pub fn candidates_total(&self) -> usize {
        self.fingerprint.candidates_total
    }

    /// Whether the recorded run had already processed every candidate
    /// (resuming is then a no-op that returns the complete result).
    pub fn is_complete(&self) -> bool {
        self.cursor >= self.fingerprint.candidates_total
    }
}

/// Explores `space` for the given kernels (with execution-frequency
/// weights) over `base`, using the parallel engine with default options.
///
/// `contexts` must be the kernels' initial configuration contexts on
/// `base`, in the same order as `kernels`.
///
/// # Errors
///
/// [`RspError::NoFeasibleDesign`] when every candidate violates the
/// constraints.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::{explore, Constraints, DesignSpace, Objective};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let base = presets::base_8x8();
/// let kernels: Vec<_> = suite::all();
/// let contexts: Vec<_> = kernels
///     .iter()
///     .map(|k| map(base.base(), k, &MapOptions::default()).unwrap())
///     .collect();
/// let weights = vec![1.0; kernels.len()];
///
/// let result = explore(
///     base.base(),
///     &kernels,
///     &contexts,
///     &weights,
///     &DesignSpace::paper(),
///     &Constraints::default(),
///     Objective::AreaDelayProduct,
/// )?;
/// // The paper's conclusion: a pipelined (RSP) design wins.
/// assert!(result.best_point().arch.plan().has_pipelining());
/// # Ok::<(), rsp_core::RspError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn explore(
    base: &BaseArchitecture,
    kernels: &[Kernel],
    contexts: &[ConfigContext],
    weights: &[f64],
    space: &DesignSpace,
    constraints: &Constraints,
    objective: Objective,
) -> Result<Exploration, RspError> {
    explore_with(
        base,
        kernels,
        contexts,
        weights,
        space,
        &ExploreOptions {
            constraints: *constraints,
            objective,
            ..ExploreOptions::default()
        },
    )
}

/// Fixed chunk size of the deterministic pipeline. Prune decisions for a
/// candidate may depend on results of *earlier chunks only*, and the
/// chunk size is a constant (never derived from the thread count), so
/// every `parallelism` setting takes identical decisions.
const CHUNK: usize = 64;

/// One candidate entering the evaluation pipeline.
enum Seed {
    /// Lazy enumeration order: the architecture is constructed in
    /// phase A.
    Plan(SharingPlan),
    /// Prebuilt by the Dominated area-ordering pre-pass, carried through
    /// (with its area report) so phase A never constructs the same
    /// candidate twice.
    Built(Box<RspArchitecture>, AreaReport),
    /// Invalid parameter combination found by the pre-pass; rejected in
    /// phase A exactly like the lazy path would reject it.
    Invalid,
}

/// Phase-A verdict on one candidate. The `Ready` payload is
/// `(arch, area, clock, cost_ok, lb_cycles, lb_et)`; the lower bound
/// rides along so the merge phase can measure its tightness against the
/// full estimate — and, when the bound *is* the estimate (see
/// [`reuses_bound_as_estimate`]), so phase C can adopt it outright.
enum Prepared {
    /// Survived the pre-synthesis checks; clock synthesized.
    Ready(RspArchitecture, f64, f64, bool, Vec<u32>, f64),
    /// The stage-floor clock bound alone proves the candidate violates
    /// `max_slowdown`; its delay was never synthesized.
    ClockCut,
    /// Construction failed or the eq. (2) cost bound rejects it — the
    /// reference rejects it too.
    Reject,
    /// The candidate's synthesis panicked; isolated by `catch_unwind`
    /// and counted in [`PruneStats::faulted`].
    Faulted,
}

/// Serial-screen verdict on one prepared candidate.
enum Screen {
    /// Estimate fully (or adopt the carried bound as the estimate).
    Evaluate(RspArchitecture, f64, f64, bool, Vec<u32>, f64),
    /// Provably infeasible or dominated; skip silently.
    Prune,
    /// Fails a hard constraint the reference also applies pre-push.
    Reject,
}

/// Phase-C outcome for one screened candidate.
enum Evaluated {
    /// Fully estimated, with its lower bound for the tightness stat.
    Point(Box<DesignPoint>, f64),
    /// Was pruned or rejected upstream; nothing to merge.
    Skipped,
    /// The candidate's estimation panicked; isolated by `catch_unwind`
    /// and counted in [`PruneStats::faulted`].
    Faulted,
}

/// The parallel exploration engine. See the module docs for the
/// guarantees; [`explore`] forwards here.
///
/// # Errors
///
/// [`RspError::NoFeasibleDesign`] when every candidate violates the
/// constraints.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::{explore_with, DesignSpace, ExploreOptions};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let base = presets::base_8x8();
/// let kernels: Vec<_> = suite::all();
/// let contexts: Vec<_> = kernels
///     .iter()
///     .map(|k| map(base.base(), k, &MapOptions::default()).unwrap())
///     .collect();
/// let weights = vec![1.0; kernels.len()];
///
/// let result = explore_with(
///     base.base(),
///     &kernels,
///     &contexts,
///     &weights,
///     &DesignSpace::extended(),
///     &ExploreOptions::default(),
/// )?;
/// assert!(result.best_point().arch.plan().has_pipelining());
/// # Ok::<(), rsp_core::RspError>(())
/// ```
pub fn explore_with(
    base: &BaseArchitecture,
    kernels: &[Kernel],
    contexts: &[ConfigContext],
    weights: &[f64],
    space: &DesignSpace,
    options: &ExploreOptions,
) -> Result<Exploration, RspError> {
    explore_engine(base, kernels, contexts, weights, space, options, None)
}

/// Continues a checkpointed run: replays the recorded feasible prefix
/// and pruning state, skips the first [`cursor`](ExploreCheckpoint::cursor)
/// candidates, and processes the rest with the normal engine — under the
/// checkpoint's `options.control` budget, which is fresh for this call.
/// Resuming a truncated run with no further budget limits reaches the
/// result an uninterrupted [`explore_with`] call would have produced,
/// bit for bit (property-tested in `tests/anytime.rs`).
///
/// # Errors
///
/// [`RspError::CheckpointMismatch`] when `checkpoint` was recorded under
/// different options, a different design space, or a different base
/// architecture/kernel profile (detected via an options fingerprint and
/// the bit-exact base execution time).
/// [`RspError::NoFeasibleDesign`] when the completed run has no feasible
/// candidate.
#[allow(clippy::too_many_arguments)]
pub fn explore_resume(
    base: &BaseArchitecture,
    kernels: &[Kernel],
    contexts: &[ConfigContext],
    weights: &[f64],
    space: &DesignSpace,
    options: &ExploreOptions,
    checkpoint: &ExploreCheckpoint,
) -> Result<Exploration, RspError> {
    explore_engine(
        base,
        kernels,
        contexts,
        weights,
        space,
        options,
        Some(checkpoint),
    )
}

/// Shared engine behind [`explore_with`] and [`explore_resume`].
fn explore_engine(
    base: &BaseArchitecture,
    kernels: &[Kernel],
    contexts: &[ConfigContext],
    weights: &[f64],
    space: &DesignSpace,
    options: &ExploreOptions,
    resume: Option<&ExploreCheckpoint>,
) -> Result<Exploration, RspError> {
    assert_eq!(kernels.len(), contexts.len());
    assert_eq!(kernels.len(), weights.len());
    let constraints = &options.constraints;
    let models = options
        .cache
        .clone()
        .unwrap_or_else(|| Arc::new(ModelCache::new()));
    let cache_depth = base.config_cache_depth() as u32;
    let base = Arc::new(base.clone());

    let base_arch = RspArchitecture::new("Base", Arc::clone(&base), SharingPlan::none())
        .expect("base plan is always valid");
    let base_clock = models.reports(&base_arch).1.clock_ns;
    let base_et: f64 = contexts
        .iter()
        .zip(weights)
        .map(|(c, w)| w * c.total_cycles() as f64 * base_clock)
        .sum();
    let et_bound = constraints.max_slowdown * base_et;

    let candidates_total = space.plans().count();
    let fingerprint = EngineFingerprint::of(options, candidates_total);
    if let Some(ckpt) = resume {
        validate_checkpoint(ckpt, &fingerprint, base_et)?;
    }

    // One profile per kernel, shared read-only by all workers — served
    // from the caller's ProfileCache when one rides along (profiling is
    // pure, so cached and fresh profiles are interchangeable). Profiles
    // cover every kind the space can share, grid or mix.
    let profile_kinds = space.kinds_used();
    let profiles: Vec<Arc<ContextProfile>> = contexts
        .iter()
        .zip(kernels)
        .map(|(ctx, k)| match &options.profiles {
            Some(cache) => cache.get_or_build(ctx, k, &profile_kinds),
            None => Arc::new(ContextProfile::new(ctx, k, &profile_kinds)),
        })
        .collect();

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(options.parallelism.unwrap_or(0))
        .build()
        .expect("thread pool");

    // Candidate stream: enumeration order by default (which is what the
    // bit-identical guarantee for result-preserving strategies rests
    // on); under Dominated pruning — which already opts into a reordered
    // `feasible` — ascending synthesized-area order, computed through
    // the memoized area-only fast path. Small strong designs then enter
    // the frontier first, so the dominated test cuts from the start
    // instead of after most of the space has been estimated. The sort is
    // stable (enumeration index breaks area ties), which keeps tied
    // plans in reference order. The pre-pass constructs each candidate
    // architecture exactly once and the stream carries it — sorted by
    // index — into phase A, so ordering costs no second construction.
    // Observability: spans and prune decisions go to the caller's
    // recorder. Everything below is gated on `obs.enabled()` (directly
    // or inside `Span`/`count`), so the default `NullRecorder` costs
    // one branch per site and zero clock reads.
    let obs = &*options.recorder;

    let enumerate_span = Span::enter(obs, "explore", "enumerate", 0);
    let mut seeds: Box<dyn Iterator<Item = Seed> + '_> =
        if options.prune == PruneStrategy::Dominated {
            let all: Vec<SharingPlan> = space.plans().collect();
            let mut built: Vec<Option<(Box<RspArchitecture>, AreaReport)>> = pool.install(|| {
                all.into_par_iter()
                    .map(|plan| {
                        let name = plan_name(&plan);
                        RspArchitecture::new(name, Arc::clone(&base), plan)
                            .ok()
                            .map(|arch| {
                                let area = models.area_report(&arch);
                                (Box::new(arch), area)
                            })
                    })
                    .collect()
            });
            let mut order: Vec<usize> = (0..built.len()).collect();
            let area_of = |slot: &Option<(Box<RspArchitecture>, AreaReport)>| {
                slot.as_ref()
                    .map_or(f64::INFINITY, |(_, a)| a.synthesized_slices)
            };
            order.sort_by(|&a, &b| {
                area_of(&built[a])
                    .total_cmp(&area_of(&built[b]))
                    .then(a.cmp(&b))
            });
            Box::new(order.into_iter().map(move |i| match built[i].take() {
                Some((arch, area)) => Seed::Built(arch, area),
                None => Seed::Invalid,
            }))
        } else {
            Box::new(space.plans().map(Seed::Plan))
        };
    drop(enumerate_span);

    let mut feasible: Vec<DesignPoint> = Vec::new();
    let mut stats = PruneStats::default();
    // Tightness accumulator: Σ (lb_et / est_et) over fully estimated
    // candidates, and how many contributed.
    let mut tightness = (0.0f64, 0usize);
    // Streaming frontier: answers Dominated-pruning queries and emits
    // the final Pareto set, bit-identical to the reference batch sweep.
    let mut frontier = ParetoFrontier::new();

    // Resume: replay the recorded prefix state — feasible points (their
    // architectures rebuilt from the recorded plans), the frontier
    // (re-inserting the same point sequence reproduces the exact
    // staircase), the pruning counters, and the tightness accumulator —
    // then advance the candidate stream past the cursor.
    let start_cursor = resume.map_or(0, |c| c.cursor);
    if let Some(ckpt) = resume {
        for p in &ckpt.points {
            let arch = RspArchitecture::new(p.name.clone(), Arc::clone(&base), p.plan.clone())
                .map_err(|_| RspError::CheckpointMismatch {
                    what: format!("recorded plan of `{}` is invalid on this base", p.name),
                })?;
            frontier.insert(p.area_slices, p.est_et_ns, feasible.len());
            feasible.push(DesignPoint {
                arch,
                area_slices: p.area_slices,
                clock_ns: p.clock_ns,
                est_cycles: p.est_cycles.clone(),
                est_et_ns: p.est_et_ns,
                cost_bound_ok: p.cost_bound_ok,
            });
        }
        stats.candidates_seen = ckpt.cursor;
        stats.candidates_pruned = ckpt.candidates_pruned;
        stats.clock_bound_cuts = ckpt.clock_bound_cuts;
        stats.faulted = ckpt.faulted;
        tightness = (ckpt.tightness_sum, ckpt.tightness_count);
        for _ in 0..start_cursor {
            if seeds.next().is_none() {
                break;
            }
        }
    }

    let clock = ControlClock::new(&options.control);
    // Candidates pulled by *this call* (a resumed call's budget is
    // fresh; the deadline is measured from this call's start).
    let mut consumed = 0usize;
    let mut truncation: Option<TruncationReason> = None;
    let mut chunk_index = 0u64;

    loop {
        // Assemble the next chunk, checking the control before each
        // pull so truncation lands exactly at a candidate boundary.
        let mut chunk: Vec<Seed> = Vec::with_capacity(CHUNK);
        while chunk.len() < CHUNK {
            if let Some(reason) = clock.stop_reason(consumed + chunk.len()) {
                truncation = Some(reason);
                break;
            }
            match seeds.next() {
                Some(seed) => chunk.push(seed),
                None => break,
            }
        }
        if chunk.is_empty() {
            break;
        }
        consumed += chunk.len();
        stats.candidates_seen += chunk.len();

        // Phase A (parallel): construct candidates (unless the ordering
        // pre-pass already did), query areas through the memoized fast
        // path, compute the admissible cycle lower bound, consult the
        // stage-floor clock bound, and only then synthesize the clock —
        // all pure per-plan work, fanned out in stream order.
        let prepare = |seed: Seed| -> Prepared {
            let (arch, area) = match seed {
                Seed::Plan(plan) => {
                    let name = plan_name(&plan);
                    let Ok(arch) = RspArchitecture::new(name, Arc::clone(&base), plan) else {
                        return Prepared::Reject;
                    };
                    let area = models.area_report(&arch);
                    (arch, area)
                }
                Seed::Built(arch, area) => (*arch, area),
                Seed::Invalid => return Prepared::Reject,
            };
            let cost_ok = area.satisfies_cost_bound();
            if constraints.enforce_cost_bound && !cost_ok {
                // The reference rejects this candidate pre-push,
                // so its delay need never be synthesized.
                return Prepared::Reject;
            }
            // Term-wise identical arithmetic to the full estimate,
            // with the exec cycles replaced by the slack-aware exec
            // floor under the selected bound. Under the default
            // PerRowResidual bound the floor *is* the estimate's exec
            // term, so lb_cycles == est_cycles exactly; under the
            // Aggregate bound it is ≤ term-wise (and the refill charge
            // is monotone in exec), so lb_et <= est_et under IEEE-754
            // rounding either way.
            let mut lb_cycles: Vec<u32> = Vec::new();
            if options.prune != PruneStrategy::None {
                lb_cycles.reserve_exact(profiles.len());
                for profile in profiles.iter() {
                    let lb_exec = profile.total_cycles()
                        + profile.rs_stalls_lower_bound(arch.plan(), options.bound);
                    lb_cycles.push(lb_exec + refill_stall_estimate(lb_exec, cache_depth));
                }
                if options.clock_bound == ClockBound::StageFloor {
                    // Clock floor from the stage structure alone:
                    // floor <= clock, so term-wise lb_floor_et <=
                    // lb_et <= est_et — a candidate cut here is
                    // provably rejected by the reference, and its
                    // delay synthesis is skipped entirely.
                    let floor = models.clock_floor(&arch);
                    let mut lb_floor_et = 0.0;
                    for (c, w) in lb_cycles.iter().zip(weights) {
                        lb_floor_et += w * *c as f64 * floor;
                    }
                    if lb_floor_et > et_bound {
                        return Prepared::ClockCut;
                    }
                }
            }
            let (_, delay) = models.reports(&arch);
            let mut lb_et = 0.0;
            for (c, w) in lb_cycles.iter().zip(weights) {
                lb_et += w * *c as f64 * delay.clock_ns;
            }
            Prepared::Ready(
                arch,
                area.synthesized_slices,
                delay.clock_ns,
                cost_ok,
                lb_cycles,
                lb_et,
            )
        };

        let prepare_span = Span::enter(obs, "explore", "prepare", chunk_index);
        let prepared: Vec<Prepared> = pool.install(|| {
            chunk
                .into_par_iter()
                // Panic isolation *inside* the per-item closure: the
                // vendored rayon joins its workers with `expect`, so a
                // panic escaping the closure would abort the whole
                // sweep instead of poisoning one candidate.
                .map(|seed| {
                    catch_unwind(AssertUnwindSafe(|| prepare(seed))).unwrap_or(Prepared::Faulted)
                })
                .collect()
        });
        drop(prepare_span);

        // Phase B (serial, stream order): prune decisions against the
        // frontier built from earlier chunks only — identical for every
        // thread count.
        let screen_span = Span::enter(obs, "explore", "screen", chunk_index);
        let chunk_start = stats.candidates_seen - prepared.len();
        let mut screened: Vec<Screen> = Vec::with_capacity(prepared.len());
        for (offset, p) in prepared.into_iter().enumerate() {
            // Stream index of this candidate, stable across resumes —
            // the correlation id of its prune/fault events.
            let candidate = (chunk_start + offset) as u64;
            match p {
                Prepared::Reject => screened.push(Screen::Reject),
                Prepared::Faulted => {
                    // Isolated panic: count it, contribute nothing —
                    // downstream phases treat it like a rejection.
                    stats.faulted += 1;
                    rsp_obs::point(obs, "explore", "faulted", candidate, &[]);
                    screened.push(Screen::Reject);
                }
                Prepared::ClockCut => {
                    stats.candidates_pruned += 1;
                    stats.clock_bound_cuts += 1;
                    rsp_obs::point(
                        obs,
                        "explore",
                        "prune",
                        candidate,
                        &[("reason", Value::Str("clock_floor"))],
                    );
                    screened.push(Screen::Prune);
                }
                Prepared::Ready(arch, area_slices, clock_ns, cost_ok, lb_cycles, lb_et) => {
                    if options.prune != PruneStrategy::None
                        && (lb_et > et_bound
                            || (options.prune == PruneStrategy::Dominated
                                && frontier.dominates(area_slices, lb_et)))
                    {
                        stats.candidates_pruned += 1;
                        if obs.enabled() {
                            let reason = if lb_et > et_bound {
                                "lower_bound"
                            } else {
                                "dominated"
                            };
                            rsp_obs::point(
                                obs,
                                "explore",
                                "prune",
                                candidate,
                                &[("reason", Value::Str(reason))],
                            );
                        }
                        screened.push(Screen::Prune);
                    } else {
                        screened.push(Screen::Evaluate(
                            arch,
                            area_slices,
                            clock_ns,
                            cost_ok,
                            lb_cycles,
                            lb_et,
                        ));
                    }
                }
            }
        }
        drop(screen_span);

        // Phase C (parallel): full estimation of the survivors; results
        // come back in enumeration order, each with its lower bound for
        // the tightness statistic. When the bound is bit-identical to
        // the estimate ([`reuses_bound_as_estimate`]) the carried
        // lb_cycles/lb_et are adopted outright — the survivor pays for
        // the suffix pass once, in phase A, which is what keeps the
        // pruned engine no slower than the unpruned one even on spaces
        // too small for pruning to bite.
        let reuse_bound = reuses_bound_as_estimate(options);
        let estimate_span = Span::enter(obs, "explore", "estimate", chunk_index);
        let evaluated: Vec<Evaluated> = pool.install(|| {
            screened
                .into_par_iter()
                .map(|screen| match screen {
                    Screen::Evaluate(
                        arch,
                        area_slices,
                        clock_ns,
                        cost_bound_ok,
                        lb_cycles,
                        lb_et,
                    ) => catch_unwind(AssertUnwindSafe(|| {
                        let (est_cycles, est_et) = if reuse_bound {
                            (lb_cycles, lb_et)
                        } else {
                            let mut est_cycles = Vec::with_capacity(profiles.len());
                            let mut est_et = 0.0;
                            for (profile, w) in profiles.iter().zip(weights) {
                                let est = profile.estimate(arch.plan(), cache_depth);
                                est_cycles.push(est.total_cycles);
                                est_et += w * est.total_cycles as f64 * clock_ns;
                            }
                            (est_cycles, est_et)
                        };
                        Evaluated::Point(
                            Box::new(DesignPoint {
                                arch,
                                area_slices,
                                clock_ns,
                                est_cycles,
                                est_et_ns: est_et,
                                cost_bound_ok,
                            }),
                            lb_et,
                        )
                    }))
                    .unwrap_or(Evaluated::Faulted),
                    Screen::Prune | Screen::Reject => Evaluated::Skipped,
                })
                .collect()
        });
        drop(estimate_span);

        // Ordered merge: identical to what the serial reference pushes.
        for (offset, outcome) in evaluated.into_iter().enumerate() {
            let (point, lb_et) = match outcome {
                Evaluated::Point(point, lb_et) => (*point, lb_et),
                Evaluated::Skipped => continue,
                Evaluated::Faulted => {
                    stats.faulted += 1;
                    rsp_obs::point(
                        obs,
                        "explore",
                        "faulted",
                        (chunk_start + offset) as u64,
                        &[],
                    );
                    continue;
                }
            };
            if options.prune != PruneStrategy::None && point.est_et_ns > 0.0 {
                tightness.0 += lb_et / point.est_et_ns;
                tightness.1 += 1;
            }
            if point.est_et_ns > et_bound {
                continue;
            }
            frontier.insert(point.area_slices, point.est_et_ns, feasible.len());
            feasible.push(point);
        }

        chunk_index += 1;
        if truncation.is_some() {
            break;
        }
    }

    let completeness = match truncation {
        Some(reason) if stats.candidates_seen < candidates_total => Completeness::Truncated {
            candidates_remaining: candidates_total - stats.candidates_seen,
            reason,
        },
        // A budget that fired exactly at (or past) the last candidate
        // changed nothing: the result is the complete one.
        _ => Completeness::Complete,
    };

    if feasible.is_empty() && completeness.is_complete() {
        return Err(RspError::NoFeasibleDesign);
    }

    // The streaming frontier's emission is bit-identical to
    // `pareto_indices(&feasible)` (see `crate::frontier`'s module docs
    // and property tests), so no batch re-sweep is needed here.
    let pareto = frontier.indices();
    let best = if pareto.is_empty() {
        // Only reachable truncated-and-empty: no point to select yet.
        usize::MAX
    } else {
        select(&feasible, &pareto, options.objective)
    };
    stats.bound_tightness = if tightness.1 > 0 {
        tightness.0 / tightness.1 as f64
    } else {
        0.0
    };
    Ok(Exploration {
        feasible,
        pareto,
        best,
        base_et_ns: base_et,
        pruned: stats.candidates_pruned,
        stats,
        completeness,
        tightness,
        fingerprint,
    })
}

/// Checks that a checkpoint was recorded under the same options, design
/// space, and base/kernel inputs it is being resumed under.
fn validate_checkpoint(
    ckpt: &ExploreCheckpoint,
    fingerprint: &EngineFingerprint,
    base_et: f64,
) -> Result<(), RspError> {
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(RspError::CheckpointMismatch {
            what: format!(
                "checkpoint version {} (this build writes {CHECKPOINT_VERSION})",
                ckpt.version
            ),
        });
    }
    if ckpt.fingerprint != *fingerprint {
        return Err(RspError::CheckpointMismatch {
            what: format!(
                "options/space fingerprint differs (recorded {:?}, resuming under {:?})",
                ckpt.fingerprint, fingerprint
            ),
        });
    }
    if ckpt.base_et_ns.to_bits() != base_et.to_bits() {
        return Err(RspError::CheckpointMismatch {
            what: "base execution time differs — different base architecture, kernels, \
                   or weights"
                .to_string(),
        });
    }
    if ckpt.cursor > ckpt.fingerprint.candidates_total {
        return Err(RspError::CheckpointMismatch {
            what: format!(
                "cursor {} exceeds the space's {} candidates",
                ckpt.cursor, ckpt.fingerprint.candidates_total
            ),
        });
    }
    Ok(())
}

/// The original serial implementation from the paper reproduction, kept
/// as the oracle for property tests and the baseline for the tracked
/// benchmark: deep-clones the base per candidate, re-synthesizes every
/// report, and rebuilds a dense demand histogram per candidate through
/// the original dense estimator — which shares no code with the sparse
/// profile path, so an estimator regression in either implementation
/// surfaces as a divergence in the equivalence property tests.
///
/// # Errors
///
/// [`RspError::NoFeasibleDesign`] when every candidate violates the
/// constraints.
#[allow(clippy::too_many_arguments)]
pub fn explore_reference(
    base: &BaseArchitecture,
    kernels: &[Kernel],
    contexts: &[ConfigContext],
    weights: &[f64],
    space: &DesignSpace,
    constraints: &Constraints,
    objective: Objective,
) -> Result<Exploration, RspError> {
    explore_reference_with(
        base,
        kernels,
        contexts,
        weights,
        space,
        constraints,
        objective,
        &ExploreControl::default(),
    )
}

/// [`explore_reference`] under an [`ExploreControl`]: the serial oracle
/// with the same cooperative candidate-boundary stop checks as the
/// engine. A run truncated after `k` candidates is exactly the serial
/// sweep over the first `k` plans — the yardstick the cancellation-
/// determinism property tests compare the engine's truncated results
/// against.
///
/// # Errors
///
/// [`RspError::NoFeasibleDesign`] when a *complete* run has no feasible
/// candidate (a truncated run returns an empty anytime result instead).
#[allow(clippy::too_many_arguments)]
pub fn explore_reference_with(
    base: &BaseArchitecture,
    kernels: &[Kernel],
    contexts: &[ConfigContext],
    weights: &[f64],
    space: &DesignSpace,
    constraints: &Constraints,
    objective: Objective,
    control: &ExploreControl,
) -> Result<Exploration, RspError> {
    assert_eq!(kernels.len(), contexts.len());
    assert_eq!(kernels.len(), weights.len());
    let area_model = AreaModel::new();
    let delay_model = DelayModel::new();

    let base_arch = RspArchitecture::new("Base", base.clone(), SharingPlan::none())
        .expect("base plan is always valid");
    let base_clock = delay_model.report(&base_arch).clock_ns;
    let base_et: f64 = contexts
        .iter()
        .zip(weights)
        .map(|(c, w)| w * c.total_cycles() as f64 * base_clock)
        .sum();

    let candidates_total = space.plans().count();
    let clock = ControlClock::new(control);
    let mut truncation: Option<TruncationReason> = None;

    let mut feasible = Vec::new();
    let mut candidates_seen = 0usize;
    for plan in space.plans() {
        if let Some(reason) = clock.stop_reason(candidates_seen) {
            truncation = Some(reason);
            break;
        }
        candidates_seen += 1;
        let name = plan_name(&plan);
        let Ok(arch) = RspArchitecture::new(name, base.clone(), plan) else {
            continue;
        };
        let area = area_model.report(&arch);
        let delay = delay_model.report(&arch);

        let mut est_cycles = Vec::with_capacity(kernels.len());
        let mut est_et = 0.0;
        for ((k, ctx), w) in kernels.iter().zip(contexts).zip(weights) {
            let est = estimate_stalls_dense(ctx, k, &arch);
            est_cycles.push(est.total_cycles);
            est_et += w * est.total_cycles as f64 * delay.clock_ns;
        }

        let cost_ok = area.satisfies_cost_bound();
        if constraints.enforce_cost_bound && !cost_ok {
            continue;
        }
        if est_et > constraints.max_slowdown * base_et {
            continue;
        }
        feasible.push(DesignPoint {
            arch,
            area_slices: area.synthesized_slices,
            clock_ns: delay.clock_ns,
            est_cycles,
            est_et_ns: est_et,
            cost_bound_ok: cost_ok,
        });
    }

    let completeness = match truncation {
        Some(reason) if candidates_seen < candidates_total => Completeness::Truncated {
            candidates_remaining: candidates_total - candidates_seen,
            reason,
        },
        _ => Completeness::Complete,
    };

    if feasible.is_empty() && completeness.is_complete() {
        return Err(RspError::NoFeasibleDesign);
    }

    let pareto = pareto_indices(&feasible);
    let best = if pareto.is_empty() {
        usize::MAX
    } else {
        select(&feasible, &pareto, objective)
    };
    Ok(Exploration {
        feasible,
        pareto,
        best,
        base_et_ns: base_et,
        pruned: 0,
        stats: PruneStats {
            candidates_seen,
            candidates_pruned: 0,
            bound_tightness: 0.0,
            clock_bound_cuts: 0,
            faulted: 0,
        },
        completeness,
        tightness: (0.0, 0),
        // The reference evaluates everything: its state is what the
        // engine produces under `PruneStrategy::None` with the default
        // bound knobs, so a reference checkpoint resumes through the
        // engine under exactly those options.
        fingerprint: EngineFingerprint {
            prune: PruneStrategy::None,
            bound: BoundKind::default(),
            clock_bound: ClockBound::default(),
            objective,
            constraints: *constraints,
            candidates_total,
        },
    })
}

/// Whether phase A's lower bound is bit-identical to the full estimate,
/// so phase C can adopt it instead of re-running the suffix pass. True
/// under the default [`BoundKind::PerRowResidual`]: the bound and the
/// estimate share the same slack-aware exec floor and refill charge, and
/// phase A accumulates `lb_et` with the same float association phase C
/// would use for `est_et`.
fn reuses_bound_as_estimate(options: &ExploreOptions) -> bool {
    options.prune != PruneStrategy::None && options.bound == BoundKind::PerRowResidual
}

fn plan_name(plan: &SharingPlan) -> String {
    fn group_name(g: &SharedGroup) -> String {
        let tag = if g.is_pipelined() { "RSP" } else { "RS" };
        format!(
            "{tag}(shr={},shc={},st={})",
            g.per_row(),
            g.per_col(),
            g.stages()
        )
    }
    match plan.groups() {
        // Single-group plans keep the historic kind-less name the
        // tracked artifacts and checkpoints were recorded under.
        [g] => group_name(g),
        groups => groups
            .iter()
            .map(|g| format!("{:?}:{}", g.kind(), group_name(g)))
            .collect::<Vec<_>>()
            .join("+"),
    }
}

/// Indices of non-dominated points in (area, estimated time), sorted by
/// area ascending. NaN-safe: comparisons use `f64::total_cmp`, so a
/// degenerate candidate (NaN area or time) sorts last instead of
/// panicking, and can never displace a finite frontier point. This is
/// the batch sweep the reference uses; the engine's streaming
/// [`ParetoFrontier`] emits the identical result.
fn pareto_indices(points: &[DesignPoint]) -> Vec<usize> {
    let pairs: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.area_slices, p.est_et_ns))
        .collect();
    pareto_indices_of(&pairs)
}

fn select(points: &[DesignPoint], pareto: &[usize], objective: Objective) -> usize {
    let score = |p: &DesignPoint| match objective {
        Objective::AreaDelayProduct => p.area_slices * p.est_et_ns,
        Objective::ExecutionTime => p.est_et_ns,
        Objective::Area => p.area_slices,
    };
    *pareto
        .iter()
        .min_by(|&&a, &&b| score(&points[a]).total_cmp(&score(&points[b])))
        .expect("pareto frontier is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn setup() -> (BaseArchitecture, Vec<Kernel>, Vec<ConfigContext>, Vec<f64>) {
        let base = presets::base_8x8().base().clone();
        let kernels = suite::all();
        let contexts: Vec<_> = kernels
            .iter()
            .map(|k| map(&base, k, &MapOptions::default()).unwrap())
            .collect();
        let weights = vec![1.0; kernels.len()];
        (base, kernels, contexts, weights)
    }

    #[test]
    fn paper_space_enumerates_twelve_plans() {
        // 2 stages x 2 shr x 3 shc = 12 (shr=0 excluded by construction).
        assert_eq!(DesignSpace::paper().plans().count(), 12);
    }

    #[test]
    fn deep_space_is_lazy_and_larger() {
        // Lazy: taking a prefix never materializes the rest.
        let first: Vec<_> = DesignSpace::deep().plans().take(3).collect();
        assert_eq!(first.len(), 3);
        assert!(DesignSpace::deep().plans().count() > 100);
    }

    #[test]
    fn deep100_space_mixes_kinds_and_clears_ten_thousand() {
        let space = DesignSpace::deep100();
        assert_eq!(
            space.kinds_used(),
            vec![FuKind::Multiplier, FuKind::Alu, FuKind::Shifter]
        );
        // Lazy: a prefix never materializes the rest of the cross
        // product.
        let first: Vec<_> = space.plans().take(3).collect();
        assert_eq!(first.len(), 3);
        // 49 × 25 × 9 − 1 mixed-radix combinations (each axis's grid
        // plus its unshared slot, minus the all-unshared plan).
        assert_eq!(space.plans().count(), 11_024);
        // Heterogeneous plans exist, and every plan shares something.
        let multi = space
            .plans()
            .find(|p| p.groups().len() == 3)
            .expect("a three-kind mix");
        assert!(plan_name(&multi).contains('+'));
        assert!(space.plans().all(|p| !p.groups().is_empty()));
    }

    #[test]
    fn exploration_selects_pipelined_design() {
        let (base, kernels, contexts, weights) = setup();
        let r = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::paper(),
            &Constraints::default(),
            Objective::AreaDelayProduct,
        )
        .unwrap();
        let best = r.best_point();
        assert!(
            best.arch.plan().has_pipelining(),
            "best = {}",
            best.arch.name()
        );
        // And it is genuinely better than base on the combined objective.
        assert!(best.est_et_ns < r.base_et_ns * 1.2);
    }

    #[test]
    fn pareto_frontier_is_non_dominated_and_sorted() {
        let (base, kernels, contexts, weights) = setup();
        let r = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::extended(),
            &Constraints::default(),
            Objective::ExecutionTime,
        )
        .unwrap();
        let pts: Vec<_> = r.pareto_points().collect();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].area_slices < w[1].area_slices);
            assert!(w[0].est_et_ns > w[1].est_et_ns);
        }
        // No feasible point dominates a Pareto point.
        for p in &r.feasible {
            for q in r.pareto_points() {
                assert!(
                    !(p.area_slices < q.area_slices && p.est_et_ns < q.est_et_ns),
                    "{} dominates {}",
                    p.arch.name(),
                    q.arch.name()
                );
            }
        }
    }

    #[test]
    fn objectives_pick_extremes() {
        let (base, kernels, contexts, weights) = setup();
        let run = |o| {
            explore(
                &base,
                &kernels,
                &contexts,
                &weights,
                &DesignSpace::paper(),
                &Constraints::default(),
                o,
            )
            .unwrap()
        };
        let by_area = run(Objective::Area);
        let by_time = run(Objective::ExecutionTime);
        assert!(by_area.best_point().area_slices <= by_time.best_point().area_slices);
        assert!(by_time.best_point().est_et_ns <= by_area.best_point().est_et_ns);
    }

    #[test]
    fn impossible_constraints_yield_no_design() {
        let (base, kernels, contexts, weights) = setup();
        let err = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::paper(),
            &Constraints {
                enforce_cost_bound: true,
                max_slowdown: 0.01,
            },
            Objective::Area,
        )
        .unwrap_err();
        assert_eq!(err, RspError::NoFeasibleDesign);
    }

    #[test]
    fn alu_sharing_never_wins() {
        // Negative result: offering ALU sharing in the space must not
        // tempt the DSE — every kernel uses the ALU almost every cycle,
        // so sharing it starves the array (the paper shares only the
        // low-utilization, high-area multiplier).
        let (base, kernels, contexts, weights) = setup();
        let space = DesignSpace {
            shared_kinds: vec![rsp_arch::FuKind::Multiplier, rsp_arch::FuKind::Alu],
            stages: vec![1, 2],
            shr: vec![1, 2],
            shc: vec![0, 1],
            mixes: vec![],
        };
        let r = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &space,
            &Constraints::default(),
            Objective::AreaDelayProduct,
        )
        .unwrap();
        let best = r.best_point();
        assert!(
            best.arch.plan().is_shared(rsp_arch::FuKind::Multiplier),
            "best design {} does not share the multiplier",
            best.arch.name()
        );
        assert!(!best.arch.plan().is_shared(rsp_arch::FuKind::Alu));
    }

    #[test]
    fn cost_bound_rejects_nothing_in_paper_space() {
        // All Fig. 8-style configs are cheaper than base (Table 2).
        let (base, kernels, contexts, weights) = setup();
        let r = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::paper(),
            &Constraints {
                enforce_cost_bound: true,
                max_slowdown: f64::INFINITY,
            },
            Objective::Area,
        )
        .unwrap();
        assert_eq!(r.feasible.len(), 12);
    }

    #[test]
    fn engine_matches_reference_bitwise_on_paper_space() {
        let (base, kernels, contexts, weights) = setup();
        let reference = explore_reference(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::paper(),
            &Constraints::default(),
            Objective::AreaDelayProduct,
        )
        .unwrap();
        for parallelism in [Some(1), Some(3), None] {
            let engine = explore_with(
                &base,
                &kernels,
                &contexts,
                &weights,
                &DesignSpace::paper(),
                &ExploreOptions {
                    parallelism,
                    ..ExploreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(engine.feasible.len(), reference.feasible.len());
            for (e, r) in engine.feasible.iter().zip(&reference.feasible) {
                assert_eq!(e.arch.name(), r.arch.name());
                assert_eq!(e.area_slices.to_bits(), r.area_slices.to_bits());
                assert_eq!(e.clock_ns.to_bits(), r.clock_ns.to_bits());
                assert_eq!(e.est_cycles, r.est_cycles);
                assert_eq!(e.est_et_ns.to_bits(), r.est_et_ns.to_bits());
            }
            assert_eq!(engine.pareto, reference.pareto);
            assert_eq!(engine.best, reference.best);
            assert_eq!(engine.base_et_ns.to_bits(), reference.base_et_ns.to_bits());
        }
    }

    #[test]
    fn dominated_pruning_preserves_frontier_and_best() {
        let (base, kernels, contexts, weights) = setup();
        let full = explore_with(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::extended(),
            &ExploreOptions {
                prune: PruneStrategy::None,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let pruned = explore_with(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::extended(),
            &ExploreOptions {
                prune: PruneStrategy::Dominated,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let names = |r: &Exploration| -> Vec<String> {
            r.pareto_points()
                .map(|p| p.arch.name().to_string())
                .collect()
        };
        assert_eq!(names(&full), names(&pruned));
        assert_eq!(
            full.best_point().arch.name(),
            pruned.best_point().arch.name()
        );
        assert_eq!(
            full.best_point().est_et_ns.to_bits(),
            pruned.best_point().est_et_ns.to_bits()
        );
    }

    #[test]
    fn deep_space_dominated_pruning_is_frontier_identical_and_bites() {
        // The pruning-efficacy regression test: on the deep space the
        // per-row bound + area-ordered enumeration must skip at least
        // 20 % of candidate estimations while leaving the Pareto
        // frontier bit-identical to the unpruned engine.
        let (base, kernels, contexts, weights) = setup();
        let run = |prune, bound| {
            explore_with(
                &base,
                &kernels,
                &contexts,
                &weights,
                &DesignSpace::deep(),
                &ExploreOptions {
                    prune,
                    bound,
                    ..ExploreOptions::default()
                },
            )
            .unwrap()
        };
        let full = run(PruneStrategy::None, BoundKind::PerRowResidual);
        let pruned = run(PruneStrategy::Dominated, BoundKind::PerRowResidual);

        let frontier = |r: &Exploration| -> Vec<(String, u64, u64)> {
            r.pareto_points()
                .map(|p| {
                    (
                        p.arch.name().to_string(),
                        p.area_slices.to_bits(),
                        p.est_et_ns.to_bits(),
                    )
                })
                .collect()
        };
        assert_eq!(frontier(&full), frontier(&pruned));
        assert_eq!(
            full.best_point().arch.name(),
            pruned.best_point().arch.name()
        );

        assert_eq!(pruned.stats.candidates_seen, full.stats.candidates_seen);
        assert!(
            pruned.stats.candidates_pruned * 5 >= pruned.stats.candidates_seen,
            "pruned only {} of {} candidates (< 20 %)",
            pruned.stats.candidates_pruned,
            pruned.stats.candidates_seen
        );
        // The tightness statistic is a meaningful ratio: admissible
        // (≤ 1) and non-trivial on this space.
        assert!(pruned.stats.bound_tightness > 0.5);
        assert!(pruned.stats.bound_tightness <= 1.0);
        // The unpruned engine computes no bounds and says so.
        assert_eq!(full.stats.candidates_pruned, 0);
        assert_eq!(full.stats.bound_tightness, 0.0);
    }

    #[test]
    fn clock_floor_cut_is_result_preserving_and_bites() {
        // The stage-floor clock bound must never change any output —
        // feasible set, frontier, best — while cutting some candidates
        // before delay synthesis on a space that offers hopeless
        // ALU-sharing designs.
        let (base, kernels, contexts, weights) = setup();
        let space = DesignSpace::deep();
        let run = |clock_bound, prune| {
            explore_with(
                &base,
                &kernels,
                &contexts,
                &weights,
                &space,
                &ExploreOptions {
                    prune,
                    clock_bound,
                    ..ExploreOptions::default()
                },
            )
            .unwrap()
        };
        for prune in [PruneStrategy::LowerBound, PruneStrategy::Dominated] {
            let off = run(ClockBound::Off, prune);
            let floor = run(ClockBound::StageFloor, prune);
            assert_eq!(off.feasible.len(), floor.feasible.len(), "{prune:?}");
            for (a, b) in off.feasible.iter().zip(&floor.feasible) {
                assert_eq!(a.arch.name(), b.arch.name());
                assert_eq!(a.est_et_ns.to_bits(), b.est_et_ns.to_bits());
            }
            assert_eq!(off.pareto, floor.pareto, "{prune:?}");
            assert_eq!(off.best, floor.best, "{prune:?}");
            // Every clock cut is one of the pruned candidates, and the
            // Off run reports none.
            assert!(floor.stats.clock_bound_cuts <= floor.stats.candidates_pruned);
            assert_eq!(off.stats.clock_bound_cuts, 0);
        }
        // The floor must actually fire somewhere. The admissible bound
        // is too honest to condemn the single-kind deep grid at the
        // default slowdown — capacity-wise most of those plans really
        // could keep up — but the deep100 mixes stack deep pipelines on
        // several near-saturated kinds at once, and there even the
        // floored clock proves candidates hopeless pre-synthesis.
        let floor = explore_with(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::deep100(),
            &ExploreOptions {
                prune: PruneStrategy::LowerBound,
                clock_bound: ClockBound::StageFloor,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(
            floor.stats.clock_bound_cuts > 0,
            "stage-floor clock bound never cut a candidate pre-synthesis"
        );
    }

    #[test]
    fn lower_bound_pruning_skips_work_on_tight_slowdown() {
        let (base, kernels, contexts, weights) = setup();
        // A tight slowdown makes deep-pipeline candidates hopeless from
        // their lower bound alone.
        let r = explore_with(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::extended(),
            &ExploreOptions {
                constraints: Constraints {
                    enforce_cost_bound: true,
                    max_slowdown: 1.05,
                },
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(r.pruned > 0, "expected lower-bound prunes");
    }

    fn nan_point(name: &str, area: f64, et: f64) -> DesignPoint {
        let arch = RspArchitecture::new(
            name,
            presets::base_8x8().base().clone(),
            SharingPlan::none(),
        )
        .unwrap();
        DesignPoint {
            arch,
            area_slices: area,
            clock_ns: 1.0,
            est_cycles: vec![],
            est_et_ns: et,
            cost_bound_ok: true,
        }
    }

    #[test]
    fn pareto_and_select_survive_nan_candidates() {
        // Regression: partial_cmp().unwrap() panicked on NaN area/ET. A
        // degenerate candidate must sort last, never panic, and never
        // enter the frontier ahead of finite points.
        let points = vec![
            nan_point("nan-area", f64::NAN, 100.0),
            nan_point("ok-small", 10.0, 200.0),
            nan_point("nan-et", 20.0, f64::NAN),
            nan_point("ok-fast", 30.0, 50.0),
        ];
        let pareto = pareto_indices(&points);
        assert!(pareto.contains(&1), "finite small point on frontier");
        assert!(pareto.contains(&3), "finite fast point on frontier");
        assert!(
            !pareto.contains(&2),
            "NaN-et point must not enter the frontier"
        );
        let best = select(&points, &pareto, Objective::ExecutionTime);
        assert_eq!(points[best].arch.name(), "ok-fast");
        let best = select(&points, &pareto, Objective::Area);
        assert_eq!(points[best].arch.name(), "ok-small");
    }
}
