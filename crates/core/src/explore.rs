//! RSP design-space exploration (§4).
//!
//! Enumerates RSP parameter combinations — shared resource types, pipeline
//! depths, `shr`, `shc` — over a base architecture; estimates hardware
//! cost with eq. (2) and performance with the stall upper bound; rejects
//! points violating the cost/performance constraints; keeps the Pareto
//! frontier; and selects an optimum under a configurable objective.

use crate::error::RspError;
use crate::estimate::estimate_stalls;
use rsp_arch::{BaseArchitecture, FuKind, RspArchitecture, SharedGroup, SharingPlan};
use rsp_kernel::Kernel;
use rsp_mapper::ConfigContext;
use rsp_synth::{AreaModel, DelayModel};
use serde::{Deserialize, Serialize};

/// The RSP parameter ranges to enumerate.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// Candidate shared resource kinds (the paper shares the multiplier).
    pub shared_kinds: Vec<FuKind>,
    /// Candidate pipeline depths (1 = RS only; ≥2 = RSP).
    pub stages: Vec<u8>,
    /// Candidate `shr` values (shared resources per row).
    pub shr: Vec<usize>,
    /// Candidate `shc` values (shared resources per column).
    pub shc: Vec<usize>,
}

impl DesignSpace {
    /// The paper's evaluated space: multiplier sharing with the four
    /// Fig. 8 configurations, combinational or 2-stage.
    pub fn paper() -> Self {
        Self {
            shared_kinds: vec![FuKind::Multiplier],
            stages: vec![1, 2],
            shr: vec![1, 2],
            shc: vec![0, 1, 2],
        }
    }

    /// A wider space for ablation studies.
    pub fn extended() -> Self {
        Self {
            shared_kinds: vec![FuKind::Multiplier],
            stages: vec![1, 2, 3, 4],
            shr: vec![1, 2, 3],
            shc: vec![0, 1, 2, 3],
        }
    }

    /// Enumerates every sharing plan in the space (one shared group).
    pub fn plans(&self) -> Vec<SharingPlan> {
        let mut out = Vec::new();
        for &kind in &self.shared_kinds {
            for &stages in &self.stages {
                for &shr in &self.shr {
                    for &shc in &self.shc {
                        if shr == 0 && shc == 0 {
                            continue;
                        }
                        if let Ok(g) = SharedGroup::new(kind, shr, shc, stages) {
                            // Single-group plans never collide.
                            let plan = SharingPlan::none().with_group(g).expect("single group");
                            out.push(plan);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Constraints applied before Pareto filtering.
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// Require eq. (2): `HWcost < n·m·PE` (reject designs costlier than
    /// the base array).
    pub enforce_cost_bound: bool,
    /// Reject designs whose estimated weighted execution time exceeds
    /// `max_slowdown ×` the base architecture's (e.g. 1.5 = at most 50 %
    /// slower).
    pub max_slowdown: f64,
}

impl Default for Constraints {
    fn default() -> Self {
        Self {
            enforce_cost_bound: true,
            max_slowdown: 1.5,
        }
    }
}

/// Selection objective among Pareto points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize `area × weighted execution time` (the balanced choice).
    AreaDelayProduct,
    /// Minimize weighted execution time.
    ExecutionTime,
    /// Minimize area.
    Area,
}

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The candidate architecture.
    pub arch: RspArchitecture,
    /// Synthesized area (slices).
    pub area_slices: f64,
    /// Clock period (ns).
    pub clock_ns: f64,
    /// Estimated cycles per kernel (upper bound), kernel order of the
    /// exploration input.
    pub est_cycles: Vec<u32>,
    /// Weighted estimated execution time (ns).
    pub est_et_ns: f64,
    /// Whether eq. (2)'s cost bound holds.
    pub cost_bound_ok: bool,
}

/// Exploration output.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every candidate that passed the constraints.
    pub feasible: Vec<DesignPoint>,
    /// Indices into `feasible` forming the (area, time) Pareto frontier,
    /// sorted by area.
    pub pareto: Vec<usize>,
    /// Index into `feasible` of the selected optimum.
    pub best: usize,
    /// Weighted estimated execution time of the base architecture (ns).
    pub base_et_ns: f64,
}

impl Exploration {
    /// The selected design point.
    pub fn best_point(&self) -> &DesignPoint {
        &self.feasible[self.best]
    }

    /// The Pareto-frontier points, smallest area first.
    pub fn pareto_points(&self) -> impl Iterator<Item = &DesignPoint> {
        self.pareto.iter().map(|&i| &self.feasible[i])
    }
}

/// Explores `space` for the given kernels (with execution-frequency
/// weights) over `base`.
///
/// `contexts` must be the kernels' initial configuration contexts on
/// `base`, in the same order as `kernels`.
///
/// # Errors
///
/// [`RspError::NoFeasibleDesign`] when every candidate violates the
/// constraints.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::{explore, Constraints, DesignSpace, Objective};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let base = presets::base_8x8();
/// let kernels: Vec<_> = suite::all();
/// let contexts: Vec<_> = kernels
///     .iter()
///     .map(|k| map(base.base(), k, &MapOptions::default()).unwrap())
///     .collect();
/// let weights = vec![1.0; kernels.len()];
///
/// let result = explore(
///     base.base(),
///     &kernels,
///     &contexts,
///     &weights,
///     &DesignSpace::paper(),
///     &Constraints::default(),
///     Objective::AreaDelayProduct,
/// )?;
/// // The paper's conclusion: a pipelined (RSP) design wins.
/// assert!(result.best_point().arch.plan().has_pipelining());
/// # Ok::<(), rsp_core::RspError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn explore(
    base: &BaseArchitecture,
    kernels: &[Kernel],
    contexts: &[ConfigContext],
    weights: &[f64],
    space: &DesignSpace,
    constraints: &Constraints,
    objective: Objective,
) -> Result<Exploration, RspError> {
    assert_eq!(kernels.len(), contexts.len());
    assert_eq!(kernels.len(), weights.len());
    let area_model = AreaModel::new();
    let delay_model = DelayModel::new();

    let base_arch = RspArchitecture::new("Base", base.clone(), SharingPlan::none())
        .expect("base plan is always valid");
    let base_clock = delay_model.report(&base_arch).clock_ns;
    let base_et: f64 = contexts
        .iter()
        .zip(weights)
        .map(|(c, w)| w * c.total_cycles() as f64 * base_clock)
        .sum();

    let mut feasible = Vec::new();
    for plan in space.plans() {
        let name = plan_name(&plan);
        let Ok(arch) = RspArchitecture::new(name, base.clone(), plan) else {
            continue;
        };
        let area = area_model.report(&arch);
        let delay = delay_model.report(&arch);

        let mut est_cycles = Vec::with_capacity(kernels.len());
        let mut est_et = 0.0;
        for ((k, ctx), w) in kernels.iter().zip(contexts).zip(weights) {
            let est = estimate_stalls(ctx, k, &arch);
            est_cycles.push(est.total_cycles);
            est_et += w * est.total_cycles as f64 * delay.clock_ns;
        }

        let cost_ok = area.satisfies_cost_bound();
        if constraints.enforce_cost_bound && !cost_ok {
            continue;
        }
        if est_et > constraints.max_slowdown * base_et {
            continue;
        }
        feasible.push(DesignPoint {
            arch,
            area_slices: area.synthesized_slices,
            clock_ns: delay.clock_ns,
            est_cycles,
            est_et_ns: est_et,
            cost_bound_ok: cost_ok,
        });
    }

    if feasible.is_empty() {
        return Err(RspError::NoFeasibleDesign);
    }

    let pareto = pareto_indices(&feasible);
    let best = select(&feasible, &pareto, objective);
    Ok(Exploration {
        feasible,
        pareto,
        best,
        base_et_ns: base_et,
    })
}

fn plan_name(plan: &SharingPlan) -> String {
    let g = plan.groups().first().expect("space plans have one group");
    let tag = if g.is_pipelined() { "RSP" } else { "RS" };
    format!(
        "{tag}(shr={},shc={},st={})",
        g.per_row(),
        g.per_col(),
        g.stages()
    )
}

/// Indices of non-dominated points in (area, estimated time), sorted by
/// area ascending.
fn pareto_indices(points: &[DesignPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .area_slices
            .partial_cmp(&points[b].area_slices)
            .unwrap()
            .then(points[a].est_et_ns.partial_cmp(&points[b].est_et_ns).unwrap())
    });
    let mut out = Vec::new();
    let mut best_et = f64::INFINITY;
    for i in idx {
        if points[i].est_et_ns < best_et - 1e-12 {
            out.push(i);
            best_et = points[i].est_et_ns;
        }
    }
    out
}

fn select(points: &[DesignPoint], pareto: &[usize], objective: Objective) -> usize {
    let score = |p: &DesignPoint| match objective {
        Objective::AreaDelayProduct => p.area_slices * p.est_et_ns,
        Objective::ExecutionTime => p.est_et_ns,
        Objective::Area => p.area_slices,
    };
    *pareto
        .iter()
        .min_by(|&&a, &&b| score(&points[a]).partial_cmp(&score(&points[b])).unwrap())
        .expect("pareto frontier is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn setup() -> (BaseArchitecture, Vec<Kernel>, Vec<ConfigContext>, Vec<f64>) {
        let base = presets::base_8x8().base().clone();
        let kernels = suite::all();
        let contexts: Vec<_> = kernels
            .iter()
            .map(|k| map(&base, k, &MapOptions::default()).unwrap())
            .collect();
        let weights = vec![1.0; kernels.len()];
        (base, kernels, contexts, weights)
    }

    #[test]
    fn paper_space_enumerates_twelve_plans() {
        // 2 stages x 2 shr x 3 shc = 12 (shr=0 excluded by construction).
        assert_eq!(DesignSpace::paper().plans().len(), 12);
    }

    #[test]
    fn exploration_selects_pipelined_design() {
        let (base, kernels, contexts, weights) = setup();
        let r = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::paper(),
            &Constraints::default(),
            Objective::AreaDelayProduct,
        )
        .unwrap();
        let best = r.best_point();
        assert!(best.arch.plan().has_pipelining(), "best = {}", best.arch.name());
        // And it is genuinely better than base on the combined objective.
        assert!(best.est_et_ns < r.base_et_ns * 1.2);
    }

    #[test]
    fn pareto_frontier_is_non_dominated_and_sorted() {
        let (base, kernels, contexts, weights) = setup();
        let r = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::extended(),
            &Constraints::default(),
            Objective::ExecutionTime,
        )
        .unwrap();
        let pts: Vec<_> = r.pareto_points().collect();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[0].area_slices < w[1].area_slices);
            assert!(w[0].est_et_ns > w[1].est_et_ns);
        }
        // No feasible point dominates a Pareto point.
        for p in &r.feasible {
            for q in r.pareto_points() {
                assert!(
                    !(p.area_slices < q.area_slices && p.est_et_ns < q.est_et_ns),
                    "{} dominates {}",
                    p.arch.name(),
                    q.arch.name()
                );
            }
        }
    }

    #[test]
    fn objectives_pick_extremes() {
        let (base, kernels, contexts, weights) = setup();
        let run = |o| {
            explore(
                &base,
                &kernels,
                &contexts,
                &weights,
                &DesignSpace::paper(),
                &Constraints::default(),
                o,
            )
            .unwrap()
        };
        let by_area = run(Objective::Area);
        let by_time = run(Objective::ExecutionTime);
        assert!(by_area.best_point().area_slices <= by_time.best_point().area_slices);
        assert!(by_time.best_point().est_et_ns <= by_area.best_point().est_et_ns);
    }

    #[test]
    fn impossible_constraints_yield_no_design() {
        let (base, kernels, contexts, weights) = setup();
        let err = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::paper(),
            &Constraints {
                enforce_cost_bound: true,
                max_slowdown: 0.01,
            },
            Objective::Area,
        )
        .unwrap_err();
        assert_eq!(err, RspError::NoFeasibleDesign);
    }

    #[test]
    fn alu_sharing_never_wins() {
        // Negative result: offering ALU sharing in the space must not
        // tempt the DSE — every kernel uses the ALU almost every cycle,
        // so sharing it starves the array (the paper shares only the
        // low-utilization, high-area multiplier).
        let (base, kernels, contexts, weights) = setup();
        let space = DesignSpace {
            shared_kinds: vec![rsp_arch::FuKind::Multiplier, rsp_arch::FuKind::Alu],
            stages: vec![1, 2],
            shr: vec![1, 2],
            shc: vec![0, 1],
        };
        let r = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &space,
            &Constraints::default(),
            Objective::AreaDelayProduct,
        )
        .unwrap();
        let best = r.best_point();
        assert!(
            best.arch.plan().is_shared(rsp_arch::FuKind::Multiplier),
            "best design {} does not share the multiplier",
            best.arch.name()
        );
        assert!(!best.arch.plan().is_shared(rsp_arch::FuKind::Alu));
    }

    #[test]
    fn cost_bound_rejects_nothing_in_paper_space() {
        // All Fig. 8-style configs are cheaper than base (Table 2).
        let (base, kernels, contexts, weights) = setup();
        let r = explore(
            &base,
            &kernels,
            &contexts,
            &weights,
            &DesignSpace::paper(),
            &Constraints {
                enforce_cost_bound: true,
                max_slowdown: f64::INFINITY,
            },
            Objective::Area,
        )
        .unwrap();
        assert_eq!(r.feasible.len(), 12);
    }
}
