//! # rsp-core — Resource Sharing and Pipelining, the paper's contribution
//!
//! Executable form of §3–§4 of *"Resource Sharing and Pipelining in
//! Coarse-Grained Reconfigurable Architecture for Domain-Specific
//! Optimization"* (Kim et al., DATE 2005):
//!
//! * [`rearrange`] — transforms initial configuration contexts into RSP
//!   contexts under the paper's two rules: shared resources granted in
//!   loop-iteration order (RS stalls on shortage), and multi-cycle
//!   pipelined operations with overlap between consecutive issues (RP).
//!   Schedules deeper than the per-PE configuration cache are split
//!   into cache-sized segments at legal cut points
//!   (`rsp_mapper::split_schedule`) and charged refill stalls
//!   ([`Rearranged::refill`]) instead of being rejected; the flow and
//!   [`estimate_stalls`] charge the same penalty
//!   ([`refill_stall_estimate`]), admissibly — the pruning floors stay
//!   lower bounds, so pruned flows remain bit-identical.
//! * [`estimate_stalls`] — the cheap slack-aware **admissible** estimate
//!   the exploration stage uses instead of exact remapping: it never
//!   exceeds the exact rearranged elapsed cycles (property-tested), so
//!   everything built on it — pruning, the exact stage's score cut —
//!   preserves the unpruned result bit for bit.
//! * [`explore`] — enumerates RSP parameters (`shr`, `shc`, stages,
//!   resource kinds), applies the eq. (2) cost bound, keeps Pareto points,
//!   selects an optimum. The engine behind it ([`explore_with`]) prunes
//!   provably hopeless candidates using an admissible execution-time
//!   lower bound whose strength is selectable via
//!   [`ExploreOptions::bound`] ([`BoundKind::PerRowResidual`], the
//!   tighter default, caps each row's and column's capacity credit at
//!   its own demand; [`BoundKind::Aggregate`] is the looser baseline),
//!   streams feasible points through a [`ParetoFrontier`] whose
//!   emission is bit-identical to the reference batch sweep, and
//!   reports pruning efficacy — candidates seen/pruned and measured
//!   bound tightness — in [`Exploration::stats`] ([`PruneStats`]).
//! * [`run_flow`] — the whole Fig. 7 flow: profiling → critical loops →
//!   base architecture (parallel fan-out over candidate geometries) →
//!   pipeline mapping → RSP exploration → RSP mapping with exact
//!   performance, where the exact stage refines the estimation Pareto
//!   frontier and — under [`PruneStrategy::Dominated`] — skips
//!   rearranging candidates whose admissible exact-time floor already
//!   loses to the best exact score. Per-stage work counters surface in
//!   [`FlowStats`].
//!
//! # Anytime operation
//!
//! Every sweep accepts an [`ExploreControl`] (deadline, candidate
//! budget, external cancel) and stops cooperatively at candidate
//! boundaries, returning a best-so-far result tagged
//! [`Completeness`]; truncated explorations checkpoint
//! ([`Exploration::checkpoint`]) and resume ([`explore_resume`]) to the
//! bit-identical complete result, and a panicking candidate is isolated
//! and counted ([`PruneStats::faulted`]) instead of aborting the sweep.
//! See [`control`] for the semantics and the truncation-soundness
//! argument.
//!
//! # Examples
//!
//! ```
//! use rsp_arch::presets;
//! use rsp_core::{evaluate_perf, rearrange};
//! use rsp_kernel::suite;
//! use rsp_mapper::{map, MapOptions};
//! use rsp_synth::DelayModel;
//!
//! // Map the 2D-FDCT once, then compare one multiplier per row (RS#1,
//! // which Table 5 shows stalling heavily) against the generous RSP#4.
//! let base = presets::base_8x8();
//! let ctx = map(base.base(), &suite::fdct(), &MapOptions::default())?;
//!
//! let rs1 = rearrange(&ctx, &presets::rs1(), &Default::default())?;
//! let rsp4 = rearrange(&ctx, &presets::rsp4(), &Default::default())?;
//! assert!(rs1.rs_stalls > 0);
//! assert_eq!(rsp4.rs_stalls, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod control;
mod error;
mod estimate;
mod explore;
mod flow;
mod frontier;
mod perf;
mod power;
mod rearrange;
mod session;
mod utilization;

pub use control::{Completeness, ExploreControl, TruncationReason};
pub use error::RspError;
pub use estimate::{
    estimate_stalls, refill_stall_estimate, BoundKind, ClockBound, ContextProfile, StallEstimate,
};
pub use explore::{
    explore, explore_reference, explore_reference_with, explore_resume, explore_with, Constraints,
    DesignPoint, DesignSpace, Exploration, ExploreCheckpoint, ExploreOptions, Objective,
    PruneStats, PruneStrategy,
};
pub use flow::{run_flow, AppProfile, CriticalLoop, FlowConfig, FlowReport, FlowStats};
pub use frontier::ParetoFrontier;
pub use perf::{evaluate_perf, perf_from_rearranged, perf_from_rearranged_with, KernelPerf};
pub use power::{activity_of, evaluate_energy};
pub use rearrange::{rearrange, RearrangeOptions, Rearranged};
pub use session::{ProfileCache, Session, SessionBuilder, SessionStats};
pub use utilization::{utilization_of, FuUtilization, UtilizationReport};

/// The observability facade option structs carry their recorder from
/// ([`ExploreOptions::recorder`], [`FlowConfig::recorder`]) — re-exported
/// so engine callers need no separate `rsp_obs` dependency.
pub use rsp_obs as obs;
