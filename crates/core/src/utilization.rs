//! Functional-resource utilization — the paper's §2 motivation, measured.
//!
//! > "However, such fixed architectures have limitations in optimizing the
//! > cost and performance ... some critical functional resources may have
//! > low utilization while occupying large area."
//!
//! This module computes, for any scheduled kernel on any architecture, how
//! busy each functional-unit population actually is. On the base
//! architecture every PE owns a multiplier (64 units) that issues a few
//! percent of the time; after extraction and sharing, 8–16 units serve the
//! same issue stream at several times the utilization — with pipelining
//! (RSP) counting stage occupancy, exactly the effect §5.3 describes as
//! "the shared resources of RSP architectures are more utilized".

use crate::rearrange::Rearranged;
use rsp_arch::{FuKind, RspArchitecture};
use rsp_mapper::ConfigContext;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Utilization of one functional-unit population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuUtilization {
    /// Physical units of this kind on the array (per-PE or shared bank).
    pub units: usize,
    /// Operations issued on this kind.
    pub issues: u64,
    /// Unit-cycles occupied (an issue on an `s`-stage unit occupies `s`
    /// unit-cycles).
    pub busy_unit_cycles: u64,
    /// `busy_unit_cycles / (units × schedule cycles)`.
    pub utilization: f64,
}

/// Utilization of every functional-unit kind for one schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilizationReport {
    per_fu: BTreeMap<FuKind, FuUtilization>,
    cycles: u32,
}

impl UtilizationReport {
    /// The utilization of one kind, if any operation used it.
    pub fn of(&self, fu: FuKind) -> Option<FuUtilization> {
        self.per_fu.get(&fu).copied()
    }

    /// Iterates `(kind, utilization)` in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (FuKind, FuUtilization)> + '_ {
        self.per_fu.iter().map(|(k, v)| (*k, *v))
    }

    /// Schedule length the report is normalized by.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }
}

/// Measures per-kind utilization of a rearranged schedule.
///
/// # Examples
///
/// The motivating comparison — multiplier utilization before and after
/// sharing:
///
/// ```
/// use rsp_arch::{presets, FuKind};
/// use rsp_core::{rearrange, utilization_of};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let base = presets::base_8x8();
/// let ctx = map(base.base(), &suite::inner_product(), &MapOptions::default())?;
///
/// let on_base = rearrange(&ctx, &base, &Default::default())?;
/// let u_base = utilization_of(&ctx, &base, &on_base)
///     .of(FuKind::Multiplier).unwrap();
///
/// let rs1 = presets::rs1();
/// let on_rs1 = rearrange(&ctx, &rs1, &Default::default())?;
/// let u_rs1 = utilization_of(&ctx, &rs1, &on_rs1)
///     .of(FuKind::Multiplier).unwrap();
///
/// // 64 private multipliers idle most of the time; 8 shared ones work.
/// assert!(u_rs1.utilization > 4.0 * u_base.utilization);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn utilization_of(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    rearranged: &Rearranged,
) -> UtilizationReport {
    use std::collections::HashSet;

    let mut per_fu: BTreeMap<FuKind, FuUtilization> = BTreeMap::new();
    let cycles = rearranged.total_cycles.max(1);
    let pe_count = arch.geometry().pe_count();

    // A unit is busy in a cycle if at least one operation occupies any of
    // its stages — two in-flight operations on a 2-stage multiplier are
    // one busy unit-cycle each cycle, which is exactly why pipelined
    // sharing raises utilization without double counting.
    #[derive(PartialEq, Eq, Hash)]
    enum Unit {
        Shared(rsp_arch::SharedResourceId),
        Local(rsp_arch::PeId),
    }
    let mut busy: BTreeMap<FuKind, HashSet<(Unit, u32)>> = BTreeMap::new();

    for (i, inst) in ctx.instances().iter().enumerate() {
        let Some(fu) = inst.op.fu() else { continue };
        let units = if arch.plan().is_shared(fu) {
            arch.plan()
                .group(fu)
                .map(|g| g.total_count(arch.geometry()))
                .unwrap_or(pe_count)
        } else {
            pe_count
        };
        let stages = u32::from(arch.op_latency(inst.op));
        let t = rearranged.cycles[i];
        let set = busy.entry(fu).or_default();
        for dt in 0..stages {
            let unit = match rearranged.bindings[i] {
                Some(res) => Unit::Shared(res),
                None => Unit::Local(inst.pe),
            };
            set.insert((unit, t + dt));
        }
        let e = per_fu.entry(fu).or_insert(FuUtilization {
            units,
            issues: 0,
            busy_unit_cycles: 0,
            utilization: 0.0,
        });
        e.issues += 1;
    }
    for (fu, u) in per_fu.iter_mut() {
        u.busy_unit_cycles = busy.get(fu).map_or(0, |s| s.len() as u64);
        u.utilization = u.busy_unit_cycles as f64 / (u.units as f64 * cycles as f64);
    }
    UtilizationReport { per_fu, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rearrange::rearrange;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn measure(kernel: &rsp_kernel::Kernel, arch: &RspArchitecture) -> UtilizationReport {
        let ctx = map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap();
        let r = rearrange(&ctx, arch, &Default::default()).unwrap();
        utilization_of(&ctx, arch, &r)
    }

    #[test]
    fn base_multipliers_are_underutilized() {
        // The paper's §2 claim, quantified: every multiplication-bearing
        // kernel leaves the 64 private multipliers idle > 85 % of the time.
        for k in suite::all() {
            if k.total_mults() == 0 {
                continue;
            }
            let u = measure(&k, &presets::base_8x8())
                .of(FuKind::Multiplier)
                .unwrap();
            assert_eq!(u.units, 64);
            assert!(
                u.utilization < 0.15,
                "{}: base multiplier utilization {:.2}",
                k.name(),
                u.utilization
            );
        }
    }

    #[test]
    fn sharing_multiplies_utilization() {
        for k in [suite::inner_product(), suite::fdct(), suite::matmul(8)] {
            let base = measure(&k, &presets::base_8x8())
                .of(FuKind::Multiplier)
                .unwrap();
            let shared = measure(&k, &presets::rs1()).of(FuKind::Multiplier).unwrap();
            assert_eq!(shared.units, 8);
            assert!(
                shared.utilization > 3.0 * base.utilization,
                "{}: {:.3} vs {:.3}",
                k.name(),
                shared.utilization,
                base.utilization
            );
        }
    }

    #[test]
    fn pipelining_counts_stage_occupancy() {
        let k = suite::mvm();
        let rs = measure(&k, &presets::rs1()).of(FuKind::Multiplier).unwrap();
        let rsp = measure(&k, &presets::rsp1())
            .of(FuKind::Multiplier)
            .unwrap();
        assert_eq!(rs.issues, rsp.issues);
        // Stage occupancy grows, but overlapping in-flight operations are
        // not double counted: between 1x and 2x the combinational busy
        // time.
        assert!(rsp.busy_unit_cycles > rs.busy_unit_cycles);
        assert!(rsp.busy_unit_cycles <= 2 * rs.busy_unit_cycles);
    }

    #[test]
    fn utilization_never_exceeds_one() {
        for k in suite::all() {
            for arch in presets::table_architectures() {
                for (fu, u) in measure(&k, &arch).iter() {
                    assert!(
                        u.utilization <= 1.0 + 1e-9,
                        "{} on {}: {fu} at {:.2}",
                        k.name(),
                        arch.name(),
                        u.utilization
                    );
                }
            }
        }
    }

    #[test]
    fn rsp_more_utilized_than_rs_at_same_config() {
        // §5.3: "the shared resources of RSP architectures are more
        // utilized than RS architectures under same resource sharing
        // condition" — holds for every multiplication-bearing kernel.
        for k in suite::all() {
            if k.total_mults() == 0 {
                continue;
            }
            let rs2 = measure(&k, &presets::rs2()).of(FuKind::Multiplier).unwrap();
            let rsp2 = measure(&k, &presets::rsp2())
                .of(FuKind::Multiplier)
                .unwrap();
            assert!(
                rsp2.utilization >= rs2.utilization,
                "{}: RSP#2 {:.3} < RS#2 {:.3}",
                k.name(),
                rsp2.utilization,
                rs2.utilization
            );
        }
    }

    #[test]
    fn sad_reports_no_multiplier_entry() {
        let r = measure(&suite::sad(), &presets::base_8x8());
        assert!(r.of(FuKind::Multiplier).is_none());
        assert!(r.of(FuKind::Alu).is_some());
    }
}
