//! Run budgets, cooperative cancellation, and anytime-result tagging.
//!
//! # Anytime exploration
//!
//! Every sweep in this crate — [`explore_with`](crate::explore_with),
//! [`explore_reference`](crate::explore_reference_with), and both phases
//! of [`run_flow`](crate::run_flow) — accepts an [`ExploreControl`] and
//! checks it *cooperatively at candidate boundaries*: before pulling the
//! next candidate from the enumeration stream, never mid-evaluation. When
//! a deadline passes, a candidate budget is exhausted, or an external
//! [`cancel`](ExploreControl::cancel) flag is raised, the sweep stops at
//! the next boundary and returns an **anytime result**: everything
//! evaluated so far, tagged [`Completeness::Truncated`] with the number
//! of candidates left and the [`TruncationReason`].
//!
//! # Truncation soundness
//!
//! A truncated run is always a *prefix* of the complete run in candidate
//! order (enumeration order, or the area-sorted order `Dominated` pruning
//! opts into). Because the engine's prune decisions for a candidate
//! depend only on earlier candidates, stopping after `k` candidates
//! evaluates exactly the candidates the complete run evaluates among its
//! first `k` — so a truncated `feasible` set is a subset of the complete
//! run's evaluations, the truncated frontier is the exact staircase of
//! that prefix, and a budget that is *not* hit yields a result
//! bit-identical to `Complete`. Under the result-preserving strategies
//! (`None`, `LowerBound`) the truncated result is bit-identical to the
//! serial reference truncated at the same `k`; these properties are
//! tested in `tests/anytime.rs`.
//!
//! # Checkpoint/resume
//!
//! A truncated [`Exploration`](crate::Exploration) can be serialized with
//! [`checkpoint()`](crate::Exploration::checkpoint) (frontier + the
//! enumeration cursor + an options fingerprint) and continued with
//! [`explore_resume`](crate::explore_resume), which replays the recorded
//! prefix state and processes only the remaining candidates. Resuming a
//! truncated run to the end reaches the bit-identical complete result.
//!
//! # Deciding to stop
//!
//! When several stop conditions hold at once, the reported reason is
//! deterministic: an exhausted [`candidate_budget`] wins over
//! [`cancel`], which wins over [`deadline`] — the budget check depends
//! only on the candidate index (reproducible), while the other two are
//! wall-clock or externally timed.
//!
//! [`candidate_budget`]: ExploreControl::candidate_budget
//! [`cancel`]: ExploreControl::cancel
//! [`deadline`]: ExploreControl::deadline

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative run budget for a sweep: any combination of a wall-clock
/// deadline, a candidate-count budget, and an external cancellation
/// flag. The default is unlimited (sweeps run to completion).
///
/// Cloning shares the `cancel` flag, so a clone handed to a worker can
/// be cancelled from the original (and vice versa).
///
/// # Examples
///
/// ```
/// use rsp_core::ExploreControl;
/// use std::time::Duration;
///
/// let control = ExploreControl::with_deadline(Duration::from_millis(50));
/// let handle = control.cancel_handle();
/// // ... hand `control` to explore_with, flip `handle` from elsewhere ...
/// handle.store(true, std::sync::atomic::Ordering::Relaxed);
/// assert!(control.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExploreControl {
    /// Wall-clock budget, measured from the moment the sweep is entered.
    /// The sweep stops at the first candidate boundary at or after the
    /// deadline.
    pub deadline: Option<Duration>,
    /// Maximum number of candidates this call may pull from the
    /// enumeration stream (a resumed call gets a fresh budget). Unlike
    /// the deadline this is machine-independent, so truncation points
    /// are reproducible.
    pub candidate_budget: Option<usize>,
    /// External cancellation flag, checked at every candidate boundary.
    /// Store `true` (any ordering) from another thread to stop the
    /// sweep.
    pub cancel: Arc<AtomicBool>,
}

impl ExploreControl {
    /// A control that only imposes a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// A control that only imposes a candidate-count budget.
    pub fn with_budget(candidates: usize) -> Self {
        Self {
            candidate_budget: Some(candidates),
            ..Self::default()
        }
    }

    /// The shared cancellation flag, for handing to another thread.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Raises the cancellation flag.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the cancellation flag is raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// Why a sweep stopped before exhausting its candidate stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TruncationReason {
    /// [`ExploreControl::candidate_budget`] candidates were processed.
    CandidateBudget,
    /// [`ExploreControl::cancel`] was raised.
    Cancelled,
    /// [`ExploreControl::deadline`] passed.
    Deadline,
}

/// Whether a sweep processed its whole candidate stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Completeness {
    /// Every candidate was processed; the result is identical to an
    /// unbudgeted run.
    Complete,
    /// The sweep stopped early; the result covers a prefix of the
    /// candidate stream.
    Truncated {
        /// Candidates left unprocessed when the sweep stopped.
        candidates_remaining: usize,
        /// Which budget stopped the sweep.
        reason: TruncationReason,
    },
}

impl Completeness {
    /// Whether the whole stream was processed.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

/// A started clock over an [`ExploreControl`]: answers "should the sweep
/// stop before candidate `consumed`?" and "how much deadline is left?".
pub(crate) struct ControlClock {
    started: Instant,
    deadline: Option<Duration>,
    candidate_budget: Option<usize>,
    cancel: Arc<AtomicBool>,
}

impl ControlClock {
    pub(crate) fn new(control: &ExploreControl) -> Self {
        Self {
            started: Instant::now(),
            deadline: control.deadline,
            candidate_budget: control.candidate_budget,
            cancel: Arc::clone(&control.cancel),
        }
    }

    /// Reason to stop before processing one more candidate, given that
    /// `consumed` candidates have already been pulled in this call.
    /// `None` means keep going.
    pub(crate) fn stop_reason(&self, consumed: usize) -> Option<TruncationReason> {
        self.stop_reason_budgeted(consumed, self.candidate_budget)
    }

    /// [`stop_reason`](Self::stop_reason) with the candidate budget
    /// overridden — for a later phase spending the remainder of a shared
    /// budget against the same deadline clock.
    pub(crate) fn stop_reason_budgeted(
        &self,
        consumed: usize,
        budget: Option<usize>,
    ) -> Option<TruncationReason> {
        if let Some(budget) = budget {
            if consumed >= budget {
                return Some(TruncationReason::CandidateBudget);
            }
        }
        if self.cancel.load(Ordering::Relaxed) {
            return Some(TruncationReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if self.started.elapsed() >= deadline {
                return Some(TruncationReason::Deadline);
            }
        }
        None
    }

    /// The unspent part of the deadline (`None` when no deadline is
    /// set), for deriving a sub-sweep's control.
    pub(crate) fn remaining_deadline(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_sub(self.started.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_control_never_stops() {
        let clock = ControlClock::new(&ExploreControl::default());
        assert_eq!(clock.stop_reason(0), None);
        assert_eq!(clock.stop_reason(1_000_000), None);
    }

    #[test]
    fn budget_wins_over_cancel_wins_over_deadline() {
        let control = ExploreControl {
            deadline: Some(Duration::ZERO),
            candidate_budget: Some(3),
            cancel: Arc::new(AtomicBool::new(true)),
        };
        let clock = ControlClock::new(&control);
        // Budget not yet hit: cancel outranks the (elapsed) deadline.
        assert_eq!(clock.stop_reason(0), Some(TruncationReason::Cancelled));
        // Budget hit: it outranks both.
        assert_eq!(
            clock.stop_reason(3),
            Some(TruncationReason::CandidateBudget)
        );
    }

    #[test]
    fn zero_deadline_stops_immediately() {
        let clock = ControlClock::new(&ExploreControl::with_deadline(Duration::ZERO));
        assert_eq!(clock.stop_reason(0), Some(TruncationReason::Deadline));
    }

    #[test]
    fn clone_shares_the_cancel_flag() {
        let a = ExploreControl::default();
        let b = a.clone();
        b.request_cancel();
        assert!(a.is_cancelled());
    }
}
