//! Streaming Pareto frontier over `(area, execution-time)` points.
//!
//! [`ParetoFrontier`] ingests candidate points one at a time and can emit
//! the frontier at any moment — yet its final output is **bit-identical**
//! to the batch sweep ([`pareto_indices_of`]) the serial reference
//! exploration performs over the full feasible set, including the sweep's
//! `1e-12` epsilon and its NaN handling. This is what lets
//! [`crate::explore_with`] stream large candidate sets without buffering
//! every feasible point twice, and what makes dominated-candidate pruning
//! queries O(log frontier) instead of O(feasible).
//!
//! # Why the staircase store is exact
//!
//! The structure keeps a *strict staircase*: entries sorted by
//! `(area, et)` under `f64::total_cmp`, with strictly decreasing `et`. A
//! new point is dropped iff some stored predecessor `q` (in that total
//! order) has `et_q ≤ et_p`; stored successors with `et ≥ et_p` are
//! removed symmetrically. Dropping is permanently safe: in any future
//! batch sweep over any superset of the inserted points, the running
//! accepted-minimum before `p` is at most `et_q` (if `q` is accepted) or
//! at most `et_q + ε` (if `q` itself is ε-rejected — a rejection never
//! raises the minimum above its own `et + ε`), so `p` can never satisfy
//! the strict `et_p < best − ε` acceptance test. Removed entries keep a
//! surviving witness by induction. Points the sweep merely ε-rejects but
//! that no predecessor strictly dominates stay in the store, which is
//! exactly what preserves the batch sweep's corner cases (two points
//! within `1e-12` of each other, ties, NaN areas). `NaN` execution times
//! can never be accepted by the sweep (`NaN < x` is false) and cannot
//! influence the running minimum, so they are dropped on arrival.
//!
//! # Pruning queries against lower bounds
//!
//! [`ParetoFrontier::dominates`] only ever *strictly* compares a stored
//! point against a candidate's **lower bound** on execution time, so a
//! positive answer proves the candidate's true point is dominated too
//! (`et_stored < bound ≤ et_true` with no more area). This is how the
//! exploration phase's dominated-candidate pruning rejects candidates
//! from their admissible cycle bounds before any delay synthesis or
//! estimation runs, while keeping the emitted frontier bit-identical to
//! the unpruned sweep. Note the converse structural fact the flow's
//! exact stage exploits instead: points *on* a strict Pareto staircase
//! have strictly descending times as area ascends, so no frontier point
//! ever dominates a later frontier point's admissible floor — which is
//! why the exact stage cuts on objective score, not dominance
//! ([`crate::run_flow`]'s module docs carry that argument).

/// The sweep epsilon: a point joins the emitted frontier only if its
/// execution time beats the running best by more than this.
pub(crate) const PARETO_EPSILON: f64 = 1e-12;

#[derive(Debug, Clone, Copy)]
struct Entry {
    area: f64,
    et: f64,
    index: usize,
}

/// An incrementally maintained `(area, et)` Pareto frontier whose final
/// emission is bit-identical to the batch epsilon sweep over every point
/// ever inserted.
///
/// # Examples
///
/// ```
/// use rsp_core::ParetoFrontier;
///
/// let mut f = ParetoFrontier::new();
/// assert!(f.insert(10.0, 200.0, 0)); // small & slow: frontier
/// assert!(f.insert(30.0, 50.0, 1)); // big & fast: frontier
/// assert!(!f.insert(40.0, 60.0, 2)); // dominated by #1
/// assert!(f.dominates(35.0, 55.0)); // a (35, ≥55) point can never join
/// assert_eq!(f.indices(), vec![0, 1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParetoFrontier {
    entries: Vec<Entry>,
    inserted: usize,
}

impl ParetoFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a point to the frontier; `index` is the caller's handle
    /// (e.g. the position in its feasible vector) returned by
    /// [`ParetoFrontier::indices`]. Returns whether the point is on the
    /// current staircase — `false` means it is *permanently* dominated
    /// and can never appear in any future emission.
    pub fn insert(&mut self, area: f64, et: f64, index: usize) -> bool {
        self.inserted += 1;
        if et.is_nan() {
            // Never accepted by the sweep and never updates its running
            // minimum: storing it could not change any emission.
            return false;
        }
        let pos = self
            .entries
            .partition_point(|e| e.area.total_cmp(&area).then(e.et.total_cmp(&et)).is_le());
        // Staircase ets are strictly decreasing, so the tightest
        // predecessor is the last one.
        if pos > 0 && self.entries[pos - 1].et <= et {
            return false;
        }
        // Successors with et >= ours are now permanently dominated; they
        // form a contiguous run (ets decrease).
        let run = self.entries[pos..].partition_point(|e| e.et >= et);
        self.entries
            .splice(pos..pos + run, [Entry { area, et, index }]);
        true
    }

    /// Whether a candidate known to cost at least `et_lower_bound` at
    /// `area` is already strictly dominated — some stored point has
    /// `area ≤ area` **and** `et < et_lower_bound` — and therefore can
    /// never join the frontier. This is the pruning query of
    /// [`crate::PruneStrategy::Dominated`].
    pub fn dominates(&self, area: f64, et_lower_bound: f64) -> bool {
        let idx = self.entries.partition_point(|e| e.area <= area);
        idx > 0 && self.entries[idx - 1].et < et_lower_bound
    }

    /// Emits the frontier: the inserted `index` handles in ascending area
    /// order, bit-identical to the batch epsilon sweep
    /// (`pareto_indices_of`, the sweep behind [`crate::explore_reference`])
    /// over every point ever inserted. Callable at any time; each call
    /// sweeps only the staircase (O(frontier size)).
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.entries.len());
        let mut best = f64::INFINITY;
        for e in &self.entries {
            if e.et < best - PARETO_EPSILON {
                out.push(e.index);
                best = e.et;
            }
        }
        out
    }

    /// Current staircase as `(area, et, index)` triples, area ascending.
    /// A superset of what [`ParetoFrontier::indices`] emits (ε-rejected
    /// points stay on the staircase so future emissions remain exact).
    pub fn staircase(&self) -> impl Iterator<Item = (f64, f64, usize)> + '_ {
        self.entries.iter().map(|e| (e.area, e.et, e.index))
    }

    /// Points offered via [`ParetoFrontier::insert`] so far.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Entries currently on the staircase.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the staircase is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The batch sweep the serial reference uses: indices of non-dominated
/// `(area, et)` points, area ascending. NaN-safe — comparisons use
/// `f64::total_cmp`, so a degenerate point (NaN area or time) sorts last
/// instead of panicking and can never displace a finite frontier point.
pub(crate) fn pareto_indices_of(points: &[(f64, f64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    let mut out = Vec::new();
    let mut best_et = f64::INFINITY;
    for i in idx {
        if points[i].1 < best_et - PARETO_EPSILON {
            out.push(i);
            best_et = points[i].1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn streamed(points: &[(f64, f64)]) -> Vec<usize> {
        let mut f = ParetoFrontier::new();
        for (i, &(area, et)) in points.iter().enumerate() {
            f.insert(area, et, i);
        }
        f.indices()
    }

    #[test]
    fn empty_frontier_emits_nothing() {
        assert_eq!(ParetoFrontier::new().indices(), Vec::<usize>::new());
        assert!(ParetoFrontier::new().is_empty());
    }

    #[test]
    fn single_point_is_the_frontier() {
        let pts = [(5.0, 7.0)];
        assert_eq!(streamed(&pts), pareto_indices_of(&pts));
        assert_eq!(streamed(&pts), vec![0]);
    }

    #[test]
    fn duplicate_points_keep_first_index() {
        let pts = [(5.0, 7.0), (5.0, 7.0), (5.0, 7.0)];
        assert_eq!(streamed(&pts), pareto_indices_of(&pts));
        assert_eq!(streamed(&pts), vec![0]);
    }

    #[test]
    fn nan_points_match_batch_sweep() {
        let pts = [
            (f64::NAN, 100.0),
            (10.0, 200.0),
            (20.0, f64::NAN),
            (30.0, 50.0),
        ];
        assert_eq!(streamed(&pts), pareto_indices_of(&pts));
    }

    #[test]
    fn lone_nan_area_point_is_emitted() {
        // A NaN-area point sorts last but can still be accepted when its
        // et is the running best — the batch sweep does, so must we.
        let pts = [(f64::NAN, 100.0)];
        assert_eq!(streamed(&pts), pareto_indices_of(&pts));
        assert_eq!(streamed(&pts), vec![0]);
    }

    #[test]
    fn epsilon_close_points_match_batch_sweep() {
        // ets within 1e-12 of each other exercise the ε-rejected-but-
        // stored corner: these points stay on the staircase yet are not
        // emitted, exactly like the batch sweep.
        let e = PARETO_EPSILON;
        let pts = [
            (1.0, 10.0),
            (2.0, 10.0 - e / 2.0),
            (3.0, 10.0 - 2.0 * e),
            (4.0, 10.0 - 2.0 * e - e / 4.0),
        ];
        assert_eq!(streamed(&pts), pareto_indices_of(&pts));
    }

    #[test]
    fn insert_reports_staircase_membership() {
        let mut f = ParetoFrontier::new();
        assert!(f.insert(10.0, 100.0, 0));
        assert!(f.insert(5.0, 200.0, 1));
        assert!(!f.insert(11.0, 100.0, 2), "same et at larger area");
        assert!(!f.insert(10.0, 150.0, 3), "worse et at same area");
        assert!(f.insert(1.0, 50.0, 4), "dominates everything");
        // #4 displaced both prior staircase entries.
        assert_eq!(f.len(), 1);
        assert_eq!(f.inserted(), 5);
        assert_eq!(f.indices(), vec![4]);
    }

    #[test]
    fn dominates_uses_strict_et_and_inclusive_area() {
        let mut f = ParetoFrontier::new();
        f.insert(10.0, 100.0, 0);
        assert!(f.dominates(10.0, 101.0), "same area, worse lb");
        assert!(!f.dominates(10.0, 100.0), "equal lb is not dominated");
        assert!(!f.dominates(9.0, 101.0), "smaller area is never covered");
        assert!(f.dominates(11.0, 100.5));
    }

    /// f64 strategy mixing magnitudes where the 1e-12 epsilon is below
    /// one ULP (realistic ns-scale values) and magnitudes where it
    /// bites, plus exact ties and NaN.
    fn arb_coord() -> impl Strategy<Value = f64> {
        (0u32..6, 0u64..8).prop_map(|(kind, k)| match kind {
            0 => k as f64,                 // small ints: exact ties
            1 => 1e6 + (k as f64) * 0.5,   // ns-scale
            2 => 1.0 + (k as f64) * 1e-12, // epsilon-spaced
            3 => 1.0 + (k as f64) * 5e-13, // sub-epsilon-spaced
            4 => (k as f64) * 1e-14,       // near zero
            _ => {
                if k == 0 {
                    f64::NAN
                } else {
                    (k as f64) * 1e3
                }
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Streaming emission is bit-identical to the batch sweep for
        /// arbitrary point sets, in arbitrary insertion order, including
        /// ties, ε-spaced values, and NaNs.
        #[test]
        fn streaming_matches_batch_sweep(
            pts in prop::collection::vec((arb_coord(), arb_coord()), 0..40)
        ) {
            prop_assert_eq!(streamed(&pts), pareto_indices_of(&pts));
        }

        /// Emission is insensitive to *when* it happens: emitting midway
        /// never corrupts the final frontier, and every prefix emission
        /// equals the batch sweep of that prefix.
        #[test]
        fn prefix_emissions_match_prefix_sweeps(
            pts in prop::collection::vec((arb_coord(), arb_coord()), 0..24),
            cut in 0usize..25,
        ) {
            let cut = cut.min(pts.len());
            let mut f = ParetoFrontier::new();
            for (i, &(a, t)) in pts[..cut].iter().enumerate() {
                f.insert(a, t, i);
            }
            prop_assert_eq!(f.indices(), pareto_indices_of(&pts[..cut]));
            for (i, &(a, t)) in pts[cut..].iter().enumerate() {
                f.insert(a, t, cut + i);
            }
            prop_assert_eq!(f.indices(), pareto_indices_of(&pts));
        }

        /// A point reported permanently dominated on insert never shows
        /// up in the final emission.
        #[test]
        fn rejected_inserts_never_emit(
            pts in prop::collection::vec((arb_coord(), arb_coord()), 0..32)
        ) {
            let mut f = ParetoFrontier::new();
            let mut rejected = Vec::new();
            for (i, &(a, t)) in pts.iter().enumerate() {
                if !f.insert(a, t, i) {
                    rejected.push(i);
                }
            }
            let emitted = f.indices();
            for r in rejected {
                prop_assert!(!emitted.contains(&r));
            }
        }
    }
}
