//! Exploration-time performance estimation (upper bound).
//!
//! Mapping and exactly evaluating every candidate RSP design is
//! time-consuming, so the paper's exploration stage estimates stall counts
//! from the *initial* configuration contexts (§4):
//!
//! * **RS stall estimate** — per cycle, the number of critical operations
//!   that exceed the reachable shared resources; each excess operation is
//!   assumed to cost a stall cycle (pessimistic, hence an upper bound on
//!   stalls / lower bound on performance).
//! * **RP stall estimate** — each pipelined operation on the body's
//!   critical dependence chain delays its dependents by `stages − 1`
//!   cycles; consecutive pipelined operations overlap and are not double
//!   counted.
//!
//! # Estimation cost
//!
//! The demand a kernel places on a shared kind depends only on the
//! context, never on the candidate plan, so it is profiled once into a
//! sparse [`CycleDemand`] ([`ContextProfile`]) and every candidate then
//! performs an O(non-zero cells) greedy reduction with per-thread
//! reusable scratch budgets — no per-candidate allocation, no dense
//! `cycles × rows × cols` histogram.
//! [`ContextProfile::rs_stalls_lower_bound`] additionally yields an
//! admissible O(non-empty cycles) lower bound on the RS stalls (per-cycle
//! demand minus the capacity its touched rows/columns can reach), which
//! the exploration engine uses to skip hopeless candidates early.

use rsp_arch::{FuKind, RspArchitecture, SharingPlan};
use rsp_kernel::Kernel;
use rsp_mapper::{ConfigContext, CycleDemand};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Estimated performance of one kernel on one candidate architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallEstimate {
    /// Estimated RS stalls (resource shortage).
    pub rs_stalls: u32,
    /// Estimated RP overhead (multi-cycle latency on the critical chain).
    pub rp_overhead: u32,
    /// Estimated total cycles (base + both contributions).
    pub total_cycles: u32,
}

/// Per-cycle summary backing the admissible RS lower bound: total demand
/// plus how many distinct rows/columns it touches (the only banks greedy
/// absorption can draw from).
#[derive(Debug, Clone, Copy)]
struct LbCycle {
    demand: u32,
    rows_touched: u32,
    cols_touched: u32,
}

/// Everything the estimator needs about one `(kernel, context)` pair,
/// computed once and reused across all candidate architectures.
#[derive(Debug, Clone)]
pub struct ContextProfile {
    /// Sparse demand per profiled shared kind, in `kinds` order, with the
    /// per-cycle lower-bound summaries.
    kinds: Vec<(FuKind, CycleDemand, Vec<LbCycle>)>,
    /// Base-schedule length.
    total_cycles: u32,
    /// Sequential body repetitions the schedule serializes (see
    /// [`repetitions`]).
    repetitions: u32,
    /// Multiplications on the body's critical dependence chain.
    body_chain_mults: u32,
    /// Multiplications on the tail's critical dependence chain.
    tail_chain_mults: u32,
    /// Operations in the body graph (generic non-multiplier fallback).
    body_len: u32,
}

impl ContextProfile {
    /// Profiles `ctx` for the shared-resource `kinds` an exploration will
    /// offer.
    pub fn new(ctx: &ConfigContext, kernel: &Kernel, kinds: &[FuKind]) -> Self {
        let mut profiled: Vec<(FuKind, CycleDemand, Vec<LbCycle>)> =
            Vec::with_capacity(kinds.len());
        for &kind in kinds {
            if profiled.iter().any(|(k, ..)| *k == kind) {
                continue;
            }
            let demand = ctx.cycle_demand(|op| op.fu() == Some(kind));
            let lb = demand
                .cycles()
                .map(|(cells, total)| {
                    let mut rows: Vec<u16> = cells.iter().map(|c| c.row).collect();
                    rows.dedup();
                    let mut cols: Vec<u16> = cells.iter().map(|c| c.col).collect();
                    cols.sort_unstable();
                    cols.dedup();
                    LbCycle {
                        demand: total,
                        rows_touched: rows.len() as u32,
                        cols_touched: cols.len() as u32,
                    }
                })
                .collect();
            profiled.push((kind, demand, lb));
        }
        ContextProfile {
            kinds: profiled,
            total_cycles: ctx.total_cycles(),
            repetitions: repetitions(ctx, kernel),
            body_chain_mults: kernel.body().critical_path_mults() as u32,
            tail_chain_mults: kernel.tail().map_or(0, |t| t.critical_path_mults() as u32),
            body_len: kernel.body().len() as u32,
        }
    }

    /// The profiled demand for `kind`, if it was requested at build time.
    pub fn demand(&self, kind: FuKind) -> Option<&CycleDemand> {
        self.kinds
            .iter()
            .find(|(k, ..)| *k == kind)
            .map(|(_, d, _)| d)
    }

    fn lb_cycles(&self, kind: FuKind) -> Option<&[LbCycle]> {
        self.kinds
            .iter()
            .find(|(k, ..)| *k == kind)
            .map(|(.., lb)| lb.as_slice())
    }

    /// Base-schedule cycles of the profiled context.
    pub fn total_cycles(&self) -> u32 {
        self.total_cycles
    }

    /// Full estimate for a candidate plan, using only profiled data and
    /// per-thread scratch.
    ///
    /// # Panics
    ///
    /// Panics if the plan shares a kind that was not profiled.
    pub fn estimate(&self, plan: &SharingPlan) -> StallEstimate {
        let rs = self.rs_stalls(plan);
        let rp = self.rp_overhead(plan);
        StallEstimate {
            rs_stalls: rs,
            rp_overhead: rp,
            total_cycles: self.total_cycles + rs + rp,
        }
    }

    /// RS stalls of a candidate plan (greedy bank absorption over the
    /// sparse demand).
    pub fn rs_stalls(&self, plan: &SharingPlan) -> u32 {
        plan.groups()
            .iter()
            .map(|g| {
                let demand = self
                    .demand(g.kind())
                    .expect("shared kind was profiled for this exploration");
                rs_excess(demand, g.per_row() as u32, g.per_col() as u32)
            })
            .sum()
    }

    /// Admissible lower bound on [`ContextProfile::rs_stalls`]: in each
    /// cycle, greedy absorption can only draw from the row banks of rows
    /// that actually demand (`rows_touched · shr`) and the column banks
    /// of columns that actually demand (`cols_touched · shc`), so any
    /// demand beyond that capacity stalls no matter how it is laid out.
    pub fn rs_stalls_lower_bound(&self, plan: &SharingPlan) -> u32 {
        plan.groups()
            .iter()
            .map(|g| {
                let lb = self
                    .lb_cycles(g.kind())
                    .expect("shared kind was profiled for this exploration");
                let (shr, shc) = (g.per_row() as u32, g.per_col() as u32);
                lb.iter()
                    .map(|c| {
                        c.demand
                            .saturating_sub(c.rows_touched * shr + c.cols_touched * shc)
                    })
                    .sum::<u32>()
            })
            .sum()
    }

    /// RP overhead of a candidate plan.
    pub fn rp_overhead(&self, plan: &SharingPlan) -> u32 {
        let mut overhead = 0u32;
        let shared = plan
            .groups()
            .iter()
            .filter(|g| g.is_pipelined())
            .map(|g| (g.kind(), g.stages()));
        let local = plan.local_pipelines().filter(|(_, s)| *s > 1);
        for (kind, stages) in shared.chain(local) {
            if kind != FuKind::Multiplier {
                // Generic fallback: charge the body's full count.
                overhead += (stages as u32 - 1) * self.body_len;
                continue;
            }
            overhead += (stages as u32 - 1)
                * (self.body_chain_mults * self.repetitions + self.tail_chain_mults);
        }
        overhead
    }
}

/// Sequential body repetitions the schedule serializes on one resource:
/// the per-element steps under lockstep mapping, the per-row rounds under
/// dataflow mapping (each round waits on the previous round's stretched
/// modulo schedule).
fn repetitions(ctx: &ConfigContext, kernel: &Kernel) -> u32 {
    match ctx.style() {
        rsp_kernel::MappingStyle::Lockstep => kernel.steps() as u32,
        rsp_kernel::MappingStyle::Dataflow => {
            kernel.elements().div_ceil(ctx.geometry().rows()) as u32
        }
    }
}

// Per-thread reusable bank budgets: sized once per geometry, cleared
// sparsely (only touched rows/columns) after every cycle, so steady-state
// estimation performs zero allocation regardless of candidate count.
thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

#[derive(Default)]
struct Scratch {
    row_used: Vec<u32>,
    col_used: Vec<u32>,
}

impl Scratch {
    fn ensure(&mut self, rows: usize, cols: usize) {
        if self.row_used.len() < rows {
            self.row_used.resize(rows, 0);
        }
        if self.col_used.len() < cols {
            self.col_used.resize(cols, 0);
        }
    }
}

/// Greedy absorption over one kind's sparse demand: a cell's operations
/// first use their row bank (`shr` per row, shared along the row), then
/// their own column bank (`shc` per column). Whatever remains is excess
/// and charged one stall cycle per operation — pessimistic against the
/// exact rearrangement, which can also slip operations into later
/// bubbles. Cells are visited in row-major order per cycle, matching the
/// dense-histogram sweep this replaces bit for bit.
fn rs_excess(demand: &CycleDemand, shr: u32, shc: u32) -> u32 {
    if demand.is_empty() {
        return 0;
    }
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        scratch.ensure(demand.rows(), demand.cols());
        let mut excess_total = 0u32;
        for (cells, _) in demand.cycles() {
            for cell in cells {
                let (r, c) = (cell.row as usize, cell.col as usize);
                let mut d = cell.count;
                let take = d.min(shr - scratch.row_used[r].min(shr));
                scratch.row_used[r] += take;
                d -= take;
                let take = d.min(shc - scratch.col_used[c].min(shc));
                scratch.col_used[c] += take;
                d -= take;
                excess_total += d;
            }
            for cell in cells {
                scratch.row_used[cell.row as usize] = 0;
                scratch.col_used[cell.col as usize] = 0;
            }
        }
        excess_total
    })
}

/// Estimates the rearranged cycle count of `ctx` on `arch` without
/// rescheduling.
///
/// One-shot convenience over [`ContextProfile`]: profiles the context for
/// the plan's shared kinds, then estimates. Exploration engines should
/// build the profile once instead.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::{estimate_stalls, rearrange};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let kernel = suite::state();
/// let ctx = map(presets::base_8x8().base(), &kernel, &MapOptions::default())?;
/// let est = estimate_stalls(&ctx, &kernel, &presets::rs1());
/// let exact = rearrange(&ctx, &presets::rs1(), &Default::default())?;
/// // The estimate upper-bounds the exact schedule (paper §4).
/// assert!(est.total_cycles >= exact.total_cycles);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_stalls(
    ctx: &ConfigContext,
    kernel: &Kernel,
    arch: &RspArchitecture,
) -> StallEstimate {
    let kinds: Vec<FuKind> = arch.plan().groups().iter().map(|g| g.kind()).collect();
    ContextProfile::new(ctx, kernel, &kinds).estimate(arch.plan())
}

/// The original dense-histogram estimator, kept verbatim as the
/// independent oracle behind [`crate::explore_reference`]: rebuilds a
/// `cycles × rows × cols` demand histogram per shared group per call and
/// sweeps every cell. Bit-equal to [`estimate_stalls`] (property-tested),
/// but shares no code with the sparse path, so a regression in either
/// implementation shows up as a divergence.
pub(crate) fn estimate_stalls_dense(
    ctx: &ConfigContext,
    kernel: &Kernel,
    arch: &RspArchitecture,
) -> StallEstimate {
    let rs = dense_rs(ctx, arch);
    let rp = dense_rp(ctx, kernel, arch);
    StallEstimate {
        rs_stalls: rs,
        rp_overhead: rp,
        total_cycles: ctx.total_cycles() + rs + rp,
    }
}

/// Counts, cycle by cycle of the base schedule, critical operations
/// beyond the capacity reachable from their rows/columns (dense form).
fn dense_rs(ctx: &ConfigContext, arch: &RspArchitecture) -> u32 {
    let plan = arch.plan();
    let geom = ctx.geometry();
    let (rows, cols) = (geom.rows(), geom.cols());
    let mut excess_total = 0u32;

    for g in plan.groups() {
        let kind = g.kind();
        let t = ctx.total_cycles() as usize;
        // Demand per (cycle, row, col) cell.
        let mut demand = vec![0u32; t * rows * cols];
        for (inst, &cyc) in ctx.instances().iter().zip(ctx.cycles()) {
            if inst.op.fu() == Some(kind) {
                demand[(cyc as usize * rows + inst.pe.row) * cols + inst.pe.col] += 1;
            }
        }
        for cyc in 0..t {
            let mut row_budget = vec![g.per_row() as u32; rows];
            let mut col_budget = vec![g.per_col() as u32; cols];
            for r in 0..rows {
                for c in 0..cols {
                    let mut d = demand[(cyc * rows + r) * cols + c];
                    let take = d.min(row_budget[r]);
                    row_budget[r] -= take;
                    d -= take;
                    let take = d.min(col_budget[c]);
                    col_budget[c] -= take;
                    d -= take;
                    excess_total += d;
                }
            }
        }
    }
    excess_total
}

/// `stages − 1` per pipelined operation on the critical chain, overlap
/// removed (dense-path twin of [`ContextProfile::rp_overhead`]).
fn dense_rp(ctx: &ConfigContext, kernel: &Kernel, arch: &RspArchitecture) -> u32 {
    let reps = repetitions(ctx, kernel);
    let mut overhead = 0u32;
    let mut kinds: Vec<(FuKind, u8)> = arch
        .plan()
        .groups()
        .iter()
        .filter(|g| g.is_pipelined())
        .map(|g| (g.kind(), g.stages()))
        .collect();
    kinds.extend(arch.plan().local_pipelines().filter(|(_, s)| *s > 1));

    for (kind, stages) in kinds {
        if kind != FuKind::Multiplier {
            overhead += (stages as u32 - 1) * kernel.body().len() as u32;
            continue;
        }
        let body_chain = kernel.body().critical_path_mults() as u32;
        let tail_chain = kernel.tail().map_or(0, |t| t.critical_path_mults() as u32);
        overhead += (stages as u32 - 1) * (body_chain * reps + tail_chain);
    }
    overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rearrange::rearrange;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn ctx_for(kernel: &rsp_kernel::Kernel) -> ConfigContext {
        map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap()
    }

    fn estimate_rp(ctx: &ConfigContext, kernel: &Kernel, arch: &RspArchitecture) -> u32 {
        ContextProfile::new(ctx, kernel, &[]).rp_overhead(arch.plan())
    }

    #[test]
    fn estimate_upper_bounds_exact_for_suite() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                let est = estimate_stalls(&ctx, &k, &arch);
                let exact = rearrange(&ctx, &arch, &Default::default()).unwrap();
                assert!(
                    est.total_cycles >= exact.total_cycles,
                    "{} on {}: est {} < exact {}",
                    k.name(),
                    arch.name(),
                    est.total_cycles,
                    exact.total_cycles
                );
            }
        }
    }

    #[test]
    fn base_estimate_is_exact() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::base_8x8());
            assert_eq!(est.total_cycles, ctx.total_cycles(), "{}", k.name());
            assert_eq!(est.rs_stalls, 0);
            assert_eq!(est.rp_overhead, 0);
        }
    }

    #[test]
    fn rs_estimate_zero_for_single_mult_lockstep_kernels() {
        for k in [
            suite::iccg(),
            suite::tri_diagonal(),
            suite::inner_product(),
            suite::mvm(),
        ] {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::rs1());
            assert_eq!(est.rs_stalls, 0, "{}", k.name());
        }
    }

    #[test]
    fn rs_estimate_positive_for_dense_kernels_on_rs1() {
        for k in [
            suite::hydro(),
            suite::state(),
            suite::fdct(),
            suite::fft_mult_loop(),
        ] {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::rs1());
            assert!(est.rs_stalls > 0, "{}", k.name());
        }
    }

    #[test]
    fn rp_estimate_scales_with_stages() {
        let k = suite::matmul(8);
        let ctx = ctx_for(&k);
        let two = estimate_rp(&ctx, &k, &presets::rsp1());
        let four = estimate_rp(&ctx, &k, &presets::shared_multiplier("deep", 8, 8, 1, 0, 4));
        assert!(four > two);
        assert_eq!(four, 3 * two);
    }

    #[test]
    fn sad_estimates_zero_everywhere() {
        let k = suite::sad();
        let ctx = ctx_for(&k);
        for arch in presets::table_architectures() {
            let est = estimate_stalls(&ctx, &k, &arch);
            assert_eq!(est.total_cycles, ctx.total_cycles(), "{}", arch.name());
        }
    }

    #[test]
    fn lower_bound_is_admissible_for_suite() {
        // For every kernel × architecture, lb_rs <= exact rs estimate.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let profile = ContextProfile::new(&ctx, &k, &[FuKind::Multiplier]);
            for arch in presets::table_architectures() {
                let lb = profile.rs_stalls_lower_bound(arch.plan());
                let exact = profile.rs_stalls(arch.plan());
                assert!(
                    lb <= exact,
                    "{} on {}: lb {} > rs {}",
                    k.name(),
                    arch.name(),
                    lb,
                    exact
                );
            }
        }
    }

    #[test]
    fn sparse_estimator_matches_dense_oracle() {
        // The sparse profile path and the original dense histogram share
        // no code; they must agree exactly on every kernel × preset.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                assert_eq!(
                    estimate_stalls(&ctx, &k, &arch),
                    estimate_stalls_dense(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
            // Deep pipelines and row+column banks too.
            for (shr, shc, st) in [(1, 1, 4), (3, 0, 8), (2, 2, 3)] {
                let arch = presets::shared_multiplier("deep", 8, 8, shr, shc, st);
                assert_eq!(
                    estimate_stalls(&ctx, &k, &arch),
                    estimate_stalls_dense(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn profile_estimate_matches_one_shot_estimate() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let profile = ContextProfile::new(&ctx, &k, &[FuKind::Multiplier]);
            for arch in presets::table_architectures() {
                assert_eq!(
                    profile.estimate(arch.plan()),
                    estimate_stalls(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
        }
    }
}
