//! Exploration-time performance estimation (upper bound).
//!
//! Mapping and exactly evaluating every candidate RSP design is
//! time-consuming, so the paper's exploration stage estimates stall counts
//! from the *initial* configuration contexts (§4):
//!
//! * **RS stall estimate** — per cycle, the number of critical operations
//!   that exceed the reachable shared resources; each excess operation is
//!   assumed to cost a stall cycle (pessimistic, hence an upper bound on
//!   stalls / lower bound on performance).
//! * **RP stall estimate** — each pipelined operation on the body's
//!   critical dependence chain delays its dependents by `stages − 1`
//!   cycles; consecutive pipelined operations overlap and are not double
//!   counted.

use rsp_arch::{FuKind, RspArchitecture};
use rsp_kernel::Kernel;
use rsp_mapper::ConfigContext;
use serde::{Deserialize, Serialize};

/// Estimated performance of one kernel on one candidate architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallEstimate {
    /// Estimated RS stalls (resource shortage).
    pub rs_stalls: u32,
    /// Estimated RP overhead (multi-cycle latency on the critical chain).
    pub rp_overhead: u32,
    /// Estimated total cycles (base + both contributions).
    pub total_cycles: u32,
}

/// Estimates the rearranged cycle count of `ctx` on `arch` without
/// rescheduling.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::{estimate_stalls, rearrange};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let kernel = suite::state();
/// let ctx = map(presets::base_8x8().base(), &kernel, &MapOptions::default())?;
/// let est = estimate_stalls(&ctx, &kernel, &presets::rs1());
/// let exact = rearrange(&ctx, &presets::rs1(), &Default::default())?;
/// // The estimate upper-bounds the exact schedule (paper §4).
/// assert!(est.total_cycles >= exact.total_cycles);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_stalls(
    ctx: &ConfigContext,
    kernel: &Kernel,
    arch: &RspArchitecture,
) -> StallEstimate {
    let rs = estimate_rs(ctx, arch);
    let rp = estimate_rp(ctx, kernel, arch);
    StallEstimate {
        rs_stalls: rs,
        rp_overhead: rp,
        total_cycles: ctx.total_cycles() + rs + rp,
    }
}

/// Counts, cycle by cycle of the base schedule, critical operations beyond
/// the capacity reachable from their rows/columns.
fn estimate_rs(ctx: &ConfigContext, arch: &RspArchitecture) -> u32 {
    let plan = arch.plan();
    let geom = ctx.geometry();
    let (rows, cols) = (geom.rows(), geom.cols());
    let mut excess_total = 0u32;

    for g in plan.groups() {
        let kind = g.kind();
        let t = ctx.total_cycles() as usize;
        // Demand per (cycle, row, col) cell.
        let mut demand = vec![0u32; t * rows * cols];
        for (inst, &cyc) in ctx.instances().iter().zip(ctx.cycles()) {
            if inst.op.fu() == Some(kind) {
                demand[(cyc as usize * rows + inst.pe.row) * cols + inst.pe.col] += 1;
            }
        }
        for cyc in 0..t {
            // Greedy absorption: a cell's operations first use their row
            // bank (shr per row, shared along the row), then their own
            // column bank (shc per column). Whatever remains is excess and
            // charged one stall cycle per operation — pessimistic against
            // the exact rearrangement, which can also slip operations into
            // later bubbles.
            let mut row_budget = vec![g.per_row() as u32; rows];
            let mut col_budget = vec![g.per_col() as u32; cols];
            for r in 0..rows {
                for c in 0..cols {
                    let mut d = demand[(cyc * rows + r) * cols + c];
                    let take = d.min(row_budget[r]);
                    row_budget[r] -= take;
                    d -= take;
                    let take = d.min(col_budget[c]);
                    col_budget[c] -= take;
                    d -= take;
                    excess_total += d;
                }
            }
        }
    }
    excess_total
}

/// `stages − 1` per pipelined operation on the critical chain, overlap
/// removed, scaled by the number of sequential body repetitions the
/// schedule serializes on one resource: the per-element steps under
/// lockstep mapping, the per-row rounds under dataflow mapping (each round
/// waits on the previous round's stretched modulo schedule).
fn estimate_rp(ctx: &ConfigContext, kernel: &Kernel, arch: &RspArchitecture) -> u32 {
    let repetitions = match ctx.style() {
        rsp_kernel::MappingStyle::Lockstep => kernel.steps() as u32,
        rsp_kernel::MappingStyle::Dataflow => {
            kernel.elements().div_ceil(ctx.geometry().rows()) as u32
        }
    };
    let mut overhead = 0u32;
    let mut kinds: Vec<(FuKind, u8)> = arch
        .plan()
        .groups()
        .iter()
        .filter(|g| g.is_pipelined())
        .map(|g| (g.kind(), g.stages()))
        .collect();
    kinds.extend(arch.plan().local_pipelines().filter(|(_, s)| *s > 1));

    for (kind, stages) in kinds {
        if kind != FuKind::Multiplier {
            // Generic fallback: charge the body's full count.
            overhead += (stages as u32 - 1) * kernel.body().len() as u32;
            continue;
        }
        let body_chain = kernel.body().critical_path_mults() as u32;
        let tail_chain = kernel
            .tail()
            .map_or(0, |t| t.critical_path_mults() as u32);
        overhead += (stages as u32 - 1) * (body_chain * repetitions + tail_chain);
    }
    overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rearrange::rearrange;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn ctx_for(kernel: &rsp_kernel::Kernel) -> ConfigContext {
        map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap()
    }

    #[test]
    fn estimate_upper_bounds_exact_for_suite() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                let est = estimate_stalls(&ctx, &k, &arch);
                let exact = rearrange(&ctx, &arch, &Default::default()).unwrap();
                assert!(
                    est.total_cycles >= exact.total_cycles,
                    "{} on {}: est {} < exact {}",
                    k.name(),
                    arch.name(),
                    est.total_cycles,
                    exact.total_cycles
                );
            }
        }
    }

    #[test]
    fn base_estimate_is_exact() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::base_8x8());
            assert_eq!(est.total_cycles, ctx.total_cycles(), "{}", k.name());
            assert_eq!(est.rs_stalls, 0);
            assert_eq!(est.rp_overhead, 0);
        }
    }

    #[test]
    fn rs_estimate_zero_for_single_mult_lockstep_kernels() {
        for k in [suite::iccg(), suite::tri_diagonal(), suite::inner_product(), suite::mvm()] {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::rs1());
            assert_eq!(est.rs_stalls, 0, "{}", k.name());
        }
    }

    #[test]
    fn rs_estimate_positive_for_dense_kernels_on_rs1() {
        for k in [suite::hydro(), suite::state(), suite::fdct(), suite::fft_mult_loop()] {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::rs1());
            assert!(est.rs_stalls > 0, "{}", k.name());
        }
    }

    #[test]
    fn rp_estimate_scales_with_stages() {
        let k = suite::matmul(8);
        let ctx = ctx_for(&k);
        let two = estimate_rp(&ctx, &k, &presets::rsp1());
        let four = estimate_rp(
            &ctx,
            &k,
            &presets::shared_multiplier("deep", 8, 8, 1, 0, 4),
        );
        assert!(four > two);
        assert_eq!(four, 3 * two);
    }

    #[test]
    fn sad_estimates_zero_everywhere() {
        let k = suite::sad();
        let ctx = ctx_for(&k);
        for arch in presets::table_architectures() {
            let est = estimate_stalls(&ctx, &k, &arch);
            assert_eq!(est.total_cycles, ctx.total_cycles(), "{}", arch.name());
        }
    }
}
