//! Exploration-time performance estimation (upper bound).
//!
//! Mapping and exactly evaluating every candidate RSP design is
//! time-consuming, so the paper's exploration stage estimates stall counts
//! from the *initial* configuration contexts (§4):
//!
//! * **RS stall estimate** — per cycle, the number of critical operations
//!   that exceed the reachable shared resources; each excess operation is
//!   assumed to cost a stall cycle (pessimistic, hence an upper bound on
//!   stalls / lower bound on performance).
//! * **RP stall estimate** — each pipelined operation on the body's
//!   critical dependence chain delays its dependents by `stages − 1`
//!   cycles; consecutive pipelined operations overlap and are not double
//!   counted.
//!
//! # Estimation cost
//!
//! The demand a kernel places on a shared kind depends only on the
//! context, never on the candidate plan, so it is profiled once into a
//! sparse [`CycleDemand`] ([`ContextProfile`]) and every candidate then
//! performs an O(non-zero cells) greedy reduction with per-thread
//! reusable scratch budgets — no per-candidate allocation, no dense
//! `cycles × rows × cols` histogram.
//! [`ContextProfile::rs_stalls_lower_bound`] additionally yields an
//! admissible O(non-zero cells) lower bound on the RS stalls (per-cycle
//! demand minus the capacity its touched rows/columns can reach), which
//! the exploration engine uses to skip hopeless candidates early. Two
//! bound strengths are offered ([`BoundKind`]): the original aggregate
//! capacity credit, and the tighter per-row residual form that caps each
//! row's (column's) credit at its own demand.

use rsp_arch::{FuKind, RspArchitecture, SharingPlan};
use rsp_kernel::Kernel;
use rsp_mapper::{ConfigContext, CycleDemand};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Estimated performance of one kernel on one candidate architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallEstimate {
    /// Estimated RS stalls (resource shortage).
    pub rs_stalls: u32,
    /// Estimated RP overhead (multi-cycle latency on the critical chain).
    pub rp_overhead: u32,
    /// Estimated configuration-cache refill stalls
    /// ([`refill_stall_estimate`] over the estimated execution
    /// cycles; 0 when the estimate fits the cache).
    pub refill_stalls: u32,
    /// Estimated total elapsed cycles (base + RS + RP + refill).
    pub total_cycles: u32,
}

/// The refill-stall charge for a schedule of `exec_cycles` execution
/// cycles on a cache of `cache_depth` contexts:
/// `max(0, exec − cache_depth)`.
///
/// The exact cost of a split schedule is `exec − seg0_depth` (every
/// segment after the first reloads at one stall cycle per context word;
/// segment 0's load is the initial configuration load, which is free),
/// so this formula is the **greedy ideal** `seg0_depth = cache_depth`:
///
/// * Fed a **lower** bound on the execution cycles it is an admissible
///   lower bound on the exact refill (`seg0_depth ≤ cache_depth` always,
///   and the expression is monotone in `exec_cycles`) — which is what
///   lets the exploration engine's pruning floor include refill without
///   ever cutting a candidate the reference keeps.
/// * Fed the stall estimate's execution **upper** bound it is *exact*
///   for the combinational (unit-latency) sharing variants, where every
///   boundary is a legal cut and the greedy splitter packs full
///   segments. Pipelined variants whose sparse legal cuts force smaller
///   segments can exceed it — the same variants that are usually
///   unsplittable outright — so on those the charge is a model
///   estimate, not a bound; the RS/RP stall estimates keep their paper
///   upper-bound property regardless.
pub fn refill_stall_estimate(exec_cycles: u32, cache_depth: u32) -> u32 {
    exec_cycles.saturating_sub(cache_depth)
}

/// Which admissible lower bound on the RS stalls the exploration engine
/// computes per candidate (see
/// [`ContextProfile::rs_stalls_lower_bound`]).
///
/// Both bounds never exceed the full greedy estimate
/// ([`ContextProfile::rs_stalls`]), so either is safe for
/// result-preserving pruning; [`BoundKind::PerRowResidual`] is tighter
/// (term-wise at least as large) and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BoundKind {
    /// Per cycle, `demand − (rows_touched·shr + cols_touched·shc)`:
    /// every touched row/column is credited its full bank. Loose when
    /// demand spreads thinly across many rows (a row demanding one
    /// operation still gets credited all `shr`).
    Aggregate,
    /// Per cycle, `demand − Σᵣ min(rowᵣ, shr) − Σ꜀ min(col꜀, shc)`: a
    /// row (column) can absorb at most its own demand, so row-local
    /// peaks are no longer hidden by idle capacity elsewhere. Term-wise
    /// ≥ [`BoundKind::Aggregate`] and still admissible.
    #[default]
    PerRowResidual,
}

/// Which admissible lower bound on a candidate's *clock period* the
/// exploration engine consults **before** paying for full delay
/// synthesis — the clock-side sibling of [`BoundKind`] (which bounds the
/// cycle count). Multiplying the cycle lower bound by an admissible
/// clock floor yields an execution-time floor; when that floor already
/// violates `max_slowdown`, the candidate is cut without ever touching
/// the `ModelCache` delay path. Both settings are result-preserving: a
/// candidate the floor cuts has `est_et ≥ lb_et ≥ lb_floor_et >
/// bound` term-wise under IEEE-754 rounding, so the reference rejects it
/// too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ClockBound {
    /// Always synthesize the clock before any pruning decision.
    Off,
    /// Lower-bound the clock from the plan's stage structure alone
    /// (`rsp_synth::DelayModel::clock_floor_ns`, served through the
    /// `ModelCache::clock_floor` fast path): each pipeline stage costs at
    /// least `fu/stages + register + switch + interconnect`, each
    /// combinational shared resource at least `mux + switch + fu +
    /// interconnect`, and synthesis refinements only add non-negative
    /// terms on top.
    #[default]
    StageFloor,
}

/// Per-cycle summary backing the admissible RS lower bound: total demand
/// plus how many distinct rows/columns it touches (the only banks greedy
/// absorption can draw from), and the lengths of this cycle's capacity
/// prefix tables in [`LbProfile`].
#[derive(Debug, Clone, Copy)]
struct LbCycle {
    demand: u32,
    rows_touched: u32,
    cols_touched: u32,
    row_caps_len: u32,
    col_caps_len: u32,
}

/// Lower-bound profile of one shared kind: the per-cycle aggregate
/// summaries plus flattened *capacity prefix tables* (cycle-major). A
/// cycle's row table holds `cap(s) = Σᵣ min(rowᵣ, s)` for
/// `s = 1 ..= max(rowᵣ)` — the most that row banks of size `s` can
/// absorb — and analogously for columns, so the per-row residual bound
/// reduces each cycle in O(1) for any `(shr, shc)`: same per-candidate
/// cost as the aggregate bound, zero per-candidate allocation. Bank
/// sizes beyond the table saturate at its last entry (`Σ rowᵣ`, the
/// cycle demand).
#[derive(Debug, Clone, Default)]
struct LbProfile {
    cycles: Vec<LbCycle>,
    row_caps: Vec<u32>,
    col_caps: Vec<u32>,
}

/// `Σ min(d, s)` for `s = 1 ..= max(d)` appended to `caps`; returns the
/// number of entries written. Sorts `demands` in place and builds the
/// table incrementally from `cap(s) = cap(s−1) + #{d ≥ s}`, so the cost
/// is O(n log n + max(d)) instead of O(n · max(d)).
fn push_caps(caps: &mut Vec<u32>, demands: &mut [u32]) -> u32 {
    demands.sort_unstable();
    let max = demands.last().copied().unwrap_or(0);
    let mut cap = 0u32;
    let mut below = 0usize; // demands[..below] are < s
    for s in 1..=max {
        while below < demands.len() && demands[below] < s {
            below += 1;
        }
        cap += (demands.len() - below) as u32;
        caps.push(cap);
    }
    max
}

/// Everything the estimator needs about one `(kernel, context)` pair,
/// computed once and reused across all candidate architectures.
#[derive(Debug, Clone)]
pub struct ContextProfile {
    /// Sparse demand per profiled shared kind, in `kinds` order, with the
    /// per-cycle lower-bound summaries.
    kinds: Vec<(FuKind, CycleDemand, LbProfile)>,
    /// Base-schedule length.
    total_cycles: u32,
    /// Sequential body repetitions the schedule serializes (see
    /// [`repetitions`]).
    repetitions: u32,
    /// Multiplications on the body's critical dependence chain.
    body_chain_mults: u32,
    /// Multiplications on the tail's critical dependence chain.
    tail_chain_mults: u32,
    /// Operations in the body graph (generic non-multiplier fallback).
    body_len: u32,
}

impl ContextProfile {
    /// Profiles `ctx` for the shared-resource `kinds` an exploration will
    /// offer.
    pub fn new(ctx: &ConfigContext, kernel: &Kernel, kinds: &[FuKind]) -> Self {
        let mut profiled: Vec<(FuKind, CycleDemand, LbProfile)> = Vec::with_capacity(kinds.len());
        let mut col_scratch: Vec<(u16, u32)> = Vec::new();
        let mut row_scratch: Vec<u32> = Vec::new();
        let mut col_demand_scratch: Vec<u32> = Vec::new();
        for &kind in kinds {
            if profiled.iter().any(|(k, ..)| *k == kind) {
                continue;
            }
            let demand = ctx.cycle_demand(|op| op.fu() == Some(kind));
            let mut lb = LbProfile::default();
            for (cells, total) in demand.cycles() {
                row_scratch.clear();
                row_scratch.extend(CycleDemand::row_totals(cells).map(|(_, t)| t));
                CycleDemand::col_totals(cells, &mut col_scratch);
                let rows_touched = row_scratch.len() as u32;
                let cols_touched = col_scratch.len() as u32;
                let row_caps_len = push_caps(&mut lb.row_caps, &mut row_scratch);
                col_demand_scratch.clear();
                col_demand_scratch.extend(col_scratch.iter().map(|&(_, t)| t));
                let col_caps_len = push_caps(&mut lb.col_caps, &mut col_demand_scratch);
                lb.cycles.push(LbCycle {
                    demand: total,
                    rows_touched,
                    cols_touched,
                    row_caps_len,
                    col_caps_len,
                });
            }
            profiled.push((kind, demand, lb));
        }
        ContextProfile {
            kinds: profiled,
            total_cycles: ctx.total_cycles(),
            repetitions: repetitions(ctx, kernel),
            body_chain_mults: kernel.body().critical_path_mults() as u32,
            tail_chain_mults: kernel.tail().map_or(0, |t| t.critical_path_mults() as u32),
            body_len: kernel.body().len() as u32,
        }
    }

    /// The profiled demand for `kind`, if it was requested at build time.
    pub fn demand(&self, kind: FuKind) -> Option<&CycleDemand> {
        self.kinds
            .iter()
            .find(|(k, ..)| *k == kind)
            .map(|(_, d, _)| d)
    }

    fn lb_profile(&self, kind: FuKind) -> Option<&LbProfile> {
        self.kinds
            .iter()
            .find(|(k, ..)| *k == kind)
            .map(|(.., lb)| lb)
    }

    /// Base-schedule cycles of the profiled context.
    pub fn total_cycles(&self) -> u32 {
        self.total_cycles
    }

    /// Full estimate for a candidate plan, using only profiled data and
    /// per-thread scratch. `cache_depth` is the per-PE configuration
    /// cache: estimated execution cycles beyond it are charged the
    /// greedy-ideal refill cost ([`refill_stall_estimate`]) instead of
    /// making the candidate infeasible.
    ///
    /// # Panics
    ///
    /// Panics if the plan shares a kind that was not profiled.
    pub fn estimate(&self, plan: &SharingPlan, cache_depth: u32) -> StallEstimate {
        let rs = self.rs_stalls(plan);
        let rp = self.rp_overhead(plan);
        let exec = self.total_cycles + rs + rp;
        let refill = refill_stall_estimate(exec, cache_depth);
        StallEstimate {
            rs_stalls: rs,
            rp_overhead: rp,
            refill_stalls: refill,
            total_cycles: exec + refill,
        }
    }

    /// RS stalls of a candidate plan (greedy bank absorption over the
    /// sparse demand).
    pub fn rs_stalls(&self, plan: &SharingPlan) -> u32 {
        plan.groups()
            .iter()
            .map(|g| {
                let demand = self
                    .demand(g.kind())
                    .expect("shared kind was profiled for this exploration");
                rs_excess(demand, g.per_row() as u32, g.per_col() as u32)
            })
            .sum()
    }

    /// Admissible lower bound on [`ContextProfile::rs_stalls`]: in each
    /// cycle, greedy absorption can only draw from the row banks of rows
    /// that actually demand and the column banks of columns that
    /// actually demand, so any demand beyond that capacity stalls no
    /// matter how it is laid out.
    ///
    /// With [`BoundKind::Aggregate`] every touched row/column is
    /// credited its full bank (`rows_touched·shr + cols_touched·shc`);
    /// with [`BoundKind::PerRowResidual`] each row (column) is credited
    /// at most its own demand (`Σ min(rowᵣ, shr) + Σ min(col꜀, shc)`),
    /// which is still an over-estimate of what greedy absorption can
    /// take — a row bank never absorbs more than the row demands, a
    /// column bank never more than the column demands — and therefore
    /// still admissible, while no longer crediting idle capacity on
    /// lightly-loaded rows. Both reductions cost O(non-empty cycles) per
    /// candidate with zero allocation: the per-row form reads capacity
    /// prefix tables (`cap(s) = Σ min(d, s)`, precomputed per cycle at
    /// profile-build time) in O(1) per cycle instead of re-scanning
    /// demand cells.
    pub fn rs_stalls_lower_bound(&self, plan: &SharingPlan, bound: BoundKind) -> u32 {
        plan.groups()
            .iter()
            .map(|g| {
                let lb = self
                    .lb_profile(g.kind())
                    .expect("shared kind was profiled for this exploration");
                let (shr, shc) = (g.per_row() as u32, g.per_col() as u32);
                match bound {
                    BoundKind::Aggregate => lb
                        .cycles
                        .iter()
                        .map(|c| {
                            c.demand
                                .saturating_sub(c.rows_touched * shr + c.cols_touched * shc)
                        })
                        .sum::<u32>(),
                    BoundKind::PerRowResidual => {
                        let cap_at = |caps: &[u32], banks: u32| -> u32 {
                            if banks == 0 || caps.is_empty() {
                                0
                            } else {
                                caps[(banks as usize).min(caps.len()) - 1]
                            }
                        };
                        let (mut ri, mut ci) = (0usize, 0usize);
                        lb.cycles
                            .iter()
                            .map(|c| {
                                let rows = &lb.row_caps[ri..ri + c.row_caps_len as usize];
                                let cols = &lb.col_caps[ci..ci + c.col_caps_len as usize];
                                ri += rows.len();
                                ci += cols.len();
                                c.demand
                                    .saturating_sub(cap_at(rows, shr) + cap_at(cols, shc))
                            })
                            .sum::<u32>()
                    }
                }
            })
            .sum()
    }

    /// RP overhead of a candidate plan.
    pub fn rp_overhead(&self, plan: &SharingPlan) -> u32 {
        let mut overhead = 0u32;
        let shared = plan
            .groups()
            .iter()
            .filter(|g| g.is_pipelined())
            .map(|g| (g.kind(), g.stages()));
        let local = plan.local_pipelines().filter(|(_, s)| *s > 1);
        for (kind, stages) in shared.chain(local) {
            if kind != FuKind::Multiplier {
                // Generic fallback: charge the body's full count.
                overhead += (stages as u32 - 1) * self.body_len;
                continue;
            }
            overhead += (stages as u32 - 1)
                * (self.body_chain_mults * self.repetitions + self.tail_chain_mults);
        }
        overhead
    }
}

/// Sequential body repetitions the schedule serializes on one resource:
/// the per-element steps under lockstep mapping, the per-row rounds under
/// dataflow mapping (each round waits on the previous round's stretched
/// modulo schedule).
fn repetitions(ctx: &ConfigContext, kernel: &Kernel) -> u32 {
    match ctx.style() {
        rsp_kernel::MappingStyle::Lockstep => kernel.steps() as u32,
        rsp_kernel::MappingStyle::Dataflow => {
            kernel.elements().div_ceil(ctx.geometry().rows()) as u32
        }
    }
}

// Per-thread reusable bank budgets: sized once per geometry, cleared
// sparsely (only touched rows/columns) after every cycle, so steady-state
// estimation performs zero allocation regardless of candidate count.
thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

#[derive(Default)]
struct Scratch {
    row_used: Vec<u32>,
    col_used: Vec<u32>,
}

impl Scratch {
    fn ensure(&mut self, rows: usize, cols: usize) {
        if self.row_used.len() < rows {
            self.row_used.resize(rows, 0);
        }
        if self.col_used.len() < cols {
            self.col_used.resize(cols, 0);
        }
    }
}

/// Greedy absorption over one kind's sparse demand: a cell's operations
/// first use their row bank (`shr` per row, shared along the row), then
/// their own column bank (`shc` per column). Whatever remains is excess
/// and charged one stall cycle per operation — pessimistic against the
/// exact rearrangement, which can also slip operations into later
/// bubbles. Cells are visited in row-major order per cycle, matching the
/// dense-histogram sweep this replaces bit for bit.
fn rs_excess(demand: &CycleDemand, shr: u32, shc: u32) -> u32 {
    if demand.is_empty() {
        return 0;
    }
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        scratch.ensure(demand.rows(), demand.cols());
        let mut excess_total = 0u32;
        for (cells, _) in demand.cycles() {
            for cell in cells {
                let (r, c) = (cell.row as usize, cell.col as usize);
                let mut d = cell.count;
                let take = d.min(shr - scratch.row_used[r].min(shr));
                scratch.row_used[r] += take;
                d -= take;
                let take = d.min(shc - scratch.col_used[c].min(shc));
                scratch.col_used[c] += take;
                d -= take;
                excess_total += d;
            }
            for cell in cells {
                scratch.row_used[cell.row as usize] = 0;
                scratch.col_used[cell.col as usize] = 0;
            }
        }
        excess_total
    })
}

/// Estimates the rearranged cycle count of `ctx` on `arch` without
/// rescheduling.
///
/// One-shot convenience over [`ContextProfile`]: profiles the context for
/// the plan's shared kinds, then estimates. Exploration engines should
/// build the profile once instead.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::{estimate_stalls, rearrange};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let kernel = suite::state();
/// let ctx = map(presets::base_8x8().base(), &kernel, &MapOptions::default())?;
/// let est = estimate_stalls(&ctx, &kernel, &presets::rs1());
/// let exact = rearrange(&ctx, &presets::rs1(), &Default::default())?;
/// // The estimate upper-bounds the exact schedule (paper §4), refill
/// // stalls included.
/// assert!(est.total_cycles >= exact.elapsed_cycles());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_stalls(
    ctx: &ConfigContext,
    kernel: &Kernel,
    arch: &RspArchitecture,
) -> StallEstimate {
    let kinds: Vec<FuKind> = arch.plan().groups().iter().map(|g| g.kind()).collect();
    ContextProfile::new(ctx, kernel, &kinds)
        .estimate(arch.plan(), arch.base().config_cache_depth() as u32)
}

/// The original dense-histogram estimator, kept verbatim as the
/// independent oracle behind [`crate::explore_reference`]: rebuilds a
/// `cycles × rows × cols` demand histogram per shared group per call and
/// sweeps every cell. Bit-equal to [`estimate_stalls`] (property-tested),
/// but shares no code with the sparse path, so a regression in either
/// implementation shows up as a divergence.
pub(crate) fn estimate_stalls_dense(
    ctx: &ConfigContext,
    kernel: &Kernel,
    arch: &RspArchitecture,
) -> StallEstimate {
    let rs = dense_rs(ctx, arch);
    let rp = dense_rp(ctx, kernel, arch);
    let exec = ctx.total_cycles() + rs + rp;
    let refill = refill_stall_estimate(exec, arch.base().config_cache_depth() as u32);
    StallEstimate {
        rs_stalls: rs,
        rp_overhead: rp,
        refill_stalls: refill,
        total_cycles: exec + refill,
    }
}

/// Counts, cycle by cycle of the base schedule, critical operations
/// beyond the capacity reachable from their rows/columns (dense form).
fn dense_rs(ctx: &ConfigContext, arch: &RspArchitecture) -> u32 {
    let plan = arch.plan();
    let geom = ctx.geometry();
    let (rows, cols) = (geom.rows(), geom.cols());
    let mut excess_total = 0u32;

    for g in plan.groups() {
        let kind = g.kind();
        let t = ctx.total_cycles() as usize;
        // Demand per (cycle, row, col) cell.
        let mut demand = vec![0u32; t * rows * cols];
        for (inst, &cyc) in ctx.instances().iter().zip(ctx.cycles()) {
            if inst.op.fu() == Some(kind) {
                demand[(cyc as usize * rows + inst.pe.row) * cols + inst.pe.col] += 1;
            }
        }
        for cyc in 0..t {
            let mut row_budget = vec![g.per_row() as u32; rows];
            let mut col_budget = vec![g.per_col() as u32; cols];
            for r in 0..rows {
                for c in 0..cols {
                    let mut d = demand[(cyc * rows + r) * cols + c];
                    let take = d.min(row_budget[r]);
                    row_budget[r] -= take;
                    d -= take;
                    let take = d.min(col_budget[c]);
                    col_budget[c] -= take;
                    d -= take;
                    excess_total += d;
                }
            }
        }
    }
    excess_total
}

/// `stages − 1` per pipelined operation on the critical chain, overlap
/// removed (dense-path twin of [`ContextProfile::rp_overhead`]).
fn dense_rp(ctx: &ConfigContext, kernel: &Kernel, arch: &RspArchitecture) -> u32 {
    let reps = repetitions(ctx, kernel);
    let mut overhead = 0u32;
    let mut kinds: Vec<(FuKind, u8)> = arch
        .plan()
        .groups()
        .iter()
        .filter(|g| g.is_pipelined())
        .map(|g| (g.kind(), g.stages()))
        .collect();
    kinds.extend(arch.plan().local_pipelines().filter(|(_, s)| *s > 1));

    for (kind, stages) in kinds {
        if kind != FuKind::Multiplier {
            overhead += (stages as u32 - 1) * kernel.body().len() as u32;
            continue;
        }
        let body_chain = kernel.body().critical_path_mults() as u32;
        let tail_chain = kernel.tail().map_or(0, |t| t.critical_path_mults() as u32);
        overhead += (stages as u32 - 1) * (body_chain * reps + tail_chain);
    }
    overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rearrange::rearrange;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn ctx_for(kernel: &rsp_kernel::Kernel) -> ConfigContext {
        map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap()
    }

    fn estimate_rp(ctx: &ConfigContext, kernel: &Kernel, arch: &RspArchitecture) -> u32 {
        ContextProfile::new(ctx, kernel, &[]).rp_overhead(arch.plan())
    }

    #[test]
    fn estimate_upper_bounds_exact_for_suite() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                let est = estimate_stalls(&ctx, &k, &arch);
                let exact = rearrange(&ctx, &arch, &Default::default()).unwrap();
                assert!(
                    est.total_cycles >= exact.elapsed_cycles(),
                    "{} on {}: est {} < exact {}",
                    k.name(),
                    arch.name(),
                    est.total_cycles,
                    exact.elapsed_cycles()
                );
            }
        }
    }

    #[test]
    fn base_estimate_is_exact() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::base_8x8());
            assert_eq!(est.total_cycles, ctx.total_cycles(), "{}", k.name());
            assert_eq!(est.rs_stalls, 0);
            assert_eq!(est.rp_overhead, 0);
        }
    }

    #[test]
    fn rs_estimate_zero_for_single_mult_lockstep_kernels() {
        for k in [
            suite::iccg(),
            suite::tri_diagonal(),
            suite::inner_product(),
            suite::mvm(),
        ] {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::rs1());
            assert_eq!(est.rs_stalls, 0, "{}", k.name());
        }
    }

    #[test]
    fn rs_estimate_positive_for_dense_kernels_on_rs1() {
        for k in [
            suite::hydro(),
            suite::state(),
            suite::fdct(),
            suite::fft_mult_loop(),
        ] {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::rs1());
            assert!(est.rs_stalls > 0, "{}", k.name());
        }
    }

    #[test]
    fn rp_estimate_scales_with_stages() {
        let k = suite::matmul(8);
        let ctx = ctx_for(&k);
        let two = estimate_rp(&ctx, &k, &presets::rsp1());
        let four = estimate_rp(&ctx, &k, &presets::shared_multiplier("deep", 8, 8, 1, 0, 4));
        assert!(four > two);
        assert_eq!(four, 3 * two);
    }

    #[test]
    fn sad_estimates_zero_everywhere() {
        let k = suite::sad();
        let ctx = ctx_for(&k);
        for arch in presets::table_architectures() {
            let est = estimate_stalls(&ctx, &k, &arch);
            assert_eq!(est.total_cycles, ctx.total_cycles(), "{}", arch.name());
        }
    }

    #[test]
    fn lower_bound_is_admissible_for_suite() {
        // For every kernel × architecture × bound kind, lb_rs <= exact
        // rs estimate.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let profile = ContextProfile::new(&ctx, &k, &[FuKind::Multiplier]);
            for arch in presets::table_architectures() {
                for bound in [BoundKind::Aggregate, BoundKind::PerRowResidual] {
                    let lb = profile.rs_stalls_lower_bound(arch.plan(), bound);
                    let exact = profile.rs_stalls(arch.plan());
                    assert!(
                        lb <= exact,
                        "{} on {} ({:?}): lb {} > rs {}",
                        k.name(),
                        arch.name(),
                        bound,
                        lb,
                        exact
                    );
                }
            }
        }
    }

    #[test]
    fn per_row_residual_bound_dominates_aggregate_bound() {
        // The per-row residual bound is term-wise at least the aggregate
        // bound — for every kernel, every sharable kind, and a grid of
        // bank shapes — and strictly beats it somewhere (on this suite
        // the strict wins come from ALU sharing, whose per-row demand is
        // the most unbalanced).
        let mut strictly_tighter_somewhere = false;
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for kind in [FuKind::Multiplier, FuKind::Alu, FuKind::Shifter] {
                let profile = ContextProfile::new(&ctx, &k, &[kind]);
                for shr in 1..=4usize {
                    for shc in 0..=4usize {
                        let Ok(g) = rsp_arch::SharedGroup::new(kind, shr, shc, 1) else {
                            continue;
                        };
                        let plan = rsp_arch::SharingPlan::none().with_group(g).unwrap();
                        let agg = profile.rs_stalls_lower_bound(&plan, BoundKind::Aggregate);
                        let per_row =
                            profile.rs_stalls_lower_bound(&plan, BoundKind::PerRowResidual);
                        let exact = profile.rs_stalls(&plan);
                        assert!(
                            per_row >= agg && per_row <= exact,
                            "{} {:?} shr={} shc={}: agg={} perrow={} exact={}",
                            k.name(),
                            kind,
                            shr,
                            shc,
                            agg,
                            per_row,
                            exact
                        );
                        strictly_tighter_somewhere |= per_row > agg;
                    }
                }
            }
        }
        assert!(
            strictly_tighter_somewhere,
            "per-row residual bound never beat the aggregate bound"
        );
    }

    #[test]
    fn refill_bounds_bracket_exact_refill_stalls() {
        // Against small-cache variants of the table architectures, the
        // estimate's refill charge upper-bounds the exact split plan's
        // stalls and the pruning floor lower-bounds them — the
        // admissibility pair every refill-aware cut relies on.
        use rsp_arch::{BaseArchitecture, RspArchitecture};
        let mut saw_refill = false;
        for k in [suite::fdct(), suite::state(), suite::sad()] {
            let ctx = ctx_for(&k);
            for big in [presets::rs1(), presets::rs2()] {
                let probe = rearrange(&ctx, &big, &Default::default()).unwrap();
                let depth = (probe.total_cycles / 2 + 1) as usize;
                let b = big.base();
                let small = BaseArchitecture::new(b.geometry(), b.pe().clone(), b.buses(), depth);
                let arch = RspArchitecture::new(big.name().to_string(), small, big.plan().clone())
                    .unwrap();
                let exact = rearrange(&ctx, &arch, &Default::default()).unwrap();
                let est = estimate_stalls(&ctx, &k, &arch);
                saw_refill |= exact.refill_stalls() > 0;
                assert!(
                    est.refill_stalls >= exact.refill_stalls(),
                    "{} on {}: est refill {} < exact {}",
                    k.name(),
                    arch.name(),
                    est.refill_stalls,
                    exact.refill_stalls()
                );
                assert!(est.total_cycles >= exact.elapsed_cycles());
                let lb = refill_stall_estimate(exact.total_cycles, depth as u32);
                assert!(
                    lb <= exact.refill_stalls(),
                    "{} on {}: refill lb {} > exact {}",
                    k.name(),
                    arch.name(),
                    lb,
                    exact.refill_stalls()
                );
            }
        }
        assert!(saw_refill, "no combination exercised an actual refill");
    }

    #[test]
    fn sparse_estimator_matches_dense_oracle() {
        // The sparse profile path and the original dense histogram share
        // no code; they must agree exactly on every kernel × preset.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                assert_eq!(
                    estimate_stalls(&ctx, &k, &arch),
                    estimate_stalls_dense(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
            // Deep pipelines and row+column banks too.
            for (shr, shc, st) in [(1, 1, 4), (3, 0, 8), (2, 2, 3)] {
                let arch = presets::shared_multiplier("deep", 8, 8, shr, shc, st);
                assert_eq!(
                    estimate_stalls(&ctx, &k, &arch),
                    estimate_stalls_dense(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn profile_estimate_matches_one_shot_estimate() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let profile = ContextProfile::new(&ctx, &k, &[FuKind::Multiplier]);
            for arch in presets::table_architectures() {
                assert_eq!(
                    profile.estimate(arch.plan(), arch.base().config_cache_depth() as u32),
                    estimate_stalls(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
        }
    }
}
