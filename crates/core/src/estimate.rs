//! Exploration-time performance estimation: an admissible, slack-aware
//! lower bound on the rearranged cycle count.
//!
//! Mapping and exactly evaluating every candidate RSP design is
//! time-consuming, so the exploration stage estimates each candidate's
//! elapsed cycles from the *initial* configuration contexts alone.
//! Where the paper's §4 estimator charges every over-subscribed
//! operation a whole stall cycle (a pessimistic upper bound — ≈ 3.6×
//! the exact schedule on the dense kernels), this module computes a
//! **slack-aware lower bound**: later idle capacity is credited against
//! earlier oversubscribed cycles, so the estimate tracks what the list
//! scheduler can actually achieve while staying *admissible* —
//! `estimate ≤ exact elapsed cycles`, property-tested across the whole
//! suite — which is exactly the property result-preserving pruning
//! needs.
//!
//! # The slack-aware bound
//!
//! The exact rearrangement (see [`crate::rearrange`]) obeys three
//! invariants:
//!
//! 1. an instance never issues before its base-schedule cycle;
//! 2. a shared resource accepts one *issue* per cycle (pipelining
//!    overlaps execution, not issue);
//! 3. an instance on PE `(r, c)` can only reach its own row bank
//!    (`shr` resources) and its own column bank (`shc` resources).
//!
//! Fix one shared kind on an `R × C` array and let `t₁ < t₂ < …` be
//! the base cycles with demand. For any suffix starting at `tᵢ`:
//!
//! * the **suffix total** `Sᵢ` (all demand at base cycles ≥ `tᵢ`)
//!   issues at most `R·shr + C·shc` operations per cycle, none of it
//!   before `tᵢ` (invariants 1–2), so any legal schedule runs at least
//!   `tᵢ + ⌈Sᵢ / (R·shr + C·shc)⌉` cycles;
//! * the **suffix row maximum** `Mʳᵢ = maxᵣ` (row `r`'s demand at base
//!   cycles ≥ `tᵢ`) issues at most `shr + C·shc` per cycle — its own
//!   row bank plus one slot in every column bank (invariant 3) —
//!   giving `tᵢ + ⌈Mʳᵢ / (shr + C·shc)⌉`;
//! * symmetrically for columns: `tᵢ + ⌈Mᶜᵢ / (shc + R·shr)⌉`.
//!
//! The execution floor is the maximum of these terms over every suffix
//! and every shared group, and never below the base length `T`.
//! Crediting a *suffix's* demand against a *suffix's* capacity is what
//! makes the bound slack-aware: a burst at cycle `t` is only charged
//! the stalls that the idle capacity after `t` cannot absorb, instead
//! of one stall per excess operation.
//!
//! Refill stalls are charged on top via [`refill_stall_estimate`],
//! which is monotone and admissible when fed an execution lower bound.
//! RP latency overhead is **not** added: a pipelined resource overlaps
//! retirement with later issues, so no per-operation latency charge is
//! admissible in general ([`ContextProfile::rp_overhead`] survives as
//! the paper-faithful diagnostic, as does the greedy per-cycle excess
//! count [`ContextProfile::rs_stalls`]).
//!
//! # Estimation cost
//!
//! The demand a kernel places on a shared kind depends only on the
//! context, never on the candidate plan, so it is profiled once: the
//! word-packed [`CycleDemand`] is reduced — branch-free popcounts per
//! row ([`rsp_mapper::CycleView::row_count`]) — into per-suffix tables
//! `(tᵢ, Sᵢ, Mʳᵢ, Mᶜᵢ)`. Every candidate then evaluates the floor in
//! O(non-empty cycles) with three divisions per cycle: no per-candidate
//! allocation, no dense `cycles × rows × cols` histogram. Two bound
//! strengths are offered ([`BoundKind`]): the aggregate form keeps only
//! the suffix-total term; the default per-row residual form keeps all
//! three and equals the full estimate's execution floor bit for bit,
//! which is what lets the exploration engine reuse a surviving
//! candidate's pruning bound as its estimate for free.

use rsp_arch::{FuKind, RspArchitecture, SharingPlan};
use rsp_kernel::Kernel;
use rsp_mapper::{ConfigContext, CycleDemand};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Estimated performance of one kernel on one candidate architecture.
///
/// `total_cycles` is an admissible lower bound on the exact rearranged
/// schedule's elapsed cycles (execution + refill).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallEstimate {
    /// Estimated RS stalls (resource shortage): the slack-aware
    /// execution floor minus the base schedule length.
    pub rs_stalls: u32,
    /// Estimated RP overhead. Always 0: pipelined issue overlaps, so no
    /// admissible per-operation latency charge exists (the paper-style
    /// diagnostic lives in [`ContextProfile::rp_overhead`]).
    pub rp_overhead: u32,
    /// Estimated configuration-cache refill stalls
    /// ([`refill_stall_estimate`] over the estimated execution cycles;
    /// 0 when the estimate fits the cache).
    pub refill_stalls: u32,
    /// Estimated total elapsed cycles (base + RS + refill).
    pub total_cycles: u32,
}

/// The refill-stall charge for a schedule of `exec_cycles` execution
/// cycles on a cache of `cache_depth` contexts:
/// `max(0, exec − cache_depth)`.
///
/// The exact cost of a split schedule is `exec − seg0_depth` (every
/// segment after the first reloads at one stall cycle per context word;
/// segment 0's load is the initial configuration load, which is free),
/// and `seg0_depth ≤ cache_depth` always, so this formula is the greedy
/// ideal `seg0_depth = cache_depth` — a lower bound on the exact refill
/// stalls, and monotone in `exec_cycles`. Fed a lower bound on the
/// execution cycles it therefore stays an admissible lower bound on the
/// exact refill, which is what lets both the estimate and the
/// exploration engine's pruning floor include refill without ever
/// cutting a candidate the reference keeps.
pub fn refill_stall_estimate(exec_cycles: u32, cache_depth: u32) -> u32 {
    exec_cycles.saturating_sub(cache_depth)
}

/// Which admissible lower bound on the RS stalls the exploration engine
/// computes per candidate (see
/// [`ContextProfile::rs_stalls_lower_bound`]).
///
/// Both are admissible against the exact rearranged schedule;
/// [`BoundKind::PerRowResidual`] is tighter (term-wise at least as
/// large), equals [`ContextProfile::estimate`]'s execution floor
/// exactly, and is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BoundKind {
    /// Only the suffix-total term: per demand suffix,
    /// `tᵢ + ⌈Sᵢ / (R·shr + C·shc)⌉`. Loose when demand concentrates
    /// on few rows/columns — aggregate capacity credits banks the
    /// concentrated demand cannot reach.
    Aggregate,
    /// All three suffix terms (total, per-row maximum over
    /// `shr + C·shc`, per-column maximum over `shc + R·shr`): row- and
    /// column-local pile-ups are no longer hidden by idle capacity
    /// elsewhere. Term-wise ≥ [`BoundKind::Aggregate`] and still
    /// admissible.
    #[default]
    PerRowResidual,
}

/// Which admissible lower bound on a candidate's *clock period* the
/// exploration engine consults **before** paying for full delay
/// synthesis — the clock-side sibling of [`BoundKind`] (which bounds the
/// cycle count). Multiplying the cycle lower bound by an admissible
/// clock floor yields an execution-time floor; when that floor already
/// violates `max_slowdown`, the candidate is cut without ever touching
/// the `ModelCache` delay path. Both settings are result-preserving: a
/// candidate the floor cuts has `est_et ≥ lb_et ≥ lb_floor_et >
/// bound` term-wise under IEEE-754 rounding, so the reference rejects it
/// too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ClockBound {
    /// Always synthesize the clock before any pruning decision.
    Off,
    /// Lower-bound the clock from the plan's stage structure alone
    /// (`rsp_synth::DelayModel::clock_floor_ns`, served through the
    /// `ModelCache::clock_floor` fast path): each pipeline stage costs at
    /// least `fu/stages + register + switch + interconnect`, each
    /// combinational shared resource at least `mux + switch + fu +
    /// interconnect`, and synthesis refinements only add non-negative
    /// terms on top.
    #[default]
    StageFloor,
}

/// One demand suffix of one shared kind: everything the slack-aware
/// floor needs about the base cycles `≥ cycle`.
#[derive(Debug, Clone, Copy)]
struct SlackCycle {
    /// First base cycle of the suffix (a cycle with demand).
    cycle: u32,
    /// Total demand at base cycles `≥ cycle`.
    suffix_total: u32,
    /// Largest single-row demand at base cycles `≥ cycle`.
    suffix_row_max: u32,
    /// Largest single-column demand at base cycles `≥ cycle`.
    suffix_col_max: u32,
}

/// Suffix tables of one shared kind, one entry per non-empty base
/// cycle, ascending. Built once per `(context, kind)`; evaluating a
/// candidate's floor is then a single pass with three divisions per
/// entry — see [`SlackProfile::exec_floor`].
#[derive(Debug, Clone, Default)]
struct SlackProfile {
    rows: u32,
    cols: u32,
    cycles: Vec<SlackCycle>,
}

impl SlackProfile {
    fn build(demand: &CycleDemand) -> Self {
        let (rows, cols) = (demand.rows(), demand.cols());
        let mut row_suffix = vec![0u32; rows];
        let mut col_suffix = vec![0u32; cols];
        let mut total = 0u32;
        let views: Vec<_> = demand.cycles().collect();
        let mut cycles: Vec<SlackCycle> = Vec::with_capacity(views.len());
        for view in views.iter().rev() {
            for (r, suffix) in row_suffix.iter_mut().enumerate() {
                *suffix += view.row_count(r);
            }
            view.for_each_cell(|_, c, n| col_suffix[c as usize] += n);
            total += view.total();
            cycles.push(SlackCycle {
                cycle: view.cycle(),
                suffix_total: total,
                suffix_row_max: row_suffix.iter().copied().max().unwrap_or(0),
                suffix_col_max: col_suffix.iter().copied().max().unwrap_or(0),
            });
        }
        cycles.reverse();
        SlackProfile {
            rows: rows as u32,
            cols: cols as u32,
            cycles,
        }
    }

    /// The slack-aware execution floor this kind's demand imposes on a
    /// candidate with `shr` resources per row bank and `shc` per column
    /// bank: the maximum over suffixes of `tᵢ + ⌈demand / capacity⌉`
    /// for the terms `bound` selects. 0 when the kind has no demand.
    fn exec_floor(&self, shr: u32, shc: u32, bound: BoundKind) -> u32 {
        debug_assert!(shr + shc > 0, "a shared group provides resources");
        let cap_total = self.rows * shr + self.cols * shc;
        let div_row = shr + self.cols * shc;
        let div_col = shc + self.rows * shr;
        let mut floor = 0u32;
        for s in &self.cycles {
            let mut need = s.suffix_total.div_ceil(cap_total);
            if bound == BoundKind::PerRowResidual {
                need = need
                    .max(s.suffix_row_max.div_ceil(div_row))
                    .max(s.suffix_col_max.div_ceil(div_col));
            }
            floor = floor.max(s.cycle + need);
        }
        floor
    }
}

/// Everything the estimator needs about one `(kernel, context)` pair,
/// computed once and reused across all candidate architectures.
#[derive(Debug, Clone)]
pub struct ContextProfile {
    /// Packed demand per profiled shared kind, in `kinds` order, with
    /// the slack-aware suffix tables.
    kinds: Vec<(FuKind, CycleDemand, SlackProfile)>,
    /// Base-schedule length.
    total_cycles: u32,
    /// Sequential body repetitions the schedule serializes (see
    /// [`repetitions`]).
    repetitions: u32,
    /// Multiplications on the body's critical dependence chain.
    body_chain_mults: u32,
    /// Multiplications on the tail's critical dependence chain.
    tail_chain_mults: u32,
    /// Operations in the body graph (generic non-multiplier fallback).
    body_len: u32,
}

impl ContextProfile {
    /// Profiles `ctx` for the shared-resource `kinds` an exploration will
    /// offer.
    pub fn new(ctx: &ConfigContext, kernel: &Kernel, kinds: &[FuKind]) -> Self {
        let mut profiled: Vec<(FuKind, CycleDemand, SlackProfile)> =
            Vec::with_capacity(kinds.len());
        for &kind in kinds {
            if profiled.iter().any(|(k, ..)| *k == kind) {
                continue;
            }
            let demand = ctx.cycle_demand(|op| op.fu() == Some(kind));
            let slack = SlackProfile::build(&demand);
            profiled.push((kind, demand, slack));
        }
        ContextProfile {
            kinds: profiled,
            total_cycles: ctx.total_cycles(),
            repetitions: repetitions(ctx, kernel),
            body_chain_mults: kernel.body().critical_path_mults() as u32,
            tail_chain_mults: kernel.tail().map_or(0, |t| t.critical_path_mults() as u32),
            body_len: kernel.body().len() as u32,
        }
    }

    /// The profiled demand for `kind`, if it was requested at build time.
    pub fn demand(&self, kind: FuKind) -> Option<&CycleDemand> {
        self.kinds
            .iter()
            .find(|(k, ..)| *k == kind)
            .map(|(_, d, _)| d)
    }

    fn slack_profile(&self, kind: FuKind) -> Option<&SlackProfile> {
        self.kinds
            .iter()
            .find(|(k, ..)| *k == kind)
            .map(|(.., s)| s)
    }

    /// Base-schedule cycles of the profiled context.
    pub fn total_cycles(&self) -> u32 {
        self.total_cycles
    }

    /// The slack-aware execution-cycle floor for a candidate plan: the
    /// base length or the largest per-group suffix floor, whichever is
    /// greater.
    fn exec_cycles_floor(&self, plan: &SharingPlan, bound: BoundKind) -> u32 {
        let mut exec = self.total_cycles;
        for g in plan.groups() {
            let slack = self
                .slack_profile(g.kind())
                .expect("shared kind was profiled for this exploration");
            exec = exec.max(slack.exec_floor(g.per_row() as u32, g.per_col() as u32, bound));
        }
        exec
    }

    /// Admissible estimate for a candidate plan, using only profiled
    /// data: the slack-aware execution floor under
    /// [`BoundKind::PerRowResidual`], plus the greedy-ideal refill
    /// charge for the part beyond the `cache_depth`-deep per-PE
    /// configuration cache ([`refill_stall_estimate`]). Never exceeds
    /// the exact rearranged schedule's elapsed cycles.
    ///
    /// # Panics
    ///
    /// Panics if the plan shares a kind that was not profiled.
    pub fn estimate(&self, plan: &SharingPlan, cache_depth: u32) -> StallEstimate {
        let exec = self.exec_cycles_floor(plan, BoundKind::PerRowResidual);
        let refill = refill_stall_estimate(exec, cache_depth);
        StallEstimate {
            rs_stalls: exec - self.total_cycles,
            rp_overhead: 0,
            refill_stalls: refill,
            total_cycles: exec + refill,
        }
    }

    /// The paper's §4 RS stall count (greedy bank absorption over the
    /// packed demand, one stall per excess operation) — kept as the
    /// pessimistic upper-bound diagnostic the slack-aware bound is
    /// measured against. Every admissible bound this module computes is
    /// `≤ total_cycles + rs_stalls(plan)`: deferring each excess
    /// operation to a private stall cycle is itself a legal issue
    /// assignment, so its length upper-bounds any lower bound on legal
    /// schedules.
    pub fn rs_stalls(&self, plan: &SharingPlan) -> u32 {
        plan.groups()
            .iter()
            .map(|g| {
                let demand = self
                    .demand(g.kind())
                    .expect("shared kind was profiled for this exploration");
                rs_excess(demand, g.per_row() as u32, g.per_col() as u32)
            })
            .sum()
    }

    /// Admissible lower bound on the RS stalls of the exact rearranged
    /// schedule: the slack-aware execution floor (see the module docs)
    /// minus the base length. With [`BoundKind::PerRowResidual`] this
    /// equals [`ContextProfile::estimate`]'s `rs_stalls` exactly — the
    /// bound *is* the estimate — so an engine that bounds first and
    /// estimates survivors pays for the suffix pass once.
    pub fn rs_stalls_lower_bound(&self, plan: &SharingPlan, bound: BoundKind) -> u32 {
        self.exec_cycles_floor(plan, bound) - self.total_cycles
    }

    /// The paper's §4 RP overhead diagnostic: `stages − 1` per pipelined
    /// operation on the critical dependence chain, overlap removed. Not
    /// part of [`ContextProfile::estimate`] — a pipelined resource
    /// overlaps retirement with later issues, so the charge is not
    /// admissible against the exact schedule — but still the number the
    /// paper's Table 4/5 discussion quotes.
    pub fn rp_overhead(&self, plan: &SharingPlan) -> u32 {
        let mut overhead = 0u32;
        let shared = plan
            .groups()
            .iter()
            .filter(|g| g.is_pipelined())
            .map(|g| (g.kind(), g.stages()));
        let local = plan.local_pipelines().filter(|(_, s)| *s > 1);
        for (kind, stages) in shared.chain(local) {
            if kind != FuKind::Multiplier {
                // Generic fallback: charge the body's full count.
                overhead += (stages as u32 - 1) * self.body_len;
                continue;
            }
            overhead += (stages as u32 - 1)
                * (self.body_chain_mults * self.repetitions + self.tail_chain_mults);
        }
        overhead
    }
}

/// Sequential body repetitions the schedule serializes on one resource:
/// the per-element steps under lockstep mapping, the per-row rounds under
/// dataflow mapping (each round waits on the previous round's stretched
/// modulo schedule).
fn repetitions(ctx: &ConfigContext, kernel: &Kernel) -> u32 {
    match ctx.style() {
        rsp_kernel::MappingStyle::Lockstep => kernel.steps() as u32,
        rsp_kernel::MappingStyle::Dataflow => {
            kernel.elements().div_ceil(ctx.geometry().rows()) as u32
        }
    }
}

// Per-thread reusable bank budgets: sized once per geometry, cleared
// sparsely (only touched rows/columns) after every cycle, so steady-state
// estimation performs zero allocation regardless of candidate count.
thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

#[derive(Default)]
struct Scratch {
    row_used: Vec<u32>,
    col_used: Vec<u32>,
}

impl Scratch {
    fn ensure(&mut self, rows: usize, cols: usize) {
        if self.row_used.len() < rows {
            self.row_used.resize(rows, 0);
        }
        if self.col_used.len() < cols {
            self.col_used.resize(cols, 0);
        }
    }
}

/// Greedy absorption over one kind's packed demand: a cell's operations
/// first use their row bank (`shr` per row, shared along the row), then
/// their own column bank (`shc` per column). Whatever remains is excess
/// and charged one stall cycle per operation — pessimistic against the
/// exact rearrangement, which can also slip operations into later
/// bubbles. Cells are visited in row-major order per cycle, matching the
/// dense-histogram sweep of the original estimator bit for bit.
fn rs_excess(demand: &CycleDemand, shr: u32, shc: u32) -> u32 {
    if demand.is_empty() {
        return 0;
    }
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        scratch.ensure(demand.rows(), demand.cols());
        let mut excess_total = 0u32;
        for view in demand.cycles() {
            let s = &mut *scratch;
            view.for_each_cell(|row, col, count| {
                let (r, c) = (row as usize, col as usize);
                let mut d = count;
                let take = d.min(shr - s.row_used[r].min(shr));
                s.row_used[r] += take;
                d -= take;
                let take = d.min(shc - s.col_used[c].min(shc));
                s.col_used[c] += take;
                d -= take;
                excess_total += d;
            });
            view.for_each_cell(|row, col, _| {
                s.row_used[row as usize] = 0;
                s.col_used[col as usize] = 0;
            });
        }
        excess_total
    })
}

/// Estimates the rearranged cycle count of `ctx` on `arch` without
/// rescheduling.
///
/// One-shot convenience over [`ContextProfile`]: profiles the context for
/// the plan's shared kinds, then estimates. Exploration engines should
/// build the profile once instead.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::{estimate_stalls, rearrange};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let kernel = suite::state();
/// let ctx = map(presets::base_8x8().base(), &kernel, &MapOptions::default())?;
/// let est = estimate_stalls(&ctx, &kernel, &presets::rs1());
/// let exact = rearrange(&ctx, &presets::rs1(), &Default::default())?;
/// // The slack-aware estimate is admissible: it never exceeds the
/// // exact schedule, refill stalls included.
/// assert!(est.total_cycles <= exact.elapsed_cycles());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_stalls(
    ctx: &ConfigContext,
    kernel: &Kernel,
    arch: &RspArchitecture,
) -> StallEstimate {
    let kinds: Vec<FuKind> = arch.plan().groups().iter().map(|g| g.kind()).collect();
    ContextProfile::new(ctx, kernel, &kinds)
        .estimate(arch.plan(), arch.base().config_cache_depth() as u32)
}

/// Dense-histogram twin of [`estimate_stalls`], kept as the independent
/// oracle behind [`crate::explore_reference`]: rebuilds a
/// `cycles × rows × cols` demand histogram per shared group per call
/// and computes the slack-aware floor by a dense backward sweep over
/// *every* schedule cycle. Bit-equal to [`estimate_stalls`]
/// (property-tested), but shares no code with the packed profile path,
/// so a regression in either implementation shows up as a divergence.
pub(crate) fn estimate_stalls_dense(
    ctx: &ConfigContext,
    kernel: &Kernel,
    arch: &RspArchitecture,
) -> StallEstimate {
    let _ = kernel; // demand depends only on the context
    let exec = dense_exec_floor(ctx, arch);
    let refill = refill_stall_estimate(exec, arch.base().config_cache_depth() as u32);
    StallEstimate {
        rs_stalls: exec - ctx.total_cycles(),
        rp_overhead: 0,
        refill_stalls: refill,
        total_cycles: exec + refill,
    }
}

/// The slack-aware execution floor computed the expensive way: dense
/// per-`(cycle, row, col)` histograms and a full backward suffix sweep,
/// no packing, no precomputed tables.
fn dense_exec_floor(ctx: &ConfigContext, arch: &RspArchitecture) -> u32 {
    let plan = arch.plan();
    let geom = ctx.geometry();
    let (rows, cols) = (geom.rows(), geom.cols());
    let t = ctx.total_cycles() as usize;
    let mut exec = ctx.total_cycles();

    for g in plan.groups() {
        let kind = g.kind();
        let mut demand = vec![0u32; t * rows * cols];
        for (inst, &cyc) in ctx.instances().iter().zip(ctx.cycles()) {
            if inst.op.fu() == Some(kind) {
                demand[(cyc as usize * rows + inst.pe.row) * cols + inst.pe.col] += 1;
            }
        }
        let (shr, shc) = (g.per_row() as u32, g.per_col() as u32);
        let cap_total = rows as u32 * shr + cols as u32 * shc;
        let div_row = shr + cols as u32 * shc;
        let div_col = shc + rows as u32 * shr;
        let mut row_suffix = vec![0u32; rows];
        let mut col_suffix = vec![0u32; cols];
        let mut suffix_total = 0u32;
        let mut floor = 0u32;
        for cyc in (0..t).rev() {
            let mut cycle_total = 0u32;
            for r in 0..rows {
                for c in 0..cols {
                    let d = demand[(cyc * rows + r) * cols + c];
                    row_suffix[r] += d;
                    col_suffix[c] += d;
                    cycle_total += d;
                }
            }
            suffix_total += cycle_total;
            if cycle_total == 0 {
                continue;
            }
            let need = suffix_total
                .div_ceil(cap_total)
                .max(
                    row_suffix
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(0)
                        .div_ceil(div_row),
                )
                .max(
                    col_suffix
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(0)
                        .div_ceil(div_col),
                );
            floor = floor.max(cyc as u32 + need);
        }
        exec = exec.max(floor);
    }
    exec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rearrange::rearrange;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn ctx_for(kernel: &rsp_kernel::Kernel) -> ConfigContext {
        map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap()
    }

    fn estimate_rp(ctx: &ConfigContext, kernel: &Kernel, arch: &RspArchitecture) -> u32 {
        ContextProfile::new(ctx, kernel, &[]).rp_overhead(arch.plan())
    }

    #[test]
    fn estimate_lower_bounds_exact_for_suite() {
        // Admissibility: the slack-aware estimate never exceeds the
        // exact rearranged schedule, on any kernel × architecture.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                let est = estimate_stalls(&ctx, &k, &arch);
                let exact = rearrange(&ctx, &arch, &Default::default()).unwrap();
                assert!(
                    est.total_cycles <= exact.elapsed_cycles(),
                    "{} on {}: est {} > exact {}",
                    k.name(),
                    arch.name(),
                    est.total_cycles,
                    exact.elapsed_cycles()
                );
            }
        }
    }

    #[test]
    fn base_estimate_is_exact() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::base_8x8());
            assert_eq!(est.total_cycles, ctx.total_cycles(), "{}", k.name());
            assert_eq!(est.rs_stalls, 0);
            assert_eq!(est.rp_overhead, 0);
        }
    }

    #[test]
    fn rs_estimate_zero_for_single_mult_lockstep_kernels() {
        for k in [
            suite::iccg(),
            suite::tri_diagonal(),
            suite::inner_product(),
            suite::mvm(),
        ] {
            let ctx = ctx_for(&k);
            let est = estimate_stalls(&ctx, &k, &presets::rs1());
            assert_eq!(est.rs_stalls, 0, "{}", k.name());
        }
    }

    #[test]
    fn rs_estimate_positive_when_demand_exceeds_capacity() {
        // Capacity-oversubscribed schedules must keep a positive floor:
        // matmul on the 8×8 issues far more multiplications than RS#1's
        // eight row banks can retire within the base schedule. (The
        // small dense suite kernels stall for *dependence* reasons the
        // exact scheduler sees but no capacity bound can — admissibility
        // forces those to 0, which the suite-wide lower-bound test
        // covers.)
        let k = suite::matmul(8);
        let ctx = ctx_for(&k);
        let est = estimate_stalls(&ctx, &k, &presets::rs1());
        let exact = rearrange(&ctx, &presets::rs1(), &Default::default()).unwrap();
        assert!(est.rs_stalls > 0);
        assert!(est.total_cycles <= exact.elapsed_cycles());

        // And a schedule whose demand exactly matches capacity keeps an
        // exact floor: matmul(4) issues eight multiplications in each
        // of its demand cycles — precisely RS#1's eight row banks.
        let k = suite::matmul(4);
        let ctx = ctx_for(&k);
        let est = estimate_stalls(&ctx, &k, &presets::rs1());
        let exact = rearrange(&ctx, &presets::rs1(), &Default::default()).unwrap();
        assert_eq!(est.total_cycles, exact.elapsed_cycles());
    }

    #[test]
    fn rp_estimate_scales_with_stages() {
        let k = suite::matmul(8);
        let ctx = ctx_for(&k);
        let two = estimate_rp(&ctx, &k, &presets::rsp1());
        let four = estimate_rp(&ctx, &k, &presets::shared_multiplier("deep", 8, 8, 1, 0, 4));
        assert!(four > two);
        assert_eq!(four, 3 * two);
    }

    #[test]
    fn sad_estimates_zero_everywhere() {
        let k = suite::sad();
        let ctx = ctx_for(&k);
        for arch in presets::table_architectures() {
            let est = estimate_stalls(&ctx, &k, &arch);
            assert_eq!(est.total_cycles, ctx.total_cycles(), "{}", arch.name());
        }
    }

    #[test]
    fn estimate_never_exceeds_greedy_paper_estimate() {
        // The paper's greedy charge describes a legal (if wasteful)
        // issue assignment, so every admissible bound must stay at or
        // below base + greedy, for either bound kind.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let profile = ContextProfile::new(&ctx, &k, &[rsp_arch::FuKind::Multiplier]);
            for arch in presets::table_architectures() {
                let greedy = profile.rs_stalls(arch.plan());
                for bound in [BoundKind::Aggregate, BoundKind::PerRowResidual] {
                    let lb = profile.rs_stalls_lower_bound(arch.plan(), bound);
                    assert!(
                        lb <= greedy,
                        "{} on {} ({:?}): lb {} > greedy {}",
                        k.name(),
                        arch.name(),
                        bound,
                        lb,
                        greedy
                    );
                }
            }
        }
    }

    #[test]
    fn per_row_residual_bound_dominates_aggregate_bound() {
        // The per-row residual bound is term-wise at least the
        // aggregate bound — for every kernel, every sharable kind, and
        // a grid of bank shapes — strictly beats it somewhere, and
        // equals the estimate's execution floor exactly (the identity
        // the engine's bound-reuse fast path relies on).
        let mut strictly_tighter_somewhere = false;
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for kind in [FuKind::Multiplier, FuKind::Alu, FuKind::Shifter] {
                let profile = ContextProfile::new(&ctx, &k, &[kind]);
                for shr in 1..=4usize {
                    for shc in 0..=4usize {
                        let Ok(g) = rsp_arch::SharedGroup::new(kind, shr, shc, 1) else {
                            continue;
                        };
                        let plan = rsp_arch::SharingPlan::none().with_group(g).unwrap();
                        let agg = profile.rs_stalls_lower_bound(&plan, BoundKind::Aggregate);
                        let per_row =
                            profile.rs_stalls_lower_bound(&plan, BoundKind::PerRowResidual);
                        let est = profile.estimate(&plan, u32::MAX);
                        assert!(
                            per_row >= agg,
                            "{} {:?} shr={} shc={}: agg={} perrow={}",
                            k.name(),
                            kind,
                            shr,
                            shc,
                            agg,
                            per_row
                        );
                        assert_eq!(per_row, est.rs_stalls, "bound == estimate identity");
                        strictly_tighter_somewhere |= per_row > agg;
                    }
                }
            }
        }
        assert!(
            strictly_tighter_somewhere,
            "per-row residual bound never beat the aggregate bound"
        );
    }

    #[test]
    fn refill_estimate_is_admissible_against_exact_refill() {
        // Against small-cache variants of the table architectures, the
        // estimate's refill charge lower-bounds the exact split plan's
        // stalls — the admissibility every refill-aware cut relies on —
        // and the charge evaluated at the *exact* execution length
        // still lower-bounds the exact refill (seg0 ≤ cache_depth).
        use rsp_arch::{BaseArchitecture, RspArchitecture};
        let mut saw_refill = false;
        for k in [suite::fdct(), suite::state(), suite::sad()] {
            let ctx = ctx_for(&k);
            for big in [presets::rs1(), presets::rs2()] {
                let probe = rearrange(&ctx, &big, &Default::default()).unwrap();
                let depth = (probe.total_cycles / 2 + 1) as usize;
                let b = big.base();
                let small = BaseArchitecture::new(b.geometry(), b.pe().clone(), b.buses(), depth);
                let arch = RspArchitecture::new(big.name().to_string(), small, big.plan().clone())
                    .unwrap();
                let exact = rearrange(&ctx, &arch, &Default::default()).unwrap();
                let est = estimate_stalls(&ctx, &k, &arch);
                saw_refill |= exact.refill_stalls() > 0;
                assert!(
                    est.refill_stalls <= exact.refill_stalls(),
                    "{} on {}: est refill {} > exact {}",
                    k.name(),
                    arch.name(),
                    est.refill_stalls,
                    exact.refill_stalls()
                );
                assert!(est.total_cycles <= exact.elapsed_cycles());
                let lb = refill_stall_estimate(exact.total_cycles, depth as u32);
                assert!(
                    lb <= exact.refill_stalls(),
                    "{} on {}: refill lb {} > exact {}",
                    k.name(),
                    arch.name(),
                    lb,
                    exact.refill_stalls()
                );
            }
        }
        assert!(saw_refill, "no combination exercised an actual refill");
    }

    #[test]
    fn sparse_estimator_matches_dense_oracle() {
        // The packed profile path and the dense-histogram twin share no
        // code; they must agree exactly on every kernel × preset.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                assert_eq!(
                    estimate_stalls(&ctx, &k, &arch),
                    estimate_stalls_dense(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
            // Deep pipelines and row+column banks too.
            for (shr, shc, st) in [(1, 1, 4), (3, 0, 8), (2, 2, 3)] {
                let arch = presets::shared_multiplier("deep", 8, 8, shr, shc, st);
                assert_eq!(
                    estimate_stalls(&ctx, &k, &arch),
                    estimate_stalls_dense(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn profile_estimate_matches_one_shot_estimate() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let profile = ContextProfile::new(&ctx, &k, &[FuKind::Multiplier]);
            for arch in presets::table_architectures() {
                assert_eq!(
                    profile.estimate(arch.plan(), arch.base().config_cache_depth() as u32),
                    estimate_stalls(&ctx, &k, &arch),
                    "{} on {}",
                    k.name(),
                    arch.name()
                );
            }
        }
    }
}
