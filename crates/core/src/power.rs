//! Energy evaluation of rearranged contexts (extension of the paper's
//! §6 future work; the model itself lives in [`rsp_synth::PowerModel`]).

use crate::rearrange::Rearranged;
use rsp_arch::RspArchitecture;
use rsp_mapper::ConfigContext;
use rsp_synth::{ActivityProfile, PowerModel, PowerReport};

/// Builds the activity profile of one kernel execution: per-unit
/// operation counts from the instance graph, shared transfers from the
/// rearrangement's bindings, cycles from the rearranged schedule.
pub fn activity_of(ctx: &ConfigContext, rearranged: &Rearranged) -> ActivityProfile {
    let mut profile = ActivityProfile::default();
    for inst in ctx.instances() {
        if let Some(fu) = inst.op.fu() {
            *profile.ops_per_fu.entry(fu).or_insert(0) += 1;
        }
    }
    profile.shared_transfers = rearranged.bindings.iter().filter(|b| b.is_some()).count() as u64;
    profile.cycles = u64::from(rearranged.total_cycles);
    profile
}

/// Rearranges-and-reports in one call: the energy of `ctx` on `arch`.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::{evaluate_energy, rearrange};
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let ctx = map(presets::base_8x8().base(), &suite::mvm(), &MapOptions::default())?;
/// let base = rearrange(&ctx, &presets::base_8x8(), &Default::default())?;
/// let rsp2 = rearrange(&ctx, &presets::rsp2(), &Default::default())?;
///
/// let e_base = evaluate_energy(&ctx, &presets::base_8x8(), &base);
/// let e_rsp2 = evaluate_energy(&ctx, &presets::rsp2(), &rsp2);
/// // The domain-optimized design also wins on energy (§6 conjecture).
/// assert!(e_rsp2.total_pj() < e_base.total_pj());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate_energy(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    rearranged: &Rearranged,
) -> PowerReport {
    PowerModel::new().report(arch, &activity_of(ctx, rearranged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rearrange::rearrange;
    use rsp_arch::{presets, FuKind};
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn ctx_for(kernel: &rsp_kernel::Kernel) -> ConfigContext {
        map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap()
    }

    #[test]
    fn activity_counts_match_kernel_shape() {
        let k = suite::mvm();
        let ctx = ctx_for(&k);
        let r = rearrange(&ctx, &presets::rsp2(), &Default::default()).unwrap();
        let a = activity_of(&ctx, &r);
        assert_eq!(a.ops_per_fu[&FuKind::Multiplier] as usize, k.total_mults());
        // Every multiplication transfers through a switch on RSP#2.
        assert_eq!(a.shared_transfers as usize, k.total_mults());
        assert_eq!(a.cycles, u64::from(r.total_cycles));
    }

    #[test]
    fn rsp2_saves_energy_for_every_kernel() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let base_arch = presets::base_8x8();
            let rsp2 = presets::rsp2();
            let rb = rearrange(&ctx, &base_arch, &Default::default()).unwrap();
            let rr = rearrange(&ctx, &rsp2, &Default::default()).unwrap();
            let eb = evaluate_energy(&ctx, &base_arch, &rb);
            let er = evaluate_energy(&ctx, &rsp2, &rr);
            assert!(
                er.total_pj() < eb.total_pj(),
                "{}: RSP#2 {:.0} pJ !< base {:.0} pJ",
                k.name(),
                er.total_pj(),
                eb.total_pj()
            );
        }
    }

    #[test]
    fn sad_has_no_transfers_anywhere() {
        let k = suite::sad();
        let ctx = ctx_for(&k);
        for arch in presets::table_architectures() {
            let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
            let a = activity_of(&ctx, &r);
            assert_eq!(a.shared_transfers, 0, "{}", arch.name());
        }
    }
}
