//! Exact performance evaluation: the rows of Tables 4 and 5.

use crate::error::RspError;
use crate::rearrange::{rearrange, RearrangeOptions, Rearranged};
use rsp_arch::RspArchitecture;
use rsp_mapper::ConfigContext;
use rsp_synth::DelayModel;
use serde::{Deserialize, Serialize};

/// Measured performance of one kernel on one architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPerf {
    /// Architecture name.
    pub arch: String,
    /// Kernel name.
    pub kernel: String,
    /// Elapsed cycles after rearrangement, configuration-cache refill
    /// stalls included (equal to the execution cycles for every kernel
    /// that fits the cache — all of Tables 4/5).
    pub cycles: u32,
    /// Array clock period.
    pub clock_ns: f64,
    /// Execution time `cycles × clock`.
    pub et_ns: f64,
    /// Execution-time reduction versus the base architecture, percent
    /// (the `DR(%)` column; negative = slower).
    pub dr_pct: f64,
    /// Stalls from shared-resource shortage (the `stall` column).
    pub rs_stalls: u32,
    /// Cycles added by pipelined-operation latency.
    pub rp_overhead: u32,
    /// Cycles stalled reloading the configuration caches (0 when the
    /// schedule fits).
    pub refill_stalls: u32,
    /// Cache refills performed (schedule segments beyond the first).
    pub refill_segments: u32,
}

impl KernelPerf {
    /// Whether the architecture supports the kernel without stalls.
    pub fn is_stall_free(&self) -> bool {
        self.rs_stalls == 0
    }
}

/// Evaluates one kernel context on one architecture: rearrange, then
/// convert cycles to time with the architecture's clock.
///
/// # Errors
///
/// Propagates rearrangement failures ([`RspError`]).
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::evaluate_perf;
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
/// use rsp_synth::DelayModel;
///
/// let ctx = map(presets::base_8x8().base(), &suite::sad(), &MapOptions::default())?;
/// let perf = evaluate_perf(&ctx, &presets::rsp1(), &DelayModel::new(), &Default::default())?;
/// // SAD gains the full clock speedup: ~35 % (the paper's 35.7 % headline).
/// assert!(perf.dr_pct > 30.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate_perf(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    delay: &DelayModel,
    opts: &RearrangeOptions,
) -> Result<KernelPerf, RspError> {
    let r = rearrange(ctx, arch, opts)?;
    Ok(perf_from_rearranged(ctx, arch, delay, &r))
}

/// Converts an existing rearrangement into a performance row (avoids
/// re-rearranging when the caller needs both). Synthesizes the delay
/// report internally; callers evaluating many kernels on one
/// architecture should synthesize once and use
/// [`perf_from_rearranged_with`].
pub fn perf_from_rearranged(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    delay: &DelayModel,
    r: &Rearranged,
) -> KernelPerf {
    perf_from_rearranged_with(ctx, arch, &delay.report(arch), r)
}

/// [`perf_from_rearranged`] with a pre-synthesized delay report — the
/// per-kernel fast path for callers (the flow's exact RSP-mapping
/// stage) that evaluate a whole kernel suite on one architecture: the
/// clock is synthesized once per architecture, not once per kernel.
pub fn perf_from_rearranged_with(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    d: &rsp_synth::DelayReport,
    r: &Rearranged,
) -> KernelPerf {
    let elapsed = r.elapsed_cycles();
    let et = elapsed as f64 * d.clock_ns;
    let base_et = r.base_cycles as f64 * d.base_clock_ns;
    KernelPerf {
        arch: arch.name().to_string(),
        kernel: ctx.kernel_name().to_string(),
        cycles: elapsed,
        clock_ns: d.clock_ns,
        et_ns: et,
        dr_pct: 100.0 * (1.0 - et / base_et),
        rs_stalls: r.rs_stalls,
        rp_overhead: r.rp_overhead,
        refill_stalls: r.refill_stalls(),
        refill_segments: r.refill_count() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, MapOptions};

    fn ctx_for(kernel: &rsp_kernel::Kernel) -> ConfigContext {
        map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap()
    }

    #[test]
    fn rs_always_slower_than_base() {
        // RS keeps the cycle count (at best) but stretches the clock:
        // every DR in the paper's RS rows is negative.
        let delay = DelayModel::new();
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for c in 1..=4 {
                let p = evaluate_perf(&ctx, &presets::rs(c), &delay, &Default::default()).unwrap();
                assert!(p.dr_pct < 0.0, "{} on RS#{c}: {}", k.name(), p.dr_pct);
            }
        }
    }

    #[test]
    fn sad_gains_headline_speedup_on_rsp1() {
        let delay = DelayModel::new();
        let ctx = ctx_for(&suite::sad());
        let p = evaluate_perf(&ctx, &presets::rsp1(), &delay, &Default::default()).unwrap();
        // Paper: 35.7 %. Our clock model gives ~36.6 % (same cycles, model
        // clock 16.47 vs the paper's 16.72).
        assert!((p.dr_pct - 35.7).abs() < 3.0, "SAD RSP#1 DR = {}", p.dr_pct);
        assert_eq!(p.cycles, ctx.total_cycles());
    }

    #[test]
    fn rsp_beats_rs_for_every_kernel_at_same_config() {
        let delay = DelayModel::new();
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for c in 1..=4 {
                let rs = evaluate_perf(&ctx, &presets::rs(c), &delay, &Default::default()).unwrap();
                let rsp =
                    evaluate_perf(&ctx, &presets::rsp(c), &delay, &Default::default()).unwrap();
                assert!(
                    rsp.et_ns < rs.et_ns,
                    "{} config {c}: RSP {} >= RS {}",
                    k.name(),
                    rsp.et_ns,
                    rs.et_ns
                );
            }
        }
    }

    #[test]
    fn mult_heavy_kernels_gain_less_than_sad() {
        // §5.3: "We cannot have that much speedup for kernels with many
        // multiplications since multiplications take multiple cycles."
        let delay = DelayModel::new();
        let sad = evaluate_perf(
            &ctx_for(&suite::sad()),
            &presets::rsp2(),
            &delay,
            &Default::default(),
        )
        .unwrap();
        for k in [suite::fdct(), suite::state(), suite::hydro()] {
            let p =
                evaluate_perf(&ctx_for(&k), &presets::rsp2(), &delay, &Default::default()).unwrap();
            assert!(
                p.dr_pct < sad.dr_pct,
                "{}: {} !< SAD {}",
                k.name(),
                p.dr_pct,
                sad.dr_pct
            );
        }
    }

    #[test]
    fn base_perf_is_reference() {
        let delay = DelayModel::new();
        let ctx = ctx_for(&suite::mvm());
        let p = evaluate_perf(&ctx, &presets::base_8x8(), &delay, &Default::default()).unwrap();
        assert_eq!(p.dr_pct, 0.0);
        assert_eq!(p.cycles, ctx.total_cycles());
        assert!((p.clock_ns - 26.0).abs() < 1e-9);
    }
}
