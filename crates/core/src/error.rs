//! Error type for the RSP core passes.

use crate::control::TruncationReason;
use std::error::Error;
use std::fmt;

/// Errors raised by rearrangement, exploration, or the flow driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RspError {
    /// The rearrangement scheduler exceeded its safety bound — indicates an
    /// internal inconsistency (unschedulable resource graph).
    RearrangeDiverged {
        /// Cycle bound that was hit.
        bound: u32,
    },
    /// The design space produced no point satisfying the constraints.
    NoFeasibleDesign,
    /// A kernel failed to map onto the base architecture.
    Map(rsp_mapper::MapError),
    /// The application profile is empty.
    EmptyProfile,
    /// The rearranged schedule exceeds the configuration cache *and*
    /// cannot be split: some cache-sized window contains no legal cut
    /// point (an operation is in flight across every boundary). A
    /// schedule that merely exceeds the cache is not an error — it is
    /// split across refills ([`crate::Rearranged::refill`]).
    UnsplittableSchedule {
        /// First cycle of the segment that could not be closed.
        start_cycle: u32,
        /// The cache depth bounding the window.
        cache_depth: u32,
    },
    /// An [`ExploreCheckpoint`](crate::ExploreCheckpoint) cannot resume
    /// under the given inputs or options.
    CheckpointMismatch {
        /// What differed between the checkpoint and this call.
        what: String,
    },
    /// A run budget stopped the sweep before it produced any usable
    /// result (e.g. the flow's deadline passed before a base
    /// architecture was selected). Distinct from
    /// [`NoFeasibleDesign`](Self::NoFeasibleDesign): feasibility was
    /// never established either way.
    Interrupted {
        /// Which budget stopped the run.
        reason: TruncationReason,
    },
    /// A candidate's evaluation panicked and was isolated; reported only
    /// when no other candidate produced a usable result.
    CandidateFaulted {
        /// Name of the faulted candidate architecture.
        name: String,
    },
}

impl fmt::Display for RspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RspError::RearrangeDiverged { bound } => {
                write!(
                    f,
                    "rearrangement exceeded the safety bound of {bound} cycles"
                )
            }
            RspError::NoFeasibleDesign => {
                write!(
                    f,
                    "no design point satisfies the cost/performance constraints"
                )
            }
            RspError::Map(e) => write!(f, "mapping failed: {e}"),
            RspError::EmptyProfile => write!(f, "application profile contains no kernels"),
            RspError::UnsplittableSchedule {
                start_cycle,
                cache_depth,
            } => write!(
                f,
                "oversized schedule has no legal refill cut within {cache_depth} cycles \
                 of cycle {start_cycle}"
            ),
            RspError::CheckpointMismatch { what } => {
                write!(f, "checkpoint cannot resume here: {what}")
            }
            RspError::Interrupted { reason } => {
                write!(f, "run stopped ({reason:?}) before any usable result")
            }
            RspError::CandidateFaulted { name } => {
                write!(
                    f,
                    "candidate `{name}` panicked during evaluation and was isolated"
                )
            }
        }
    }
}

impl Error for RspError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RspError::Map(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rsp_mapper::MapError> for RspError {
    fn from(e: rsp_mapper::MapError) -> Self {
        RspError::Map(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_source() {
        let e = RspError::Map(rsp_mapper::MapError::IiSearchFailed { max_ii: 9 });
        assert!(e.to_string().contains("mapping failed"));
        assert!(e.source().is_some());
        assert!(!RspError::NoFeasibleDesign.to_string().is_empty());
    }
}
