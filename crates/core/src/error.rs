//! Error type for the RSP core passes.

use std::error::Error;
use std::fmt;

/// Errors raised by rearrangement, exploration, or the flow driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RspError {
    /// The rearrangement scheduler exceeded its safety bound — indicates an
    /// internal inconsistency (unschedulable resource graph).
    RearrangeDiverged {
        /// Cycle bound that was hit.
        bound: u32,
    },
    /// The design space produced no point satisfying the constraints.
    NoFeasibleDesign,
    /// A kernel failed to map onto the base architecture.
    Map(rsp_mapper::MapError),
    /// The application profile is empty.
    EmptyProfile,
    /// The rearranged schedule exceeds the configuration cache.
    ConfigCacheExceeded {
        /// Contexts required.
        needed: u32,
        /// Cache capacity.
        available: u32,
    },
}

impl fmt::Display for RspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RspError::RearrangeDiverged { bound } => {
                write!(
                    f,
                    "rearrangement exceeded the safety bound of {bound} cycles"
                )
            }
            RspError::NoFeasibleDesign => {
                write!(
                    f,
                    "no design point satisfies the cost/performance constraints"
                )
            }
            RspError::Map(e) => write!(f, "mapping failed: {e}"),
            RspError::EmptyProfile => write!(f, "application profile contains no kernels"),
            RspError::ConfigCacheExceeded { needed, available } => write!(
                f,
                "rearranged schedule needs {needed} contexts but the cache holds {available}"
            ),
        }
    }
}

impl Error for RspError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RspError::Map(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rsp_mapper::MapError> for RspError {
    fn from(e: rsp_mapper::MapError) -> Self {
        RspError::Map(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_source() {
        let e = RspError::Map(rsp_mapper::MapError::IiSearchFailed { max_ii: 9 });
        assert!(e.to_string().contains("mapping failed"));
        assert!(e.source().is_some());
        assert!(!RspError::NoFeasibleDesign.to_string().is_empty());
    }
}
