//! The Fig. 7 design flow, end to end.
//!
//! ```text
//! applications ──> Profiling ──> critical loops
//!                      │
//!                      v
//!        Base Architecture Exploration ──> base architecture
//!                      │
//!                      v
//!              Pipeline Mapping ──> initial configuration contexts
//!                      │
//!                      v
//!               RSP Exploration ──> RSP parameters (estimation-driven)
//!                      │
//!                      v
//!                 RSP Mapping ──> RSP configuration contexts
//!                                  (+ exact performance, Tables 4/5)
//! ```
//!
//! Profiling is modelled on synthetic application profiles: each
//! application lists its kernels with execution counts; a kernel's weight
//! is `count × operations`, and the flow keeps the hottest kernels until
//! the requested coverage of total weight is reached.

use crate::error::RspError;
use crate::estimate::BoundKind;
use crate::explore::{
    explore_with, Constraints, DesignSpace, Exploration, ExploreOptions, Objective, PruneStrategy,
};
use crate::perf::{perf_from_rearranged, KernelPerf};
use crate::rearrange::{rearrange, RearrangeOptions, Rearranged};
use rayon::prelude::*;
use rsp_arch::{ArrayGeometry, BaseArchitecture, BusSpec, PeDesign, RspArchitecture, SharingPlan};
use rsp_kernel::Kernel;
use rsp_mapper::{map, ConfigContext, MapOptions};
use rsp_synth::{AreaModel, DelayModel};

/// One application of the target domain: named kernels with execution
/// counts (the profiling input).
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name (e.g. `"H.263 encoder"`).
    pub name: String,
    /// Kernels and how often the application executes them.
    pub kernels: Vec<(Kernel, u64)>,
}

impl AppProfile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, kernels: Vec<(Kernel, u64)>) -> Self {
        Self {
            name: name.into(),
            kernels,
        }
    }
}

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Fraction of total profile weight the critical loops must cover
    /// (default 0.95).
    pub coverage: f64,
    /// Candidate array geometries for base-architecture exploration.
    pub geometries: Vec<(usize, usize)>,
    /// Per-PE configuration-cache depth.
    pub config_cache_depth: usize,
    /// RSP parameter space.
    pub space: DesignSpace,
    /// Constraints for RSP exploration.
    pub constraints: Constraints,
    /// Selection objective.
    pub objective: Objective,
    /// Mapper options.
    pub map_options: MapOptions,
    /// Rearrangement options.
    pub rearrange_options: RearrangeOptions,
    /// Worker threads for exploration and RSP mapping (`None` = all
    /// cores, `Some(1)` = serial; results are identical either way).
    pub parallelism: Option<usize>,
    /// Exploration pruning aggressiveness.
    pub prune: PruneStrategy,
    /// Strength of the admissible lower bound exploration pruning uses.
    pub bound: BoundKind,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            coverage: 0.95,
            geometries: vec![(8, 8)],
            config_cache_depth: 256,
            space: DesignSpace::paper(),
            constraints: Constraints::default(),
            objective: Objective::AreaDelayProduct,
            map_options: MapOptions::default(),
            rearrange_options: RearrangeOptions::default(),
            parallelism: None,
            prune: PruneStrategy::default(),
            bound: BoundKind::default(),
        }
    }
}

/// A critical loop selected by profiling.
#[derive(Debug, Clone)]
pub struct CriticalLoop {
    /// The kernel.
    pub kernel: Kernel,
    /// Normalized execution weight (sums to ≤ 1 over selected loops).
    pub weight: f64,
}

/// Everything the flow produces.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Selected critical loops, heaviest first.
    pub critical_loops: Vec<CriticalLoop>,
    /// The chosen base architecture.
    pub base: BaseArchitecture,
    /// Initial configuration contexts, parallel to `critical_loops`.
    pub contexts: Vec<ConfigContext>,
    /// The RSP exploration (estimation-driven).
    pub exploration: Exploration,
    /// The selected RSP architecture.
    pub chosen: RspArchitecture,
    /// Final RSP configuration contexts, parallel to `critical_loops`.
    pub rsp_contexts: Vec<Rearranged>,
    /// Exact performance of each critical loop on the chosen design.
    pub perf: Vec<KernelPerf>,
    /// Synthesized area of the chosen design (slices).
    pub area_slices: f64,
    /// Area of the base design (slices).
    pub base_area_slices: f64,
}

impl FlowReport {
    /// Weighted exact execution time on the chosen design (ns).
    pub fn weighted_et_ns(&self) -> f64 {
        self.perf
            .iter()
            .zip(&self.critical_loops)
            .map(|(p, c)| p.et_ns * c.weight)
            .sum()
    }

    /// Weighted base execution time (ns).
    pub fn weighted_base_et_ns(&self) -> f64 {
        let base_clock = DelayModel::new()
            .report(&RspArchitecture::new("Base", self.base.clone(), SharingPlan::none()).unwrap())
            .clock_ns;
        self.contexts
            .iter()
            .zip(&self.critical_loops)
            .map(|(c, w)| c.total_cycles() as f64 * base_clock * w.weight)
            .sum()
    }
}

/// Runs the complete Fig. 7 flow over a set of domain applications.
///
/// # Errors
///
/// * [`RspError::EmptyProfile`] when no application lists a kernel.
/// * Mapping, exploration, and rearrangement errors are propagated.
///
/// # Examples
///
/// ```
/// use rsp_core::{run_flow, AppProfile, FlowConfig};
/// use rsp_kernel::suite;
///
/// let apps = vec![AppProfile::new(
///     "H.263 encoder",
///     vec![(suite::fdct(), 99), (suite::sad(), 396)],
/// )];
/// let report = run_flow(&apps, &FlowConfig::default())?;
/// assert!(report.area_slices < report.base_area_slices);
/// # Ok::<(), rsp_core::RspError>(())
/// ```
pub fn run_flow(apps: &[AppProfile], config: &FlowConfig) -> Result<FlowReport, RspError> {
    // 1. Profiling: weight = executions x operations.
    let mut weights: Vec<(Kernel, f64)> = Vec::new();
    for app in apps {
        for (k, count) in &app.kernels {
            let w = *count as f64 * k.total_ops() as f64;
            if let Some(existing) = weights.iter_mut().find(|(e, _)| e.name() == k.name()) {
                existing.1 += w;
            } else {
                weights.push((k.clone(), w));
            }
        }
    }
    if weights.is_empty() {
        return Err(RspError::EmptyProfile);
    }
    weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut critical_loops = Vec::new();
    let mut covered = 0.0;
    for (k, w) in &weights {
        if covered >= config.coverage * total {
            break;
        }
        covered += w;
        critical_loops.push(CriticalLoop {
            kernel: k.clone(),
            weight: w / total,
        });
    }

    // 2. Base architecture exploration: smallest candidate geometry whose
    //    mapped schedules fit the configuration cache.
    let mut chosen_base: Option<(BaseArchitecture, Vec<ConfigContext>)> = None;
    let mut geometries = config.geometries.clone();
    geometries.sort_by_key(|&(r, c)| r * c);
    for (r, c) in geometries {
        let base = BaseArchitecture::new(
            ArrayGeometry::new(r, c),
            PeDesign::full(),
            BusSpec::paper_default(),
            config.config_cache_depth,
        );
        let mapped: Result<Vec<_>, _> = critical_loops
            .iter()
            .map(|cl| map(&base, &cl.kernel, &config.map_options))
            .collect();
        if let Ok(contexts) = mapped {
            chosen_base = Some((base, contexts));
            break;
        }
    }
    let (base, contexts) = chosen_base.ok_or(RspError::NoFeasibleDesign)?;

    // 3. RSP exploration on the estimates.
    let kernels: Vec<Kernel> = critical_loops.iter().map(|c| c.kernel.clone()).collect();
    let kernel_weights: Vec<f64> = critical_loops.iter().map(|c| c.weight).collect();
    let exploration = explore_with(
        &base,
        &kernels,
        &contexts,
        &kernel_weights,
        &config.space,
        &ExploreOptions {
            parallelism: config.parallelism,
            prune: config.prune,
            bound: config.bound,
            constraints: config.constraints,
            objective: config.objective,
            cache: None,
        },
    )?;
    let chosen = exploration.best_point().arch.clone();

    // 4. RSP mapping: exact rearrangement + exact performance, fanned out
    //    per kernel (results merged in kernel order — deterministic).
    let delay = DelayModel::new();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.parallelism.unwrap_or(0))
        .build()
        .expect("thread pool");
    let ctx_refs: Vec<&ConfigContext> = contexts.iter().collect();
    let rearranged: Vec<Result<(Rearranged, KernelPerf), RspError>> = pool.install(|| {
        ctx_refs
            .into_par_iter()
            .map(|ctx| {
                let r = rearrange(ctx, &chosen, &config.rearrange_options)?;
                let p = perf_from_rearranged(ctx, &chosen, &delay, &r);
                Ok((r, p))
            })
            .collect()
    });
    let mut rsp_contexts = Vec::with_capacity(contexts.len());
    let mut perf = Vec::with_capacity(contexts.len());
    for item in rearranged {
        let (r, p) = item?;
        rsp_contexts.push(r);
        perf.push(p);
    }

    let area_model = AreaModel::new();
    let area = area_model.report(&chosen);

    Ok(FlowReport {
        critical_loops,
        base,
        contexts,
        exploration,
        chosen,
        rsp_contexts,
        perf,
        area_slices: area.synthesized_slices,
        base_area_slices: area.base_synthesized_slices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_kernel::suite;

    fn domain_apps() -> Vec<AppProfile> {
        vec![
            AppProfile::new(
                "H.263 encoder",
                vec![(suite::fdct(), 99), (suite::sad(), 396)],
            ),
            AppProfile::new(
                "scientific",
                vec![
                    (suite::hydro(), 50),
                    (suite::inner_product(), 80),
                    (suite::mvm(), 40),
                ],
            ),
            AppProfile::new("fft", vec![(suite::fft_mult_loop(), 64)]),
        ]
    }

    #[test]
    fn flow_runs_end_to_end() {
        let report = run_flow(&domain_apps(), &FlowConfig::default()).unwrap();
        assert!(!report.critical_loops.is_empty());
        assert_eq!(report.contexts.len(), report.critical_loops.len());
        assert_eq!(report.perf.len(), report.critical_loops.len());
        // Domain-specific optimization: smaller and (weighted) faster or
        // comparable.
        assert!(report.area_slices < report.base_area_slices);
        assert!(report.weighted_et_ns() < report.weighted_base_et_ns() * 1.2);
    }

    #[test]
    fn coverage_limits_loop_count() {
        let mut cfg = FlowConfig {
            coverage: 0.5,
            ..FlowConfig::default()
        };
        let narrow = run_flow(&domain_apps(), &cfg).unwrap();
        cfg.coverage = 1.0;
        let full = run_flow(&domain_apps(), &cfg).unwrap();
        assert!(narrow.critical_loops.len() <= full.critical_loops.len());
        // Heaviest first.
        let w: Vec<f64> = full.critical_loops.iter().map(|c| c.weight).collect();
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn duplicate_kernels_across_apps_merge() {
        let apps = vec![
            AppProfile::new("a", vec![(suite::sad(), 10)]),
            AppProfile::new("b", vec![(suite::sad(), 20)]),
        ];
        let report = run_flow(&apps, &FlowConfig::default()).unwrap();
        assert_eq!(report.critical_loops.len(), 1);
        assert!((report.critical_loops[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_rejected() {
        let err = run_flow(&[], &FlowConfig::default()).unwrap_err();
        assert_eq!(err, RspError::EmptyProfile);
    }

    #[test]
    fn geometry_exploration_prefers_smaller_feasible() {
        let cfg = FlowConfig {
            geometries: vec![(8, 8), (4, 4)],
            // SAD fits a 4x4 with a deep enough cache.
            config_cache_depth: 1024,
            ..FlowConfig::default()
        };
        let apps = vec![AppProfile::new("me", vec![(suite::sad(), 1)])];
        let report = run_flow(&apps, &cfg).unwrap();
        assert_eq!(report.base.geometry().pe_count(), 16);
    }
}
