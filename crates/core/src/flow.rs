//! The Fig. 7 design flow, end to end — pruned and parallel.
//!
//! ```text
//! applications ──> Profiling ──> critical loops
//!                      │
//!                      v
//!        Base Architecture Exploration ──> base architecture
//!                      │    (parallel fan-out over candidate
//!                      │     geometries; serial early-exit path kept
//!                      │     as the property-tested oracle)
//!                      v
//!              Pipeline Mapping ──> initial configuration contexts
//!                      │
//!                      v
//!               RSP Exploration ──> estimation Pareto frontier
//!                      │    (admissible cycle + stage-floor clock
//!                      │     bounds prune before delay synthesis;
//!                      │     dominated candidates never estimated)
//!                      v
//!                 RSP Mapping ──> RSP configuration contexts
//!                           (+ exact performance, Tables 4/5)
//!                      ^    exact rearrangement refines the frontier:
//!                      │    candidates fan out per kernel, and the
//!                      │    objective-score cut — fed by admissible
//!                      │    exact-time floors — skips rearranging
//!                      │    candidates that provably cannot win
//!                      │    (FlowStats counts the skips)
//! ```
//!
//! Profiling is modelled on synthetic application profiles: each
//! application lists its kernels with execution counts; a kernel's weight
//! is `count × operations`, and the flow keeps the hottest kernels until
//! the requested coverage of total weight is reached.
//!
//! # The exact stage and its objective-score cut
//!
//! The slack-aware estimate *lower*-bounds the exact rearranged elapsed
//! cycle count (see [`crate::estimate`]'s admissibility argument), so
//! the estimation-phase optimum is not necessarily the *exact* optimum.
//! The RSP-mapping stage therefore rearranges the estimation Pareto
//! candidates in ascending-area order and selects the best under the
//! flow objective from their **exact** weighted execution times. Under
//! [`PruneStrategy::Dominated`] a candidate is skipped — its (expensive)
//! exact rearrangement never runs — when even its admissible exact-time
//! floor cannot beat the best exact score seen so far: the floor
//! `Σ (est_cycles × clock) × w` is term-wise `≤` the exact weighted
//! time under IEEE-754 rounding (because `est_cycles ≤ exact elapsed
//! cycles` kernel-wise and the two sums share one association order),
//! and every flow objective is monotone non-decreasing in the time
//! argument, so `score(area, floor) ≥ best` implies
//! `score(area, exact) ≥ best`. The unpruned flow replaces its champion
//! only on a *strictly* smaller score (earliest candidate wins ties),
//! so a candidate whose exact score is `≥ best` could never have been
//! selected — skipping it leaves the chosen design, its contexts, and
//! the Tables 4/5 performance bit-identical to the unpruned flow's,
//! even when a frontier candidate turns out to be exactly infeasible
//! (a failed candidate sets no best score and can suppress nothing).
//! Comparing against the best *score* rather than a stored dominance
//! frontier is what lets the cut fire on dense frontiers: estimation
//! Pareto candidates have strictly descending time floors as area
//! ascends, so no earlier point ever Pareto-dominates a later floor —
//! but under an area-weighted objective the score floor rises with
//! area and the cut bites.

use crate::control::{Completeness, ControlClock, ExploreControl, TruncationReason};
use crate::error::RspError;
use crate::estimate::{BoundKind, ClockBound};
use crate::explore::{
    explore_with, Constraints, DesignSpace, Exploration, ExploreOptions, Objective, PruneStrategy,
};
use crate::perf::{perf_from_rearranged_with, KernelPerf};
use crate::rearrange::{rearrange, RearrangeOptions, Rearranged};
use rayon::prelude::*;
use rsp_arch::{ArrayGeometry, BaseArchitecture, BusSpec, PeDesign, RspArchitecture, SharingPlan};
use rsp_kernel::Kernel;
use rsp_mapper::{map, ConfigContext, MapOptions};
use rsp_obs::{Recorder, Span, Value};
use rsp_synth::{AreaModel, DelayModel, ModelCache};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// One application of the target domain: named kernels with execution
/// counts (the profiling input).
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name (e.g. `"H.263 encoder"`).
    pub name: String,
    /// Kernels and how often the application executes them.
    pub kernels: Vec<(Kernel, u64)>,
}

impl AppProfile {
    /// Creates a profile.
    pub fn new(name: impl Into<String>, kernels: Vec<(Kernel, u64)>) -> Self {
        Self {
            name: name.into(),
            kernels,
        }
    }
}

/// Flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Fraction of total profile weight the critical loops must cover
    /// (default 0.95).
    pub coverage: f64,
    /// Candidate array geometries for base-architecture exploration.
    pub geometries: Vec<(usize, usize)>,
    /// Per-PE configuration-cache depth.
    pub config_cache_depth: usize,
    /// RSP parameter space.
    pub space: DesignSpace,
    /// Constraints for RSP exploration.
    pub constraints: Constraints,
    /// Selection objective.
    pub objective: Objective,
    /// Mapper options.
    pub map_options: MapOptions,
    /// Rearrangement options.
    pub rearrange_options: RearrangeOptions,
    /// Worker threads for geometry exploration, RSP exploration, and
    /// exact RSP mapping (`None` = all cores; `Some(1)` runs the serial
    /// oracle paths; results are identical either way).
    pub parallelism: Option<usize>,
    /// Exploration pruning aggressiveness. [`PruneStrategy::Dominated`]
    /// additionally enables the exact-stage objective-score cut (see the
    /// module docs) — outputs stay bit-identical.
    pub prune: PruneStrategy,
    /// Strength of the admissible lower bound exploration pruning uses.
    pub bound: BoundKind,
    /// Whether exploration consults the stage-floor clock bound before
    /// delay synthesis (default [`ClockBound::StageFloor`]).
    pub clock_bound: ClockBound,
    /// Synthesis-report memo shared across flows (default `None` = one
    /// fresh cache per exploration, exactly as before). When set, both
    /// the exploration phase and the exact stage's delay queries are
    /// served from it — reports are pure, so outputs stay bit-identical;
    /// only re-synthesis is avoided. [`crate::Session`] wires this
    /// automatically.
    pub cache: Option<Arc<ModelCache>>,
    /// Kernel-profile memo shared across flows (default `None` =
    /// profile fresh per run; see [`ExploreOptions::profiles`]).
    pub profiles: Option<Arc<crate::ProfileCache>>,
    /// Run budget and cooperative cancellation across the whole flow
    /// (default: unlimited). The deadline and cancel flag are checked in
    /// every phase; the candidate budget is shared by the exploration
    /// and exact-rearrangement phases (an exploration candidate and an
    /// exact frontier candidate each consume one unit), so
    /// budget-truncated flows are reproducible for every `parallelism`.
    /// A truncated flow reports best-so-far results tagged
    /// [`FlowReport::completeness`]; a flow stopped before any usable
    /// result fails with [`RspError::Interrupted`].
    pub control: ExploreControl,
    /// Recorder phase spans, exact-stage skips, and refill splits are
    /// reported to (default [`rsp_obs::global`] at construction time).
    /// Purely observational — see [`ExploreOptions::recorder`].
    pub recorder: Arc<dyn Recorder>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            coverage: 0.95,
            geometries: vec![(8, 8)],
            config_cache_depth: 256,
            space: DesignSpace::paper(),
            constraints: Constraints::default(),
            objective: Objective::AreaDelayProduct,
            map_options: MapOptions::default(),
            rearrange_options: RearrangeOptions::default(),
            parallelism: None,
            prune: PruneStrategy::default(),
            bound: BoundKind::default(),
            clock_bound: ClockBound::default(),
            cache: None,
            profiles: None,
            control: ExploreControl::default(),
            recorder: rsp_obs::global(),
        }
    }
}

/// A critical loop selected by profiling.
#[derive(Debug, Clone)]
pub struct CriticalLoop {
    /// The kernel.
    pub kernel: Kernel,
    /// Normalized execution weight (sums to ≤ 1 over selected loops).
    pub weight: f64,
}

/// Per-stage work counters of one flow run (see the module docs for the
/// stages). Counters describe *work performed*, not results: the serial
/// geometry oracle early-exits while the parallel fan-out maps every
/// geometry, so `geometries_explored` may differ between the two even
/// though every result field of the [`FlowReport`] is bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Candidate geometries the configuration offered.
    pub geometries_considered: usize,
    /// Geometries whose pipeline mapping was actually attempted.
    pub geometries_explored: usize,
    /// Estimation Pareto candidates offered to the exact stage.
    pub frontier_candidates: usize,
    /// Frontier candidates whose exact rearrangement ran and succeeded.
    pub rearranged_candidates: usize,
    /// Frontier candidates the objective-score cut skipped — their exact
    /// rearrangement (one per critical loop) never ran.
    pub rearrangements_skipped: usize,
    /// Frontier candidates whose exact rearrangement was attempted but
    /// failed (e.g. the rearranged schedule no longer fits the
    /// configuration cache). `rearranged_candidates +
    /// rearrangements_skipped + rearrangements_failed ==
    /// frontier_candidates` always holds.
    pub rearrangements_failed: usize,
    /// Candidate estimations the exploration stage skipped
    /// (`Exploration::stats`, repeated here for one-stop reporting).
    pub candidates_pruned: usize,
    /// Exploration candidates cut by the stage-floor clock bound before
    /// delay synthesis.
    pub clock_bound_cuts: usize,
    /// Configuration-cache refills across every exact rearrangement the
    /// flow performed (schedule segments beyond the first, summed over
    /// candidates × kernels). Nonzero means some rearranged schedule
    /// outgrew the cache and was split instead of rejected.
    pub refill_segments: usize,
    /// Refill-stall cycles across those rearrangements (the latency the
    /// refill model charged instead of declaring candidates infeasible).
    pub refill_stall_cycles: u64,
    /// Candidates whose evaluation panicked and was isolated — the
    /// exploration stage's [`crate::PruneStats::faulted`] plus frontier
    /// candidates that faulted during exact rearrangement.
    pub faulted: usize,
}

/// Everything the flow produces.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Selected critical loops, heaviest first.
    pub critical_loops: Vec<CriticalLoop>,
    /// The chosen base architecture.
    pub base: BaseArchitecture,
    /// Initial configuration contexts, parallel to `critical_loops`.
    pub contexts: Vec<ConfigContext>,
    /// The RSP exploration (estimation-driven).
    pub exploration: Exploration,
    /// The selected RSP architecture: the estimation Pareto candidate
    /// with the best **exact** objective score after the RSP-mapping
    /// stage refined the frontier.
    pub chosen: RspArchitecture,
    /// Final RSP configuration contexts of the chosen design, parallel
    /// to `critical_loops`.
    pub rsp_contexts: Vec<Rearranged>,
    /// Exact performance of each critical loop on the chosen design.
    pub perf: Vec<KernelPerf>,
    /// Synthesized area of the chosen design (slices).
    pub area_slices: f64,
    /// Area of the base design (slices).
    pub base_area_slices: f64,
    /// Per-stage pruning/parallelism work counters.
    pub stats: FlowStats,
    /// Whether every phase processed its whole candidate stream, or the
    /// flow's [`ExploreControl`] stopped it early. A truncated flow's
    /// results are best-so-far: `chosen` is the best candidate among the
    /// frontier prefix the exact stage reached.
    pub completeness: Completeness,
}

impl FlowReport {
    /// Weighted exact execution time on the chosen design (ns).
    pub fn weighted_et_ns(&self) -> f64 {
        self.perf
            .iter()
            .zip(&self.critical_loops)
            .map(|(p, c)| p.et_ns * c.weight)
            .sum()
    }

    /// Weighted base execution time (ns).
    pub fn weighted_base_et_ns(&self) -> f64 {
        let base_clock = DelayModel::new()
            .report(&RspArchitecture::new("Base", self.base.clone(), SharingPlan::none()).unwrap())
            .clock_ns;
        self.contexts
            .iter()
            .zip(&self.critical_loops)
            .map(|(c, w)| c.total_cycles() as f64 * base_clock * w.weight)
            .sum()
    }
}

/// Attempts one candidate geometry: builds the base array and maps every
/// critical loop onto it. `None` when any loop fails to map (the
/// geometry is infeasible for this workload).
fn map_geometry(
    rows: usize,
    cols: usize,
    config: &FlowConfig,
    loops: &[CriticalLoop],
) -> Option<(BaseArchitecture, Vec<ConfigContext>)> {
    let base = BaseArchitecture::new(
        ArrayGeometry::new(rows, cols),
        PeDesign::full(),
        BusSpec::paper_default(),
        config.config_cache_depth,
    );
    let mapped: Result<Vec<_>, _> = loops
        .iter()
        .map(|cl| map(&base, &cl.kernel, &config.map_options))
        .collect();
    mapped.ok().map(|contexts| (base, contexts))
}

/// Base-architecture exploration: the smallest candidate geometry whose
/// mapped schedules fit the configuration cache. `Some(1)` parallelism
/// runs the serial early-exit oracle; otherwise every geometry is mapped
/// concurrently on the pool and the first feasible one in ascending-size
/// order is selected — the same choice the oracle makes, property-tested
/// bit-identical. Returns the choice plus how many geometries were
/// actually attempted.
///
/// Checks `clock` at geometry boundaries (serial oracle) or once before
/// the fan-out: a deadline/cancel/zero-budget stop before a base is
/// found fails with [`RspError::Interrupted`] — no later phase can run
/// without a base. The candidate budget is otherwise not consumed here,
/// so budget-truncated flows stay reproducible across `parallelism`
/// settings (the two paths attempt different geometry counts).
#[allow(clippy::type_complexity)]
fn select_base(
    config: &FlowConfig,
    loops: &[CriticalLoop],
    pool: &rayon::ThreadPool,
    clock: &ControlClock,
) -> Result<(BaseArchitecture, Vec<ConfigContext>, usize), RspError> {
    let mut geometries = config.geometries.clone();
    geometries.sort_by_key(|&(r, c)| r * c);
    if config.parallelism == Some(1) {
        // Serial oracle: stop at the first feasible geometry.
        for (attempted, &(r, c)) in geometries.iter().enumerate() {
            if let Some(reason) = clock.stop_reason(0) {
                return Err(RspError::Interrupted { reason });
            }
            if let Some((base, contexts)) = map_geometry(r, c, config, loops) {
                return Ok((base, contexts, attempted + 1));
            }
        }
        Err(RspError::NoFeasibleDesign)
    } else {
        if let Some(reason) = clock.stop_reason(0) {
            return Err(RspError::Interrupted { reason });
        }
        // Maps every geometry: the vendored rayon subset has no
        // `find_first`, so the tail cannot be cancelled once an
        // earlier-indexed geometry succeeds. On a 1-CPU host this makes
        // the fan-out a measured net cost when the smallest geometry is
        // feasible (see BENCH_flow.json's flow-paper report); switch to
        // `find_first` if the real rayon ever backs the stub.
        let attempted = geometries.len();
        let candidates: Vec<Option<(BaseArchitecture, Vec<ConfigContext>)>> = pool.install(|| {
            geometries
                .into_par_iter()
                .map(|(r, c)| map_geometry(r, c, config, loops))
                .collect()
        });
        candidates
            .into_iter()
            .flatten()
            .next()
            .map(|(base, contexts)| (base, contexts, attempted))
            .ok_or(RspError::NoFeasibleDesign)
    }
}

/// Runs the complete Fig. 7 flow over a set of domain applications.
///
/// # Errors
///
/// * [`RspError::EmptyProfile`] when no application lists a kernel.
/// * Mapping, exploration, and rearrangement errors are propagated; when
///   every estimation Pareto candidate fails exact rearrangement, the
///   first failure (in ascending-area order) is returned.
/// * [`RspError::Interrupted`] when [`FlowConfig::control`] stopped the
///   flow before any candidate completed exact evaluation. A budget
///   that strikes *after* at least one candidate completed returns the
///   best-so-far report tagged [`FlowReport::completeness`] instead.
///
/// # Examples
///
/// ```
/// use rsp_core::{run_flow, AppProfile, FlowConfig};
/// use rsp_kernel::suite;
///
/// let apps = vec![AppProfile::new(
///     "H.263 encoder",
///     vec![(suite::fdct(), 99), (suite::sad(), 396)],
/// )];
/// let report = run_flow(&apps, &FlowConfig::default())?;
/// assert!(report.area_slices < report.base_area_slices);
/// # Ok::<(), rsp_core::RspError>(())
/// ```
pub fn run_flow(apps: &[AppProfile], config: &FlowConfig) -> Result<FlowReport, RspError> {
    let mut stats = FlowStats::default();
    // Observability: every phase below reports a span to the config's
    // recorder (gated, zero-cost under the default `NullRecorder`).
    let obs = &*config.recorder;

    // 1. Profiling: weight = executions x operations.
    let profile_span = Span::enter(obs, "flow", "profile", 0);
    let mut weights: Vec<(Kernel, f64)> = Vec::new();
    for app in apps {
        for (k, count) in &app.kernels {
            let w = *count as f64 * k.total_ops() as f64;
            if let Some(existing) = weights.iter_mut().find(|(e, _)| e.name() == k.name()) {
                existing.1 += w;
            } else {
                weights.push((k.clone(), w));
            }
        }
    }
    if weights.is_empty() {
        return Err(RspError::EmptyProfile);
    }
    weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut critical_loops = Vec::new();
    let mut covered = 0.0;
    for (k, w) in &weights {
        if covered >= config.coverage * total {
            break;
        }
        covered += w;
        critical_loops.push(CriticalLoop {
            kernel: k.clone(),
            weight: w / total,
        });
    }
    drop(profile_span);

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.parallelism.unwrap_or(0))
        .build()
        .expect("thread pool");

    // One clock over the whole flow: the deadline spans every phase,
    // and the candidate budget is spent across exploration + exact
    // rearrangement.
    let clock = ControlClock::new(&config.control);

    // 2. Base architecture exploration (parallel fan-out over candidate
    //    geometries; serial early-exit oracle under `Some(1)`).
    stats.geometries_considered = config.geometries.len();
    let base_span = Span::enter(obs, "flow", "select_base", 0);
    let (base, contexts, geometries_explored) =
        select_base(config, &critical_loops, &pool, &clock)?;
    drop(base_span);
    stats.geometries_explored = geometries_explored;

    // 3. RSP exploration on the estimates, under the remainder of the
    //    flow's deadline and the (so far unspent) candidate budget. A
    //    truncated exploration is not an error: the exact stage refines
    //    whatever frontier prefix it produced.
    let kernels: Vec<Kernel> = critical_loops.iter().map(|c| c.kernel.clone()).collect();
    let kernel_weights: Vec<f64> = critical_loops.iter().map(|c| c.weight).collect();
    let explore_span = Span::enter(obs, "flow", "explore", 0);
    let exploration = explore_with(
        &base,
        &kernels,
        &contexts,
        &kernel_weights,
        &config.space,
        &ExploreOptions {
            parallelism: config.parallelism,
            prune: config.prune,
            bound: config.bound,
            clock_bound: config.clock_bound,
            constraints: config.constraints,
            objective: config.objective,
            cache: config.cache.clone(),
            profiles: config.profiles.clone(),
            control: ExploreControl {
                deadline: clock.remaining_deadline(),
                candidate_budget: config.control.candidate_budget,
                cancel: config.control.cancel_handle(),
            },
            recorder: Arc::clone(&config.recorder),
        },
    )?;
    drop(explore_span);
    stats.candidates_pruned = exploration.stats.candidates_pruned;
    stats.clock_bound_cuts = exploration.stats.clock_bound_cuts;
    stats.faulted = exploration.stats.faulted;
    // Budget units the exploration phase spent.
    let explored_candidates = exploration.stats.candidates_seen;

    // 4. RSP mapping: exact rearrangement refines the estimation Pareto
    //    frontier. Candidates are processed serially in ascending-area
    //    order (so skip decisions only ever depend on earlier
    //    candidates — deterministic for every thread count); each
    //    candidate's per-kernel rearrangements fan out over the pool.
    let delay = DelayModel::new();
    let score_of = |area: f64, et: f64| match config.objective {
        Objective::AreaDelayProduct => area * et,
        Objective::ExecutionTime => et,
        Objective::Area => area,
    };
    let pareto: Vec<_> = exploration.pareto_points().collect();
    stats.frontier_candidates = pareto.len();
    let mut best: Option<(usize, f64)> = None;
    let mut best_outputs: Option<(Vec<Rearranged>, Vec<KernelPerf>)> = None;
    let mut first_err: Option<RspError> = None;
    // Whatever candidate budget exploration left over is spent here, one
    // unit per frontier candidate (score-cut-skipped ones included),
    // against the same deadline clock.
    let exact_budget = config
        .control
        .candidate_budget
        .map(|b| b.saturating_sub(explored_candidates));
    let mut exact_truncation: Option<TruncationReason> = None;
    let mut exact_processed = 0usize;
    let exact_span = Span::enter(obs, "flow", "exact", 0);
    for (ci, point) in pareto.iter().enumerate() {
        if let Some(reason) = clock.stop_reason_budgeted(exact_processed, exact_budget) {
            exact_truncation = Some(reason);
            break;
        }
        exact_processed += 1;
        if config.prune == PruneStrategy::Dominated {
            // Admissible exact-time floor: the slack-aware estimate
            // never exceeds the exact rearranged elapsed cycles
            // (property-tested in the workload crate's admissibility
            // suite), so the exact weighted time is at least
            // Σ est_cycles·clock·w — written in exactly the association
            // order the exact sum below uses ((cycles × clock) ×
            // weight), so the floor is term-wise ≤ the exact time under
            // IEEE-754 rounding, never merely in real arithmetic.
            let mut lb_exact = 0.0;
            for (est_c, cl) in point.est_cycles.iter().zip(&critical_loops) {
                lb_exact += *est_c as f64 * point.clock_ns * cl.weight;
            }
            // Objective-score cut: even at its floor, the candidate's
            // exact score cannot strictly beat the best exact score
            // already achieved, so the unpruned flow would never select
            // it (ties keep the earlier, smaller-area candidate there
            // too). The score is monotone in the time argument for
            // every objective, so `floor_score ≥ best` implies
            // `exact_score ≥ best` — the skip is output-preserving.
            if let Some((_, best_score)) = best {
                if score_of(point.area_slices, lb_exact)
                    .total_cmp(&best_score)
                    .is_ge()
                {
                    stats.rearrangements_skipped += 1;
                    rsp_obs::point(
                        obs,
                        "flow",
                        "exact_skip",
                        ci as u64,
                        &[("reason", Value::Str("score_floor"))],
                    );
                    continue;
                }
            }
        }
        // One delay synthesis per candidate, shared by every kernel —
        // served from the shared memo when the config carries one (the
        // exploration phase synthesized every frontier plan already).
        // Panic-isolated like every candidate evaluation: a faulted
        // candidate is counted and skipped, never aborts the flow.
        let _rearrange_span = Span::enter(obs, "flow", "rearrange", ci as u64);
        let Ok(delay_report) = catch_unwind(AssertUnwindSafe(|| match config.cache.as_deref() {
            Some(cache) => cache.reports(&point.arch).1,
            None => delay.report(&point.arch),
        })) else {
            stats.faulted += 1;
            stats.rearrangements_failed += 1;
            if first_err.is_none() {
                first_err = Some(RspError::CandidateFaulted {
                    name: point.arch.name().to_string(),
                });
            }
            continue;
        };
        let ctx_refs: Vec<&ConfigContext> = contexts.iter().collect();
        let rearranged: Vec<Result<(Rearranged, KernelPerf), RspError>> = pool.install(|| {
            ctx_refs
                .into_par_iter()
                .map(|ctx| {
                    // catch_unwind *inside* the worker closure: the
                    // vendored rayon would abort on an escaped panic.
                    catch_unwind(AssertUnwindSafe(|| {
                        let r = rearrange(ctx, &point.arch, &config.rearrange_options)?;
                        let p = perf_from_rearranged_with(ctx, &point.arch, &delay_report, &r);
                        Ok((r, p))
                    }))
                    .unwrap_or_else(|_| {
                        Err(RspError::CandidateFaulted {
                            name: point.arch.name().to_string(),
                        })
                    })
                })
                .collect()
        });
        let mut rsp = Vec::with_capacity(contexts.len());
        let mut perf = Vec::with_capacity(contexts.len());
        let mut failure = None;
        for item in rearranged {
            match item {
                Ok((r, p)) => {
                    rsp.push(r);
                    perf.push(p);
                }
                Err(e) => {
                    if matches!(e, RspError::CandidateFaulted { .. }) {
                        stats.faulted += 1;
                    }
                    failure = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            // Exactly infeasible candidate: it joins no frontier (a
            // failed design must never suppress a feasible one) and is
            // reported only if nothing succeeds.
            stats.rearrangements_failed += 1;
            if first_err.is_none() {
                first_err = Some(e);
            }
            continue;
        }
        stats.rearranged_candidates += 1;
        let mut refill_segments = 0u64;
        let mut refill_stalls = 0u64;
        for r in &rsp {
            stats.refill_segments += r.refill_count();
            stats.refill_stall_cycles += u64::from(r.refill_stalls());
            refill_segments += r.refill_count() as u64;
            refill_stalls += u64::from(r.refill_stalls());
        }
        if refill_segments > 0 {
            rsp_obs::point(
                obs,
                "flow",
                "refill_split",
                ci as u64,
                &[
                    ("segments", Value::U64(refill_segments)),
                    ("stall_cycles", Value::U64(refill_stalls)),
                ],
            );
        }
        let exact_et: f64 = perf
            .iter()
            .zip(&critical_loops)
            .map(|(p, c)| p.et_ns * c.weight)
            .sum();
        let score = score_of(point.area_slices, exact_et);
        if best.is_none_or(|(_, s)| score.total_cmp(&s).is_lt()) {
            best = Some((ci, score));
            best_outputs = Some((rsp, perf));
        }
    }
    drop(exact_span);
    // Flow-level completeness: remaining work is whatever exploration
    // left unseen plus the frontier tail the exact stage never reached.
    let completeness = {
        let exact_remaining = pareto.len() - exact_processed;
        match (exploration.completeness, exact_truncation) {
            (Completeness::Complete, None) => Completeness::Complete,
            (
                Completeness::Truncated {
                    candidates_remaining,
                    reason,
                },
                None,
            ) => Completeness::Truncated {
                candidates_remaining,
                reason,
            },
            (explore_done, Some(reason)) => Completeness::Truncated {
                candidates_remaining: exact_remaining
                    + match explore_done {
                        Completeness::Truncated {
                            candidates_remaining,
                            ..
                        } => candidates_remaining,
                        Completeness::Complete => 0,
                    },
                reason,
            },
        }
    };

    let Some((best_ci, _)) = best else {
        // Nothing usable: distinguish "the budget stopped us before any
        // candidate completed" from genuine infeasibility.
        if let Completeness::Truncated { reason, .. } = completeness {
            return Err(RspError::Interrupted { reason });
        }
        return Err(first_err.unwrap_or(RspError::NoFeasibleDesign));
    };
    let chosen = pareto[best_ci].arch.clone();
    let (rsp_contexts, perf) = best_outputs.expect("outputs accompany the best score");

    let area_model = AreaModel::new();
    let area = area_model.report(&chosen);

    Ok(FlowReport {
        critical_loops,
        base,
        contexts,
        exploration,
        chosen,
        rsp_contexts,
        perf,
        area_slices: area.synthesized_slices,
        base_area_slices: area.base_synthesized_slices,
        stats,
        completeness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::perf_from_rearranged;
    use rsp_kernel::suite;

    fn domain_apps() -> Vec<AppProfile> {
        vec![
            AppProfile::new(
                "H.263 encoder",
                vec![(suite::fdct(), 99), (suite::sad(), 396)],
            ),
            AppProfile::new(
                "scientific",
                vec![
                    (suite::hydro(), 50),
                    (suite::inner_product(), 80),
                    (suite::mvm(), 40),
                ],
            ),
            AppProfile::new("fft", vec![(suite::fft_mult_loop(), 64)]),
        ]
    }

    #[test]
    fn flow_runs_end_to_end() {
        let report = run_flow(&domain_apps(), &FlowConfig::default()).unwrap();
        assert!(!report.critical_loops.is_empty());
        assert_eq!(report.contexts.len(), report.critical_loops.len());
        assert_eq!(report.perf.len(), report.critical_loops.len());
        // Domain-specific optimization: smaller and (weighted) faster or
        // comparable.
        assert!(report.area_slices < report.base_area_slices);
        assert!(report.weighted_et_ns() < report.weighted_base_et_ns() * 1.2);
        // The exact stage evaluated at least the chosen candidate and
        // reported its work.
        assert!(report.stats.rearranged_candidates >= 1);
        assert_eq!(
            report.stats.frontier_candidates,
            report.exploration.pareto.len()
        );
    }

    #[test]
    fn coverage_limits_loop_count() {
        let mut cfg = FlowConfig {
            coverage: 0.5,
            ..FlowConfig::default()
        };
        let narrow = run_flow(&domain_apps(), &cfg).unwrap();
        cfg.coverage = 1.0;
        let full = run_flow(&domain_apps(), &cfg).unwrap();
        assert!(narrow.critical_loops.len() <= full.critical_loops.len());
        // Heaviest first.
        let w: Vec<f64> = full.critical_loops.iter().map(|c| c.weight).collect();
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn duplicate_kernels_across_apps_merge() {
        let apps = vec![
            AppProfile::new("a", vec![(suite::sad(), 10)]),
            AppProfile::new("b", vec![(suite::sad(), 20)]),
        ];
        let report = run_flow(&apps, &FlowConfig::default()).unwrap();
        assert_eq!(report.critical_loops.len(), 1);
        assert!((report.critical_loops[0].weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_rejected() {
        let err = run_flow(&[], &FlowConfig::default()).unwrap_err();
        assert_eq!(err, RspError::EmptyProfile);
    }

    #[test]
    fn geometry_exploration_prefers_smaller_feasible() {
        let cfg = FlowConfig {
            geometries: vec![(8, 8), (4, 4)],
            // SAD fits a 4x4 with a deep enough cache.
            config_cache_depth: 1024,
            ..FlowConfig::default()
        };
        let apps = vec![AppProfile::new("me", vec![(suite::sad(), 1)])];
        let report = run_flow(&apps, &cfg).unwrap();
        assert_eq!(report.base.geometry().pe_count(), 16);
        assert_eq!(report.stats.geometries_considered, 2);
    }

    #[test]
    fn serial_oracle_early_exits_but_chooses_identically() {
        // The serial path stops at the first feasible geometry; the
        // parallel path maps them all. Same base either way.
        let cfg = |parallelism| FlowConfig {
            geometries: vec![(4, 4), (6, 6), (8, 8)],
            parallelism,
            ..FlowConfig::default()
        };
        let apps = domain_apps();
        let serial = run_flow(&apps, &cfg(Some(1))).unwrap();
        let parallel = run_flow(&apps, &cfg(None)).unwrap();
        assert_eq!(
            serial.base.geometry().pe_count(),
            parallel.base.geometry().pe_count()
        );
        assert_eq!(parallel.stats.geometries_explored, 3);
        assert!(serial.stats.geometries_explored <= 3);
    }

    #[test]
    fn exact_stage_chooses_best_exact_objective_on_frontier() {
        // The chosen design must carry the minimum exact objective score
        // among every frontier candidate that rearranges successfully.
        let report = run_flow(&domain_apps(), &FlowConfig::default()).unwrap();
        let exact_et = report.weighted_et_ns();
        let chosen_score = report.area_slices * exact_et;
        for p in report.exploration.pareto_points() {
            let delay = DelayModel::new();
            let mut et = 0.0;
            let mut ok = true;
            for (ctx, cl) in report.contexts.iter().zip(&report.critical_loops) {
                match rearrange(ctx, &p.arch, &RearrangeOptions::default()) {
                    Ok(r) => {
                        et += perf_from_rearranged(ctx, &p.arch, &delay, &r).et_ns * cl.weight;
                    }
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                assert!(
                    chosen_score <= p.area_slices * et + 1e-9,
                    "{} beats the chosen {}",
                    p.arch.name(),
                    report.chosen.name()
                );
            }
        }
    }

    #[test]
    fn flow_stopped_before_any_result_is_interrupted() {
        // Zero deadline: the geometry phase never starts.
        let cfg = FlowConfig {
            control: ExploreControl::with_deadline(std::time::Duration::ZERO),
            ..FlowConfig::default()
        };
        let err = run_flow(&domain_apps(), &cfg).unwrap_err();
        assert_eq!(
            err,
            RspError::Interrupted {
                reason: TruncationReason::Deadline
            }
        );

        // Zero candidate budget: same, via the reproducible knob.
        let cfg = FlowConfig {
            control: ExploreControl::with_budget(0),
            ..FlowConfig::default()
        };
        let err = run_flow(&domain_apps(), &cfg).unwrap_err();
        assert_eq!(
            err,
            RspError::Interrupted {
                reason: TruncationReason::CandidateBudget
            }
        );

        // Pre-raised cancel flag.
        let control = ExploreControl::default();
        control.request_cancel();
        let cfg = FlowConfig {
            control,
            ..FlowConfig::default()
        };
        let err = run_flow(&domain_apps(), &cfg).unwrap_err();
        assert_eq!(
            err,
            RspError::Interrupted {
                reason: TruncationReason::Cancelled
            }
        );
    }

    #[test]
    fn flow_budget_spent_entirely_on_exploration_is_interrupted() {
        // The budget covers exactly the exploration phase, leaving the
        // exact stage nothing: no candidate is ever rearranged, so there
        // is no usable result.
        let cfg = FlowConfig::default();
        let space_total = cfg.space.plans().count();
        let cfg = FlowConfig {
            control: ExploreControl::with_budget(space_total),
            ..cfg
        };
        let err = run_flow(&domain_apps(), &cfg).unwrap_err();
        assert_eq!(
            err,
            RspError::Interrupted {
                reason: TruncationReason::CandidateBudget
            }
        );
    }

    #[test]
    fn flow_budget_truncation_is_reproducible_across_parallelism() {
        // One unit past the exploration phase: the exact stage processes
        // exactly one frontier candidate. The truncated report is
        // best-so-far, tagged Truncated, and bit-identical for any
        // parallelism (the budget is machine-independent).
        let space_total = FlowConfig::default().space.plans().count();
        let cfg = |parallelism| FlowConfig {
            parallelism,
            control: ExploreControl::with_budget(space_total + 1),
            ..FlowConfig::default()
        };
        let serial = run_flow(&domain_apps(), &cfg(Some(1))).unwrap();
        let parallel = run_flow(&domain_apps(), &cfg(None)).unwrap();
        for report in [&serial, &parallel] {
            assert!(
                matches!(
                    report.completeness,
                    Completeness::Truncated {
                        reason: TruncationReason::CandidateBudget,
                        ..
                    }
                ),
                "{:?}",
                report.completeness
            );
            // The exploration itself completed; only the exact stage was
            // cut short.
            assert!(report.exploration.completeness.is_complete());
            assert_eq!(report.stats.rearranged_candidates, 1);
        }
        assert_eq!(serial.chosen.name(), parallel.chosen.name());
        assert_eq!(serial.area_slices.to_bits(), parallel.area_slices.to_bits());
        assert_eq!(
            serial.weighted_et_ns().to_bits(),
            parallel.weighted_et_ns().to_bits()
        );

        // An ample budget reproduces the unbudgeted flow.
        let ample = FlowConfig {
            control: ExploreControl::with_budget(10_000),
            ..FlowConfig::default()
        };
        let full = run_flow(&domain_apps(), &ample).unwrap();
        let unbudgeted = run_flow(&domain_apps(), &FlowConfig::default()).unwrap();
        assert!(full.completeness.is_complete());
        assert_eq!(full.chosen.name(), unbudgeted.chosen.name());
        assert_eq!(
            full.weighted_et_ns().to_bits(),
            unbudgeted.weighted_et_ns().to_bits()
        );
    }
}
