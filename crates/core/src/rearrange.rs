//! RSP context rearrangement — the paper's §4 rules made executable.
//!
//! Given the *initial* configuration contexts (base schedule) and a target
//! RSP architecture, produce the *RSP configuration contexts*:
//!
//! 1. **Resource sharing (RS)** — shared resources are granted to
//!    operations **in loop-iteration order** each cycle; an operation that
//!    finds no free resource is moved to the next cycle, pushing its PE's
//!    later operations (and transitively, later iterations) back — an *RS
//!    stall*.
//! 2. **Resource pipelining (RP)** — operations on pipelined resources
//!    take `stages` cycles, so dependent operations stall with them; since
//!    a pipelined resource accepts a new issue every cycle, *consecutive*
//!    multiplications overlap in distinct stages and a chain of `k`
//!    multiplications costs `k + stages − 1` cycles, not `k × stages`
//!    (the paper's "overlapped cycles are removed" rule and the mechanism
//!    behind Fig. 6 needing four multipliers where Fig. 2 needs eight).
//!
//! The engine is a resource-constrained list scheduler over the instance
//! graph with three invariants: no instance issues before its base-schedule
//! cycle (rearrangement only delays), each PE issues its instances in
//! base-schedule order (the configuration stream is a FIFO), and shared
//! resources accept one issue per cycle.
//!
//! # Configuration-cache refill
//!
//! A rearranged schedule deeper than the per-PE configuration cache is
//! no longer rejected: it is split into cache-sized segments at legal
//! cut points ([`rsp_mapper::split_schedule`]) and the resulting
//! [`RefillPlan`] rides on the [`Rearranged`] output. Each segment after
//! the first charges a refill stall of one cycle per context word
//! (derived from the `ConfigImage` byte size; see the mapper's refill
//! module docs), so [`Rearranged::elapsed_cycles`] =
//! `total_cycles + refill_stalls`. The stalls are pure delay — the
//! compact schedule, bindings, and therefore memory effects are
//! untouched — which keeps `base_cycles` an admissible floor on the
//! elapsed cycles (`elapsed ≥ total ≥ base`), exactly the invariant the
//! flow's pruning cuts rest on.

use crate::error::RspError;
#[cfg(test)]
use rsp_arch::OpKind;
use rsp_arch::{RspArchitecture, SharedResourceId};
use rsp_mapper::{split_schedule, ConfigContext, InstanceId, RefillPlan, SplitError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Rearrangement options.
#[derive(Debug, Clone, Copy, Default)]
pub struct RearrangeOptions {
    /// Also enforce row-bus capacities while rescheduling (off by default,
    /// matching the base mapper's reliance on operand reuse).
    pub enforce_buses: bool,
}

/// The rearranged (RSP) configuration contexts for one kernel on one
/// architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rearranged {
    /// New schedule, parallel to the context's instances.
    pub cycles: Vec<u32>,
    /// Shared-resource binding per instance (multiplications on RS/RSP
    /// architectures; `None` for local operations).
    pub bindings: Vec<Option<SharedResourceId>>,
    /// Total cycles of the rearranged schedule. Never less than
    /// `base_cycles`: the scheduler issues no instance before its
    /// base-schedule cycle, so rearrangement only *delays* — the
    /// monotonicity the estimator's admissibility proof rests on, and
    /// through it the exact-time floors that let [`crate::run_flow`]
    /// skip rearranging candidates that cannot win.
    pub total_cycles: u32,
    /// Total cycles of the base schedule.
    pub base_cycles: u32,
    /// Cycles added by multi-cycle (pipelined) operation latency alone —
    /// the RP contribution, measured with unlimited resources.
    pub rp_overhead: u32,
    /// Additional cycles lost to shared-resource shortage — the paper's
    /// "stall" column.
    pub rs_stalls: u32,
    /// How the schedule maps onto the per-PE configuration caches: one
    /// segment with zero refill when it fits, cache-sized segments with
    /// per-segment reload stalls when it does not (see the module docs).
    pub refill: RefillPlan,
}

impl Rearranged {
    /// Whether the architecture "supports the kernel without stall"
    /// (the paper's criterion for RSP#2 in §5.3).
    pub fn is_stall_free(&self) -> bool {
        self.rs_stalls == 0
    }

    /// Refill-stall cycles the split schedule spends reloading the
    /// configuration caches (0 when the schedule fits).
    pub fn refill_stalls(&self) -> u32 {
        self.refill.total_refill_cycles()
    }

    /// Cache refills the schedule performs (segments beyond the first).
    pub fn refill_count(&self) -> usize {
        self.refill.refill_count()
    }

    /// Wall-clock cycles including refill stalls: what the kernel's
    /// execution time is charged with.
    pub fn elapsed_cycles(&self) -> u32 {
        self.total_cycles + self.refill_stalls()
    }
}

/// Rearranges `ctx` for `arch` per the RS/RP/RSP rules.
///
/// For the base architecture this is the identity (the base schedule is
/// already legal); for RS it inserts sharing stalls; for RP it stretches
/// multi-cycle operations; for RSP it does both.
///
/// A schedule deeper than the configuration cache is split into
/// cache-sized segments and charged refill stalls instead of being
/// rejected (see the module docs); [`Rearranged::refill`] carries the
/// plan.
///
/// # Errors
///
/// * [`RspError::RearrangeDiverged`] on internal inconsistency (never
///   expected for validated inputs).
/// * [`RspError::UnsplittableSchedule`] if the oversized schedule has no
///   legal cut point within some cache window (only possible when
///   pipeline latencies tile an entire window).
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// use rsp_core::rearrange;
/// use rsp_kernel::suite;
/// use rsp_mapper::{map, MapOptions};
///
/// let base = presets::base_8x8();
/// let ctx = map(base.base(), &suite::state(), &MapOptions::default())?;
///
/// // One multiplier per row starves the State kernel (Table 4: stalls),
/// // two pipelined multipliers per row run it stall-free (RSP#2).
/// let rs1 = rearrange(&ctx, &presets::rs1(), &Default::default())?;
/// let rsp2 = rearrange(&ctx, &presets::rsp2(), &Default::default())?;
/// assert!(rs1.rs_stalls > 0);
/// assert!(rsp2.is_stall_free());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn rearrange(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    opts: &RearrangeOptions,
) -> Result<Rearranged, RspError> {
    let base_cycles = ctx.total_cycles();

    // Pass 1: latencies only (unlimited resources) -> RP overhead.
    let (rp_sched, _) = schedule(ctx, arch, opts, false)?;
    let rp_total = total(&rp_sched);

    // Pass 2: latencies + sharing constraints -> full RSP schedule.
    let (cycles, bindings) = schedule(ctx, arch, opts, true)?;
    let total_cycles = total(&cycles);

    let available = arch.base().config_cache_depth() as u32;
    let refill = split_schedule(
        ctx,
        &cycles,
        |i| u32::from(arch.op_latency(ctx.instances()[i].op)),
        available,
    )
    .map_err(|e| match e {
        SplitError::NoLegalCut {
            start_cycle,
            cache_depth,
        } => RspError::UnsplittableSchedule {
            start_cycle,
            cache_depth,
        },
        other => unreachable!("schedule is parallel to the context: {other}"),
    })?;

    Ok(Rearranged {
        cycles,
        bindings,
        total_cycles,
        base_cycles,
        rp_overhead: rp_total.saturating_sub(base_cycles),
        rs_stalls: total_cycles.saturating_sub(rp_total),
        refill,
    })
}

fn total(cycles: &[u32]) -> u32 {
    cycles.iter().map(|&c| c + 1).max().unwrap_or(0)
}

/// Core list scheduler. When `enforce_sharing` is false, shared resources
/// are treated as unlimited (used to isolate the RP contribution).
fn schedule(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    opts: &RearrangeOptions,
    enforce_sharing: bool,
) -> Result<(Vec<u32>, Vec<Option<SharedResourceId>>), RspError> {
    let n = ctx.instances().len();
    let geom = ctx.geometry();
    let mut sched = vec![u32::MAX; n];
    let mut bindings: Vec<Option<SharedResourceId>> = vec![None; n];

    // Per-PE FIFOs in base-schedule order.
    let mut fifos: HashMap<(usize, usize), Vec<InstanceId>> = HashMap::new();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        let inst = &ctx.instances()[i];
        (ctx.cycles()[i], inst.element, inst.step, inst.node)
    });
    for i in order {
        let inst = &ctx.instances()[i];
        fifos
            .entry((inst.pe.row, inst.pe.col))
            .or_default()
            .push(inst.id);
    }
    let mut heads: HashMap<(usize, usize), usize> = fifos.keys().map(|&k| (k, 0)).collect();

    let latency = |i: usize| -> u32 { u32::from(arch.op_latency(ctx.instances()[i].op)) };

    // Issue slots of shared resources, per cycle.
    let mut issue_used: HashMap<(SharedResourceId, u32), ()> = HashMap::new();
    // Row-bus words per (row, cycle) when bus enforcement is on.
    let mut bus_read: HashMap<(usize, u32), usize> = HashMap::new();
    let mut bus_write: HashMap<(usize, u32), usize> = HashMap::new();

    let bound = ctx.total_cycles() * 4 + 16 * n as u32 + 64;
    let mut remaining = n;
    let mut t: u32 = 0;
    while remaining > 0 {
        if t > bound {
            return Err(RspError::RearrangeDiverged { bound });
        }
        // Candidate heads, ready at t, in loop-iteration order (rule 1).
        let mut cands: Vec<InstanceId> = Vec::new();
        for (&pe, &head) in heads.iter() {
            let fifo = &fifos[&pe];
            if head >= fifo.len() {
                continue;
            }
            let id = fifo[head];
            let i = id.index();
            let inst = &ctx.instances()[i];
            if ctx.cycles()[i] > t {
                continue; // never earlier than the base schedule
            }
            let deps_ready = inst.preds.iter().all(|p| {
                sched[p.index()] != u32::MAX && sched[p.index()] + latency(p.index()) <= t
            });
            if deps_ready {
                cands.push(id);
            }
        }
        cands.sort_by_key(|id| {
            let inst = &ctx.instances()[id.index()];
            (inst.element, inst.step, inst.node)
        });

        for id in cands {
            let i = id.index();
            let inst = &ctx.instances()[i];

            // Shared-resource issue slot (RS rule).
            let mut binding = None;
            if enforce_sharing && arch.op_is_shared(inst.op) {
                let mut found = false;
                for res in arch.candidates(inst.pe, inst.op) {
                    if !issue_used.contains_key(&(res, t)) {
                        binding = Some(res);
                        found = true;
                        break;
                    }
                }
                if !found {
                    continue; // stalls; PE FIFO blocks
                }
            }

            // Optional bus capacity.
            if opts.enforce_buses {
                let words = inst.bus_read_words();
                if words > 0 {
                    let used = bus_read.get(&(inst.pe.row, t)).copied().unwrap_or(0);
                    if used + words > ctx.buses().read_buses() {
                        continue;
                    }
                }
                if inst.is_store() {
                    let used = bus_write.get(&(inst.pe.row, t)).copied().unwrap_or(0);
                    if used + 1 > ctx.buses().write_buses() {
                        continue;
                    }
                }
            }

            // Issue.
            sched[i] = t;
            remaining -= 1;
            *heads.get_mut(&(inst.pe.row, inst.pe.col)).unwrap() += 1;
            if let Some(res) = binding {
                issue_used.insert((res, t), ());
                bindings[i] = Some(res);
            }
            if opts.enforce_buses {
                *bus_read.entry((inst.pe.row, t)).or_default() += inst.bus_read_words();
                *bus_write.entry((inst.pe.row, t)).or_default() += usize::from(inst.is_store());
            }
        }
        t += 1;
    }
    debug_assert!(geom.rows() > 0);
    Ok((sched, bindings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;
    use rsp_kernel::suite;
    use rsp_mapper::{map, validate_schedule, MapOptions};

    fn ctx_for(kernel: &rsp_kernel::Kernel) -> ConfigContext {
        map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap()
    }

    #[test]
    fn base_architecture_is_identity() {
        for k in suite::all() {
            let ctx = ctx_for(&k);
            let r = rearrange(&ctx, &presets::base_8x8(), &Default::default()).unwrap();
            assert_eq!(r.cycles, ctx.cycles(), "{}", k.name());
            assert_eq!(r.rp_overhead, 0);
            assert_eq!(r.rs_stalls, 0);
            assert!(r.bindings.iter().all(Option::is_none));
        }
    }

    #[test]
    fn fitting_schedules_carry_single_segment_plans() {
        // The split path is the only path: a schedule that fits the
        // cache gets a one-segment plan with zero refill, so elapsed
        // cycles equal execution cycles everywhere in Tables 4/5.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
                assert!(!r.refill.is_split(), "{} on {}", k.name(), arch.name());
                assert_eq!(r.refill_stalls(), 0);
                assert_eq!(r.refill_count(), 0);
                assert_eq!(r.elapsed_cycles(), r.total_cycles);
            }
        }
    }

    #[test]
    fn oversized_rearrangement_splits_instead_of_failing() {
        // Shrink the cache below the rearranged schedule: rearrange used
        // to return ConfigCacheExceeded here; now it must produce a
        // split plan whose segments fit the cache and whose stalls
        // follow the byte-derived cost model.
        use rsp_arch::{BaseArchitecture, RspArchitecture};
        let k = suite::fdct();
        let ctx = ctx_for(&k);
        let big = presets::rs1();
        let probe = rearrange(&ctx, &big, &Default::default()).unwrap();
        let depth = (probe.total_cycles / 2 + 1) as usize;
        let b = big.base();
        let small = BaseArchitecture::new(b.geometry(), b.pe().clone(), b.buses(), depth);
        let arch = RspArchitecture::new("RS#1-small", small, big.plan().clone()).unwrap();

        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        // Same compact schedule — splitting repackages, never reschedules.
        assert_eq!(r.cycles, probe.cycles);
        assert_eq!(r.bindings, probe.bindings);
        assert!(r.refill.is_split());
        assert_eq!(r.refill.segments().len(), 2);
        assert!(r
            .refill
            .segments()
            .iter()
            .all(|s| s.depth() as usize <= depth));
        // Cost model: segment k>0 reloads depth words at 1 word/cycle.
        let expected: u32 = r.refill.segments()[1..].iter().map(|s| s.depth()).sum();
        assert_eq!(r.refill_stalls(), expected);
        assert_eq!(r.elapsed_cycles(), r.total_cycles + expected);
    }

    #[test]
    fn rearrangement_only_delays() {
        // The admissibility property the flow's exact-stage dominance
        // cut rests on: no architecture can finish a kernel in fewer
        // cycles than the base schedule, because instances never issue
        // before their base-schedule cycle.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for arch in presets::table_architectures() {
                let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
                assert!(
                    r.total_cycles >= r.base_cycles,
                    "{} on {}: {} < base {}",
                    k.name(),
                    arch.name(),
                    r.total_cycles,
                    r.base_cycles
                );
            }
        }
    }

    #[test]
    fn rearranged_schedules_are_legal() {
        for k in suite::all() {
            for arch in presets::table_architectures() {
                let ctx = ctx_for(&k);
                let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
                let lat = |i: usize| u32::from(arch.op_latency(ctx.instances()[i].op));
                validate_schedule(&ctx, &r.cycles, lat)
                    .unwrap_or_else(|v| panic!("{} on {}: {v}", k.name(), arch.name()));
            }
        }
    }

    #[test]
    fn bindings_respect_reachability_and_capacity() {
        for k in [suite::fdct(), suite::state(), suite::matmul(8)] {
            for arch in [presets::rs1(), presets::rs2(), presets::rsp3()] {
                let ctx = ctx_for(&k);
                let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
                let mut seen: std::collections::HashMap<(SharedResourceId, u32), usize> =
                    Default::default();
                for (i, b) in r.bindings.iter().enumerate() {
                    let inst = &ctx.instances()[i];
                    if inst.op == OpKind::Mult {
                        let res = b.unwrap_or_else(|| {
                            panic!("{}: unbound mult on {}", k.name(), arch.name())
                        });
                        assert!(res.reaches(inst.pe), "resource unreachable");
                        let slot = seen.entry((res, r.cycles[i])).or_default();
                        *slot += 1;
                        assert_eq!(*slot, 1, "double issue on {res} @{}", r.cycles[i]);
                    } else {
                        assert!(b.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn rs_stall_pattern_matches_paper_classes() {
        // Multiplication-dense kernels stall on RS#1; the lockstep
        // single-multiplication kernels do not (Tables 4/5).
        let rs1 = presets::rs1();
        for k in [
            suite::hydro(),
            suite::state(),
            suite::fdct(),
            suite::fft_mult_loop(),
        ] {
            let r = rearrange(&ctx_for(&k), &rs1, &Default::default()).unwrap();
            assert!(r.rs_stalls > 0, "{} should stall on RS#1", k.name());
        }
        for k in [
            suite::iccg(),
            suite::tri_diagonal(),
            suite::inner_product(),
            suite::sad(),
            suite::mvm(),
        ] {
            let r = rearrange(&ctx_for(&k), &rs1, &Default::default()).unwrap();
            assert_eq!(r.rs_stalls, 0, "{} must not stall on RS#1", k.name());
        }
    }

    #[test]
    fn rsp2_supports_all_kernels_with_at_most_marginal_stall() {
        // The paper's §5.3 claim: RSP#2 supports every kernel without
        // stall. Eight of nine kernels reproduce exactly; our FDCT
        // schedule (write-bus limited, II = 9) keeps one residual stall
        // where the paper's (tighter, RP-stretched) schedule had none —
        // recorded as a deviation in EXPERIMENTS.md.
        let rsp2 = presets::rsp2();
        for k in suite::all() {
            let r = rearrange(&ctx_for(&k), &rsp2, &Default::default()).unwrap();
            if k.name() == "2D-FDCT" {
                assert!(r.rs_stalls <= 1, "FDCT stalls {} > 1 on RSP#2", r.rs_stalls);
            } else {
                assert!(r.is_stall_free(), "{} stalls on RSP#2", k.name());
            }
        }
    }

    #[test]
    fn rs4_never_stalls() {
        // Two per row + two per column is the paper's most generous config.
        let rs4 = presets::rs4();
        for k in suite::all() {
            let r = rearrange(&ctx_for(&k), &rs4, &Default::default()).unwrap();
            assert_eq!(r.rs_stalls, 0, "{}", k.name());
        }
    }

    #[test]
    fn sad_unaffected_by_any_architecture() {
        // No multiplications: neither sharing nor pipelining changes its
        // cycle count (paper: 39 cycles in every column).
        for arch in presets::table_architectures() {
            let r = rearrange(&ctx_for(&suite::sad()), &arch, &Default::default()).unwrap();
            assert_eq!(r.total_cycles, r.base_cycles, "{}", arch.name());
        }
    }

    #[test]
    fn rp_overhead_small_for_slack_kernels() {
        // ICCG has a load between multiply and use: RP costs at most one
        // cycle (paper: 18 -> 19).
        let r = rearrange(
            &ctx_for(&suite::iccg()),
            &presets::rsp4(),
            &Default::default(),
        )
        .unwrap();
        assert!(r.rp_overhead <= 2, "rp_overhead = {}", r.rp_overhead);
        assert_eq!(r.rs_stalls, 0);
    }

    #[test]
    fn deeper_sharing_configs_weakly_reduce_stalls() {
        for k in [suite::fdct(), suite::state()] {
            let ctx = ctx_for(&k);
            let mut prev = u32::MAX;
            for c in 1..=4 {
                let r = rearrange(&ctx, &presets::rs(c), &Default::default()).unwrap();
                assert!(r.rs_stalls <= prev, "{} RS#{c}", k.name());
                prev = r.rs_stalls;
            }
        }
    }

    #[test]
    fn pipelining_keeps_sharing_viable() {
        // §3.2: pipelining relaxes the sharing conditions because one
        // resource holds `stages` operations in flight. The measurable
        // form: under RSP the *execution-time* penalty of sharing stays
        // bounded — stall counts stay within a small margin of the
        // corresponding RS design even though every multiplication now
        // takes two cycles.
        for k in suite::all() {
            let ctx = ctx_for(&k);
            for c in 1..=4 {
                let rs = rearrange(&ctx, &presets::rs(c), &Default::default()).unwrap();
                let rsp = rearrange(&ctx, &presets::rsp(c), &Default::default()).unwrap();
                assert!(
                    rsp.rs_stalls <= rs.rs_stalls + 4,
                    "{} on config {c}: RSP {} vs RS {}",
                    k.name(),
                    rsp.rs_stalls,
                    rs.rs_stalls
                );
            }
        }
    }

    #[test]
    fn bus_enforcement_only_delays() {
        let ctx = ctx_for(&suite::matmul(8));
        let soft = rearrange(&ctx, &presets::rsp2(), &Default::default()).unwrap();
        let strict = rearrange(
            &ctx,
            &presets::rsp2(),
            &RearrangeOptions {
                enforce_buses: true,
            },
        )
        .unwrap();
        assert!(strict.total_cycles >= soft.total_cycles);
    }
}
