//! Property tests: the parallel exploration engine is *bit-identical* to
//! the serial reference implementation — same feasible set (order, cycle
//! estimates, and exact f64 bit patterns), same Pareto frontier, same
//! selected optimum — for any thread count and for every
//! result-preserving prune strategy, over both the paper's space and the
//! extended ablation space.

use proptest::prelude::*;
use rsp_arch::{presets, BaseArchitecture};
use rsp_core::{
    explore_reference, explore_with, BoundKind, ClockBound, Constraints, DesignSpace, Exploration,
    ExploreOptions, Objective, PruneStrategy,
};
use rsp_kernel::Kernel;
use rsp_mapper::{map, ConfigContext, MapOptions};
use std::sync::OnceLock;

/// The full suite mapped onto the 8×8 base, shared across cases (mapping
/// is the expensive part of the setup, not exploration).
fn fixture() -> &'static (BaseArchitecture, Vec<Kernel>, Vec<ConfigContext>) {
    static FIXTURE: OnceLock<(BaseArchitecture, Vec<Kernel>, Vec<ConfigContext>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let base = presets::base_8x8().base().clone();
        let kernels = rsp_kernel::suite::all();
        let contexts = kernels
            .iter()
            .map(|k| map(&base, k, &MapOptions::default()).unwrap())
            .collect();
        (base, kernels, contexts)
    })
}

fn assert_bit_identical(engine: &Exploration, reference: &Exploration) {
    assert_eq!(
        engine.feasible.len(),
        reference.feasible.len(),
        "feasible size"
    );
    for (e, r) in engine.feasible.iter().zip(&reference.feasible) {
        assert_eq!(e.arch.name(), r.arch.name());
        assert_eq!(e.arch.plan(), r.arch.plan());
        assert_eq!(
            e.area_slices.to_bits(),
            r.area_slices.to_bits(),
            "{}",
            e.arch.name()
        );
        assert_eq!(
            e.clock_ns.to_bits(),
            r.clock_ns.to_bits(),
            "{}",
            e.arch.name()
        );
        assert_eq!(e.est_cycles, r.est_cycles, "{}", e.arch.name());
        assert_eq!(
            e.est_et_ns.to_bits(),
            r.est_et_ns.to_bits(),
            "{}",
            e.arch.name()
        );
        assert_eq!(e.cost_bound_ok, r.cost_bound_ok, "{}", e.arch.name());
    }
    assert_eq!(engine.pareto, reference.pareto, "pareto frontier");
    assert_eq!(engine.best, reference.best, "best index");
    assert_eq!(engine.base_et_ns.to_bits(), reference.base_et_ns.to_bits());
}

fn arb_objective() -> impl Strategy<Value = Objective> {
    prop_oneof![
        Just(Objective::AreaDelayProduct),
        Just(Objective::ExecutionTime),
        Just(Objective::Area),
    ]
}

fn arb_space() -> impl Strategy<Value = DesignSpace> {
    prop_oneof![Just(DesignSpace::paper()), Just(DesignSpace::extended())]
}

fn arb_bound() -> impl Strategy<Value = BoundKind> {
    prop_oneof![Just(BoundKind::Aggregate), Just(BoundKind::PerRowResidual)]
}

fn arb_clock_bound() -> impl Strategy<Value = ClockBound> {
    prop_oneof![Just(ClockBound::Off), Just(ClockBound::StageFloor)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any thread count × result-preserving prune strategy × bound kind
    /// × objective × slowdown bound reproduces the reference exploration
    /// bit for bit.
    #[test]
    fn engine_is_bit_identical_to_reference(
        threads in 1usize..=8,
        lb_prune in any::<bool>(),
        bound in arb_bound(),
        clock_bound in arb_clock_bound(),
        objective in arb_objective(),
        space in arb_space(),
        slowdown_pct in 101u32..=300,
        enforce_cost in any::<bool>(),
    ) {
        let (base, kernels, contexts) = fixture();
        let weights = vec![1.0; kernels.len()];
        let constraints = Constraints {
            enforce_cost_bound: enforce_cost,
            max_slowdown: slowdown_pct as f64 / 100.0,
        };
        let reference = explore_reference(
            base, kernels, contexts, &weights, &space, &constraints, objective,
        );
        let engine = explore_with(
            base, kernels, contexts, &weights, &space,
            &ExploreOptions {
                parallelism: Some(threads),
                prune: if lb_prune { PruneStrategy::LowerBound } else { PruneStrategy::None },
                bound,
                clock_bound,
                constraints,
                objective,
                cache: None,
                profiles: None,
                control: Default::default(),
                recorder: rsp_core::obs::global(),
            },
        );
        match (reference, engine) {
            (Ok(r), Ok(e)) => assert_bit_identical(&e, &r),
            (Err(r), Err(e)) => prop_assert_eq!(r, e),
            (r, e) => prop_assert!(false, "divergent outcomes: ref {:?} vs engine {:?}",
                r.map(|x| x.feasible.len()), e.map(|x| x.feasible.len())),
        }
    }

    /// Dominated pruning (with either bound kind, and with the
    /// area-ordered enumeration it enables) may shrink `feasible` but
    /// must preserve the streamed frontier — bit for bit, as a point
    /// sequence — and the selected optimum.
    #[test]
    fn dominated_pruning_preserves_frontier(
        threads in 1usize..=8,
        bound in arb_bound(),
        clock_bound in arb_clock_bound(),
        objective in arb_objective(),
        space in arb_space(),
    ) {
        let (base, kernels, contexts) = fixture();
        let weights = vec![1.0; kernels.len()];
        let reference = explore_reference(
            base, kernels, contexts, &weights, &space, &Constraints::default(), objective,
        ).unwrap();
        let engine = explore_with(
            base, kernels, contexts, &weights, &space,
            &ExploreOptions {
                parallelism: Some(threads),
                prune: PruneStrategy::Dominated,
                bound,
                clock_bound,
                constraints: Constraints::default(),
                objective,
                cache: None,
                profiles: None,
                control: Default::default(),
                recorder: rsp_core::obs::global(),
            },
        ).unwrap();
        let frontier = |r: &Exploration| -> Vec<(String, u64, u64)> {
            r.pareto_points()
                .map(|p| (p.arch.name().to_string(), p.area_slices.to_bits(), p.est_et_ns.to_bits()))
                .collect()
        };
        prop_assert_eq!(frontier(&reference), frontier(&engine));
        prop_assert_eq!(
            reference.best_point().arch.name(),
            engine.best_point().arch.name()
        );
        prop_assert_eq!(engine.stats.candidates_pruned, engine.pruned);
        prop_assert_eq!(engine.stats.candidates_seen, reference.stats.candidates_seen);
    }
}
