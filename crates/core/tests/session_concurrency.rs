//! Concurrency test for [`Session`] cache accounting: N threads
//! hammering one session must produce counters that *exactly* account
//! for every call — `hits + misses == calls`, never a lost update —
//! and the observability counters must agree with the snapshot.

use rsp_core::Session;
use rsp_kernel::suite;
use rsp_obs::RingRecorder;
use std::sync::Arc;

const THREADS: usize = 8;
const ITERS: usize = 25;

#[test]
fn mapped_context_counters_account_for_every_call_exactly() {
    let ring = Arc::new(RingRecorder::new(16));
    let session = Arc::new(Session::builder().recorder(ring.clone()).build());
    let base = session.base(8, 8);
    let kernels = [suite::sad(), suite::fdct(), suite::inner_product()];

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let session = Arc::clone(&session);
            let base = &base;
            let kernels = &kernels;
            s.spawn(move || {
                for i in 0..ITERS {
                    let kernel = &kernels[(t + i) % kernels.len()];
                    let ctx = session.map(base, kernel).expect("suite maps");
                    assert_eq!(ctx.kernel_name(), kernel.name());
                }
            });
        }
    });

    let stats = session.stats();
    let calls = (THREADS * ITERS) as u64;
    // The exact accounting invariant: every map call is either a hit or
    // a miss, no lost updates under contention. (Racing cold starts may
    // produce more than one miss per kernel — each such call still
    // counts as a miss — so only the *sum* is exact.)
    assert_eq!(
        stats.context_hits + stats.context_misses,
        calls,
        "hits {} + misses {} must equal {} calls",
        stats.context_hits,
        stats.context_misses,
        calls
    );
    // At least one miss per distinct kernel, and the memo holds exactly
    // the distinct kernels at the end.
    assert!(stats.context_misses >= kernels.len() as u64);
    assert_eq!(stats.mapped_contexts, kernels.len());
    assert!(stats.context_hits > 0, "warm calls must hit");

    // The observability counters saw the same traffic: summed deltas of
    // the session counter events equal the snapshot exactly. (Ring
    // capacity is far below the event count — the wrap-proof summary is
    // what makes this exact.)
    let summary = ring.summary();
    let total_of = |name: &str| {
        summary
            .iter()
            .find(|((target, n), _)| *target == "session" && *n == name)
            .map(|(_, s)| s.total_delta)
            .unwrap_or(0)
    };
    assert_eq!(total_of("context_hit"), stats.context_hits);
    assert_eq!(total_of("context_miss"), stats.context_misses);
}

#[test]
fn explore_requests_count_exactly_under_contention() {
    let session = Arc::new(Session::builder().build());
    let base = session.base(8, 8);
    let kernels = [suite::sad()];

    std::thread::scope(|s| {
        for _ in 0..4 {
            let session = Arc::clone(&session);
            let base = &base;
            let kernels = &kernels;
            s.spawn(move || {
                for _ in 0..3 {
                    session
                        .explore(
                            base,
                            kernels,
                            &[1.0],
                            &rsp_core::DesignSpace::paper(),
                            Default::default(),
                        )
                        .expect("explores");
                }
            });
        }
    });

    let stats = session.stats();
    // Each `explore` counts as one request and routes its single kernel
    // through `map`, which counts as another: 12 explores → 24 exactly,
    // with no lost updates under contention.
    assert_eq!(stats.requests, 24, "every request is counted exactly once");
    assert_eq!(
        stats.profile_hits + stats.profile_misses,
        12,
        "one profile lookup per request: {stats:?}"
    );
    assert_eq!(stats.profile_entries, 1);
    assert_eq!(
        stats.context_hits + stats.context_misses,
        12,
        "one mapped-context lookup per request: {stats:?}"
    );
}
