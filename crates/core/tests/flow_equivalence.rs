//! Property tests for the pruned, parallel Fig. 7 flow:
//!
//! * **Parallel ≡ serial oracle** — `run_flow` with the rayon geometry
//!   fan-out and parallel exact stage produces bit-identical *results*
//!   (base, contexts, chosen design, RSP contexts, Tables 4/5
//!   performance) to the `Some(1)` serial oracle path for any thread
//!   count. Work counters (`FlowStats`) may legitimately differ — the
//!   serial geometry oracle early-exits.
//! * **Pruned ≡ unpruned** — the exact-stage dominance cut plus the
//!   exploration-side dominated/clock-floor pruning leave every flow
//!   output bit-identical to the unpruned flow; only the work counters
//!   move.

use proptest::prelude::*;
use rsp_core::{
    run_flow, AppProfile, BoundKind, ClockBound, DesignSpace, FlowConfig, FlowReport, Objective,
    PruneStrategy,
};
use rsp_kernel::suite;

/// The full kernel suite as one domain (coverage 1.0 keeps every
/// kernel — the acceptance workload for pruned-vs-unpruned identity).
fn suite_apps() -> Vec<AppProfile> {
    vec![AppProfile::new(
        "full-suite",
        suite::all().into_iter().map(|k| (k, 1)).collect(),
    )]
}

fn mixed_apps() -> Vec<AppProfile> {
    vec![
        AppProfile::new(
            "H.263 encoder",
            vec![(suite::fdct(), 99), (suite::sad(), 396)],
        ),
        AppProfile::new(
            "scientific",
            vec![(suite::hydro(), 50), (suite::inner_product(), 80)],
        ),
        AppProfile::new("fft", vec![(suite::fft_mult_loop(), 64)]),
    ]
}

/// Bit-exact equality of every *result* field of two flow reports
/// (work-counter stats excluded by design).
fn assert_reports_identical(a: &FlowReport, b: &FlowReport) {
    assert_eq!(a.critical_loops.len(), b.critical_loops.len());
    for (x, y) in a.critical_loops.iter().zip(&b.critical_loops) {
        assert_eq!(x.kernel.name(), y.kernel.name());
        assert_eq!(x.weight.to_bits(), y.weight.to_bits());
    }
    assert_eq!(a.base.geometry(), b.base.geometry());
    assert_eq!(a.contexts, b.contexts, "initial configuration contexts");
    assert_eq!(a.chosen.name(), b.chosen.name());
    assert_eq!(a.chosen.plan(), b.chosen.plan());
    assert_eq!(a.rsp_contexts, b.rsp_contexts, "RSP configuration contexts");
    assert_eq!(a.perf.len(), b.perf.len());
    for (x, y) in a.perf.iter().zip(&b.perf) {
        assert_eq!(x.kernel, y.kernel);
        assert_eq!(x.cycles, y.cycles, "{}", x.kernel);
        assert_eq!(x.clock_ns.to_bits(), y.clock_ns.to_bits(), "{}", x.kernel);
        assert_eq!(x.et_ns.to_bits(), y.et_ns.to_bits(), "{}", x.kernel);
        assert_eq!(x.rs_stalls, y.rs_stalls, "{}", x.kernel);
        assert_eq!(x.rp_overhead, y.rp_overhead, "{}", x.kernel);
    }
    assert_eq!(a.area_slices.to_bits(), b.area_slices.to_bits());
    assert_eq!(a.base_area_slices.to_bits(), b.base_area_slices.to_bits());
    // The estimation phase itself must agree too.
    assert_eq!(a.exploration.pareto.len(), b.exploration.pareto.len());
}

fn arb_space() -> impl Strategy<Value = DesignSpace> {
    prop_oneof![
        Just(DesignSpace::paper()),
        Just(DesignSpace::extended()),
        Just(DesignSpace::deep()),
    ]
}

fn arb_objective() -> impl Strategy<Value = Objective> {
    prop_oneof![
        Just(Objective::AreaDelayProduct),
        Just(Objective::ExecutionTime),
        Just(Objective::Area),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The rayon fan-out (geometries, exploration, exact stage) is
    /// bit-identical to the serial oracle for any thread count,
    /// multi-geometry configurations included.
    #[test]
    fn parallel_flow_matches_serial_oracle(
        threads in 2usize..=6,
        space in arb_space(),
        objective in arb_objective(),
        multi_geometry in any::<bool>(),
    ) {
        let geometries = if multi_geometry {
            vec![(4, 4), (6, 6), (8, 8)]
        } else {
            vec![(8, 8)]
        };
        let cfg = |parallelism| FlowConfig {
            geometries: geometries.clone(),
            space: space.clone(),
            objective,
            parallelism,
            ..FlowConfig::default()
        };
        let apps = mixed_apps();
        let serial = run_flow(&apps, &cfg(Some(1))).unwrap();
        let parallel = run_flow(&apps, &cfg(Some(threads))).unwrap();
        assert_reports_identical(&serial, &parallel);
    }

    /// Dominated pruning + the stage-floor clock bound leave every flow
    /// output bit-identical to the unpruned flow over the full kernel
    /// suite — contexts, chosen design, and the Tables 4/5 numbers.
    #[test]
    fn pruned_flow_output_is_bit_identical_to_unpruned(
        space in arb_space(),
        objective in arb_objective(),
    ) {
        let cfg = |prune, clock_bound| FlowConfig {
            coverage: 1.0,
            space: space.clone(),
            objective,
            prune,
            clock_bound,
            ..FlowConfig::default()
        };
        let apps = suite_apps();
        let unpruned = run_flow(&apps, &cfg(PruneStrategy::None, ClockBound::Off)).unwrap();
        let pruned = run_flow(
            &apps,
            &cfg(PruneStrategy::Dominated, ClockBound::StageFloor),
        )
        .unwrap();
        assert_reports_identical(&unpruned, &pruned);
        // The unpruned flow rearranges every frontier candidate; the
        // pruned flow rearranges the survivors and skips the rest.
        assert_eq!(
            unpruned.stats.rearranged_candidates + unpruned.stats.rearrangements_failed,
            unpruned.stats.frontier_candidates
        );
        assert_eq!(unpruned.stats.rearrangements_skipped, 0);
        assert_eq!(
            pruned.stats.rearranged_candidates
                + pruned.stats.rearrangements_skipped
                + pruned.stats.rearrangements_failed,
            pruned.stats.frontier_candidates
        );
    }
}

/// The per-row residual bound in the flow defaults plus the
/// objective-score cut must actually skip exact rearrangements somewhere
/// — otherwise the cut is dead code. The mixed deep100 space has the
/// densest estimation frontier (its tail candidates buy little
/// execution time for a lot of area), so it is the place the cut must
/// bite.
#[test]
fn score_cut_bites_on_deep100_space() {
    let report = run_flow(
        &suite_apps(),
        &FlowConfig {
            coverage: 1.0,
            space: DesignSpace::deep100(),
            prune: PruneStrategy::Dominated,
            bound: BoundKind::PerRowResidual,
            clock_bound: ClockBound::StageFloor,
            ..FlowConfig::default()
        },
    )
    .unwrap();
    assert!(
        report.stats.rearrangements_skipped > 0,
        "exact-stage objective-score cut never fired on the deep100 space \
         ({} frontier candidates, {} rearranged)",
        report.stats.frontier_candidates,
        report.stats.rearranged_candidates
    );
    assert!(report.stats.candidates_pruned > 0);
}
