//! Property tests: observability is *purely observational*. Running the
//! exploration engine or the full flow under any recorder — the no-op
//! [`NullRecorder`], the in-memory [`RingRecorder`], a streaming
//! [`JsonlRecorder`] — produces results bit-identical (exact f64 bit
//! patterns, same frontier, same chosen design) to the uninstrumented
//! run, while the instrumented runs demonstrably record events.

use proptest::prelude::*;
use rsp_arch::{presets, BaseArchitecture};
use rsp_core::{
    explore_with, run_flow, AppProfile, BoundKind, ClockBound, Constraints, DesignSpace,
    Exploration, ExploreOptions, FlowConfig, Objective, PruneStrategy,
};
use rsp_kernel::Kernel;
use rsp_mapper::{map, ConfigContext, MapOptions};
use rsp_obs::{JsonlRecorder, NullRecorder, Recorder, RingRecorder};
use std::sync::{Arc, OnceLock};

fn fixture() -> &'static (BaseArchitecture, Vec<Kernel>, Vec<ConfigContext>) {
    static FIXTURE: OnceLock<(BaseArchitecture, Vec<Kernel>, Vec<ConfigContext>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let base = presets::base_8x8().base().clone();
        let kernels = rsp_kernel::suite::all();
        let contexts = kernels
            .iter()
            .map(|k| map(&base, k, &MapOptions::default()).unwrap())
            .collect();
        (base, kernels, contexts)
    })
}

/// The three recorder shapes under test: disabled, in-memory, and
/// streaming (into a sink — the write path still runs in full).
fn recorders() -> Vec<(&'static str, Arc<dyn Recorder>)> {
    vec![
        ("null", Arc::new(NullRecorder)),
        ("ring", Arc::new(RingRecorder::new(4096))),
        (
            "jsonl",
            Arc::new(JsonlRecorder::new(Box::new(std::io::sink()))),
        ),
    ]
}

fn assert_bit_identical(label: &str, engine: &Exploration, reference: &Exploration) {
    assert_eq!(
        engine.feasible.len(),
        reference.feasible.len(),
        "{label}: feasible size"
    );
    for (e, r) in engine.feasible.iter().zip(&reference.feasible) {
        assert_eq!(e.arch.plan(), r.arch.plan(), "{label}");
        assert_eq!(e.area_slices.to_bits(), r.area_slices.to_bits(), "{label}");
        assert_eq!(e.clock_ns.to_bits(), r.clock_ns.to_bits(), "{label}");
        assert_eq!(e.est_cycles, r.est_cycles, "{label}");
        assert_eq!(e.est_et_ns.to_bits(), r.est_et_ns.to_bits(), "{label}");
    }
    assert_eq!(engine.pareto, reference.pareto, "{label}: pareto");
    assert_eq!(engine.best, reference.best, "{label}: best");
    assert_eq!(
        engine.base_et_ns.to_bits(),
        reference.base_et_ns.to_bits(),
        "{label}"
    );
    assert_eq!(
        engine.stats.candidates_seen, reference.stats.candidates_seen,
        "{label}"
    );
    assert_eq!(
        engine.stats.candidates_pruned, reference.stats.candidates_pruned,
        "{label}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exploration under every recorder reproduces the NullRecorder
    /// run bit for bit, across thread counts, prune strategies, and
    /// both paper and extended spaces.
    #[test]
    fn exploration_is_bit_identical_under_any_recorder(
        threads in 1usize..=4,
        lb_prune in any::<bool>(),
        extended in any::<bool>(),
    ) {
        let (base, kernels, contexts) = fixture();
        let weights = vec![1.0; kernels.len()];
        let space = if extended { DesignSpace::extended() } else { DesignSpace::paper() };
        let options = |recorder: Arc<dyn Recorder>| ExploreOptions {
            parallelism: Some(threads),
            prune: if lb_prune { PruneStrategy::LowerBound } else { PruneStrategy::None },
            bound: BoundKind::PerRowResidual,
            clock_bound: ClockBound::StageFloor,
            constraints: Constraints::default(),
            objective: Objective::AreaDelayProduct,
            cache: None,
            profiles: None,
            control: Default::default(),
            recorder,
        };
        let reference = explore_with(
            base, kernels, contexts, &weights, &space, &options(Arc::new(NullRecorder)),
        ).unwrap();
        for (label, recorder) in recorders() {
            let instrumented = recorder.enabled();
            let run = explore_with(
                base, kernels, contexts, &weights, &space, &options(recorder),
            ).unwrap();
            assert_bit_identical(label, &run, &reference);
            prop_assert_eq!(instrumented, label != "null");
        }
    }
}

/// The full flow — profiling, base selection, exploration, exact
/// rearrangement — is bit-identical under all three recorders, and the
/// enabled recorders actually observe every phase.
#[test]
fn flow_is_bit_identical_under_any_recorder() {
    let apps = vec![AppProfile::new(
        "video",
        vec![
            (rsp_kernel::suite::fdct(), 99),
            (rsp_kernel::suite::sad(), 396),
        ],
    )];
    let config = |recorder: Arc<dyn Recorder>| FlowConfig {
        recorder,
        ..FlowConfig::default()
    };
    let reference = run_flow(&apps, &config(Arc::new(NullRecorder))).unwrap();

    for (label, recorder) in recorders() {
        let report = run_flow(&apps, &config(Arc::clone(&recorder))).unwrap();
        assert_eq!(report.chosen.plan(), reference.chosen.plan(), "{label}");
        assert_eq!(
            report.area_slices.to_bits(),
            reference.area_slices.to_bits(),
            "{label}"
        );
        assert_eq!(
            report.base_area_slices.to_bits(),
            reference.base_area_slices.to_bits(),
            "{label}"
        );
        assert_eq!(
            report.weighted_et_ns().to_bits(),
            reference.weighted_et_ns().to_bits(),
            "{label}"
        );
        assert_eq!(
            report.stats.refill_segments, reference.stats.refill_segments,
            "{label}"
        );
        assert_eq!(
            report.stats.refill_stall_cycles, reference.stats.refill_stall_cycles,
            "{label}"
        );
    }

    // The ring recorder saw every flow phase, in order of first use.
    let ring = Arc::new(RingRecorder::new(4096));
    run_flow(&apps, &config(ring.clone())).unwrap();
    let phases: Vec<&str> = ring
        .summary()
        .iter()
        .filter(|((target, _), _)| *target == "flow")
        .map(|((_, name), _)| *name)
        .collect();
    for expected in ["profile", "select_base", "explore", "exact", "rearrange"] {
        assert!(
            phases.contains(&expected),
            "flow phase {expected:?} not recorded; got {phases:?}"
        );
    }

    // The jsonl recorder streamed well-formed lines (counted, no errors).
    let jsonl = Arc::new(JsonlRecorder::new(Box::new(std::io::sink())));
    run_flow(&apps, &config(jsonl.clone())).unwrap();
    assert!(jsonl.lines() > 0, "jsonl recorder wrote no events");
    assert_eq!(jsonl.errors(), 0);
}
